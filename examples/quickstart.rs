//! Quickstart: the Figure 6 pipeline in ~30 lines.
//!
//! ```text
//! cargo run -p pz-examples --bin quickstart --release
//! ```
//!
//! Builds the scientific-discovery pipeline declaratively, lets the
//! optimizer pick the physical plan under `MaxQuality`, executes it on the
//! 11-paper demo corpus, and prints the Figure-5-style statistics.

use pz_core::prelude::*;
use pz_examples::{context_with_corpus, report};

fn main() -> PzResult<()> {
    // 1. A runtime context with the simulated LLM substrate and the demo
    //    corpus registered as "sigmod-demo".
    let ctx = context_with_corpus("science");

    // 2. The extraction schema (Figure 6's ClinicalData).
    let clinical = Schema::new(
        "ClinicalData",
        "A schema for extracting clinical data datasets from papers.",
        vec![
            FieldDef::text("name", "The name of the clinical data dataset"),
            FieldDef::text(
                "description",
                "A short description of the content of the dataset",
            ),
            FieldDef::text("url", "The public URL where the dataset can be accessed"),
        ],
    )?;

    // 3. The logical plan: filter, then convert (one paper may cite many
    //    datasets).
    let plan = Dataset::source("sigmod-demo")
        .filter("The papers are about colorectal cancer")
        .convert(
            clinical,
            Cardinality::OneToMany,
            "extract clinical datasets",
        )
        .build()?;

    // 4. Optimize + execute under the user's policy.
    let outcome = execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )?;
    report(&outcome);
    Ok(())
}
