//! A free-form chat session against your own files: point PalimpChat at a
//! directory and query it, mirroring the demo's "apply PalimpChat to their
//! own datasets".
//!
//! ```text
//! cargo run -p pz-examples --bin chat_session --release -- /path/to/folder
//! ```
//!
//! Without an argument a small corpus is synthesized into a temp directory
//! first, so the example is always runnable.

use palimpchat::PalimpChat;
use std::path::PathBuf;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Synthesize a small folder of "PDFs" so the example is standalone.
            let dir =
                std::env::temp_dir().join(format!("palimpchat-own-data-{}", std::process::id()));
            let (docs, _) = pz_datagen::science::demo_corpus();
            pz_datagen::write_corpus_to_dir(&docs, &dir).expect("write corpus files");
            println!(
                "(no folder given; synthesized demo corpus at {})\n",
                dir.display()
            );
            dir
        });

    let mut chat = PalimpChat::new();
    let turns = [
        format!("load the folder of papers \"{}\"", dir.display()),
        "I'm interested in papers that are about colorectal cancer, and for these papers, \
         extract whatever public dataset is used by the study"
            .to_string(),
        "run the pipeline with maximum quality".to_string(),
        "show me the extracted records".to_string(),
    ];
    for turn in &turns {
        println!("you> {turn}");
        match chat.handle(turn) {
            Ok(resp) => println!("palimpchat> {}\n", resp.reply),
            Err(e) => println!("palimpchat> error: {e}\n"),
        }
    }
}
