//! Legal discovery: find merger-responsive e-mails, flag privileged ones,
//! and extract structured metadata — using the library API directly (the
//! "expert user" path the paper contrasts with the chat path).
//!
//! ```text
//! cargo run -p pz-examples --bin legal_discovery --release
//! ```

use pz_core::prelude::*;
use pz_examples::{context_with_corpus, report};

fn main() -> PzResult<()> {
    let ctx = context_with_corpus("legal");

    // A conventional UDF filter composed with LLM ops: privilege screening
    // is exact string policy here, responsiveness is semantic.
    ctx.udfs.register_filter("not_privileged", |r| {
        !r.prompt_text().contains("attorney client privileged")
    });

    let envelope = Schema::new(
        "Envelope",
        "Structured metadata of a responsive email.",
        vec![
            FieldDef::text("sender", "The email address of the sender").required(),
            FieldDef::text("recipient", "The email address of the recipient"),
            FieldDef::text("date", "The date of the message"),
            FieldDef::text("subject", "The subject line"),
        ],
    )?;

    let plan = Dataset::source("legal-demo")
        .filter(pz_datagen::legal::FILTER_PREDICATE)
        .filter_udf("not_privileged")
        .convert(envelope, Cardinality::OneToOne, "extract the envelope")
        .sort("date", false)
        .build()?;

    println!("logical plan: {}\n", plan.describe());
    let outcome = execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )?;
    report(&outcome);

    // Compare with ground truth.
    let (_, truth) = pz_datagen::legal::demo_corpus();
    println!(
        "\nground truth: {} responsive mails, {} privileged (excluded)",
        truth.responsive_count(),
        truth.privileged_flags().iter().filter(|p| **p).count()
    );

    // Bonus: semantic categorization + conventional group-by over the
    // whole archive (the Classify operator drops nothing).
    let survey = Dataset::source("legal-demo")
        .classify(
            &["acme initech merger deal", "office social staff"],
            "category",
        )
        .aggregate(&["category"], vec![AggExpr::new(AggFunc::Count, "", "n")])
        .build()?;
    let outcome = execute(
        &ctx,
        &survey,
        &Policy::MinCost,
        ExecutionConfig::sequential(),
    )?;
    println!("\narchive survey (classify -> group-by):");
    for r in &outcome.records {
        println!(
            "  {:<28} {}",
            r.get("category").unwrap().as_display(),
            r.get("n").unwrap().as_display()
        );
    }
    Ok(())
}
