//! Optimizer tour: watch the §2.1 machinery work — plan-space enumeration,
//! Pareto pruning, per-policy choices, and sentinel calibration.
//!
//! ```text
//! cargo run -p pz-examples --bin optimizer_tour --release
//! ```

use pz_core::optimizer::cost::CostContext;
use pz_core::optimizer::{enumerate, pareto, Optimizer};
use pz_core::prelude::*;
use pz_examples::context_with_corpus;

fn main() -> PzResult<()> {
    let ctx = context_with_corpus("science");
    let clinical = Schema::new(
        "ClinicalData",
        "datasets used by papers",
        vec![
            FieldDef::text("name", "The name of the clinical data dataset"),
            FieldDef::text("url", "The public URL where the dataset can be accessed"),
        ],
    )?;
    let plan = Dataset::source("sigmod-demo")
        .filter("The papers are about colorectal cancer")
        .convert(clinical, Cardinality::OneToMany, "extract datasets")
        .build()?;

    // 1. The plan space.
    let space = enumerate::plan_space_size(&plan, &ctx.catalog);
    println!("logical plan     : {}", plan.describe());
    println!("physical space   : {space} plans");

    // 2. The Pareto frontier with estimates.
    let cost_ctx = CostContext::from_context(&ctx, &plan)?;
    let frontier = pareto::enumerate_pareto(&plan, &ctx.catalog, &cost_ctx);
    println!("pareto frontier  : {} plans\n", frontier.len());
    println!(
        "{:<64} {:>9} {:>9} {:>8}",
        "frontier plan", "cost($)", "time(s)", "quality"
    );
    let mut rows = frontier.clone();
    rows.sort_by(|a, b| a.1.cost_usd.total_cmp(&b.1.cost_usd));
    for (p, e) in rows.iter().take(12) {
        let desc = p.describe();
        let desc = if desc.len() > 62 {
            format!("{}…", &desc[..62])
        } else {
            desc
        };
        println!(
            "{desc:<64} {:>9.4} {:>9.1} {:>8.2}",
            e.cost_usd, e.time_secs, e.quality
        );
    }

    // 3. What each policy picks.
    println!();
    for policy in [
        Policy::MaxQuality,
        Policy::MinCost,
        Policy::MinTime,
        Policy::MaxQualityAtCost(0.05),
        Policy::MinCostAtQuality(0.85),
    ] {
        let (chosen, est, _) = Optimizer::default().optimize(&ctx, &plan, &policy)?;
        println!(
            "{:<26} -> {} (est ${:.4}, {:.0}s, q={:.2})",
            policy.name(),
            chosen.describe(),
            est.cost_usd,
            est.time_secs,
            est.quality
        );
    }

    // 4. Logical rewrites: cheap predicates run first automatically.
    ctx.udfs.register_filter("small_files", |r| {
        r.get("contents")
            .and_then(|v| v.as_text())
            .is_some_and(|t| t.len() < 40_000)
    });
    let sloppy = Dataset::source("sigmod-demo")
        .filter("The papers are about colorectal cancer") // expensive first...
        .filter_udf("small_files") // ...free one after
        .build()?;
    let (chosen, _, report) = Optimizer::default().optimize(&ctx, &sloppy, &Policy::MinCost)?;
    println!(
        "\nlogical rewrite: reordered={} deduped={} -> {}",
        report.rewrites.filters_reordered,
        report.rewrites.filters_deduped,
        chosen.describe()
    );

    // 5. Sentinel calibration: spend a little on a sample, estimate better.
    println!("\nwith sentinel calibration (sample of 4):");
    let optimizer = Optimizer::default().with_sentinel(4);
    let (chosen, est, report) = optimizer.optimize(&ctx, &plan, &Policy::MaxQuality)?;
    println!(
        "MaxQuality -> {} (est ${:.4}, {:.0}s, q={:.2}; calibrated={})",
        chosen.describe(),
        est.cost_usd,
        est.time_secs,
        est.quality,
        report.calibrated
    );
    Ok(())
}
