//! Real-estate search: a subjective semantic filter ("modern homes with a
//! garden") combined with conventional numeric operators over extracted
//! fields — the mixed LLM/relational pipelines the paper motivates.
//!
//! ```text
//! cargo run -p pz-examples --bin real_estate_search --release
//! ```

use pz_core::prelude::*;
use pz_examples::{context_with_corpus, report};

fn main() -> PzResult<()> {
    let ctx = context_with_corpus("realestate");

    // Extract typed fields so conventional operators can work on them.
    let listing = Schema::new(
        "Listing",
        "Structured view of a real estate listing.",
        vec![
            FieldDef::text("address", "The street address of the listing"),
            FieldDef::typed("price", FieldType::Int, "The listing price in dollars"),
            FieldDef::typed("bedrooms", FieldType::Int, "The number of bedrooms"),
        ],
    )?;

    // Affordability is exact arithmetic — a UDF, not an LLM call.
    ctx.udfs.register_filter("under_2m", |r| {
        r.get("price")
            .and_then(|v| v.as_int())
            .is_some_and(|p| p < 2_000_000)
    });

    let plan = Dataset::source("realestate-demo")
        .filter(pz_datagen::realestate::FILTER_PREDICATE)
        .convert(listing, Cardinality::OneToOne, "extract listing fields")
        .filter_udf("under_2m")
        .sort("price", false)
        .build()?;

    println!("logical plan: {}\n", plan.describe());
    let outcome = execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )?;
    report(&outcome);

    let (_, truth) = pz_datagen::realestate::demo_corpus();
    println!(
        "\nground truth: {} of {} listings are modern with a garden",
        truth.matching_count(),
        truth.listings.len()
    );
    Ok(())
}
