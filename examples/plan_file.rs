//! Plans as data: logical plans serialize to JSON, so pipelines can be
//! saved, versioned, shipped, and re-run — the artifact the chat session
//! exports next to the notebook.
//!
//! ```text
//! cargo run -p pz-examples --bin plan_file --release
//! ```
//!
//! Builds the demo plan, writes it to a JSON file, reloads it, and runs the
//! reloaded plan. Both plans produce identical results (determinism).

use pz_core::prelude::*;
use pz_examples::context_with_corpus;

fn main() -> PzResult<()> {
    let clinical = Schema::new(
        "ClinicalData",
        "A schema for extracting clinical data datasets from papers.",
        vec![
            FieldDef::text("name", "The name of the clinical data dataset"),
            FieldDef::text("url", "The public URL where the dataset can be accessed"),
        ],
    )?;
    let plan = Dataset::source("sigmod-demo")
        .filter("The papers are about colorectal cancer")
        .convert(
            clinical,
            Cardinality::OneToMany,
            "extract clinical datasets",
        )
        .build()?;

    // Save the plan as JSON.
    let path = std::env::temp_dir().join(format!("pz-plan-{}.json", std::process::id()));
    let json = serde_json::to_string_pretty(&plan).expect("plans serialize");
    std::fs::write(&path, &json).expect("write plan file");
    println!(
        "plan written to {} ({} bytes):\n",
        path.display(),
        json.len()
    );
    println!("{}\n", &json[..json.len().min(600)]);

    // Reload and verify it round-trips.
    let reloaded: LogicalPlan =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read plan file"))
            .expect("plans deserialize");
    assert_eq!(reloaded, plan, "round-trip must be lossless");

    // Run the reloaded plan.
    let ctx = context_with_corpus("science");
    let outcome = execute(
        &ctx,
        &reloaded,
        &Policy::MinCost,
        ExecutionConfig::sequential(),
    )?;
    println!(
        "reloaded plan ran: {} records, ${:.4}, {:.1}s (virtual) via {}",
        outcome.records.len(),
        outcome.stats.total_cost_usd,
        outcome.stats.total_time_secs,
        outcome.chosen_plan.describe()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
