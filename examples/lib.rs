//! Shared helpers for the runnable examples. Each example is a standalone
//! binary (`cargo run -p pz-examples --bin quickstart`).

use pz_core::prelude::*;
use std::sync::Arc;

/// Register one of the built-in demo corpora and return the context.
pub fn context_with_corpus(corpus: &str) -> PzContext {
    let ctx = PzContext::simulated();
    let (name, schema, items): (&str, Schema, Vec<(String, String)>) = match corpus {
        "legal" => {
            let (docs, _) = pz_datagen::legal::demo_corpus();
            (
                "legal-demo",
                Schema::text_file(),
                docs.into_iter().map(|d| (d.filename, d.content)).collect(),
            )
        }
        "realestate" => {
            let (docs, _) = pz_datagen::realestate::demo_corpus();
            (
                "realestate-demo",
                Schema::text_file(),
                docs.into_iter().map(|d| (d.filename, d.content)).collect(),
            )
        }
        _ => {
            let (docs, _) = pz_datagen::science::demo_corpus();
            (
                "sigmod-demo",
                Schema::pdf_file(),
                docs.into_iter().map(|d| (d.filename, d.content)).collect(),
            )
        }
    };
    ctx.registry
        .register(Arc::new(MemorySource::new(name, schema, items)));
    ctx
}

/// Print an execution outcome the way the demo UI would: the EXPLAIN
/// report followed by the output records.
pub fn report(outcome: &ExecutionOutcome) {
    print!("{}", outcome.explain());
    println!("records:");
    for r in outcome.records.iter().take(10) {
        println!(
            "  {}",
            serde_json::to_string(&r.to_json()).unwrap_or_default()
        );
    }
}
