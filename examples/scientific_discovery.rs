//! Scientific discovery through the chat interface — the paper's §3
//! demonstration, scripted end to end:
//!
//! ```text
//! cargo run -p pz-examples --bin scientific_discovery --release
//! ```
//!
//! Shows the Figure 4 decomposition (one utterance → several tool calls),
//! the Figure 5 statistics, and the Figure 6 exported code.

use palimpchat::PalimpChat;

fn main() {
    let mut chat = PalimpChat::new();
    let dialogue = [
        "Please load the dataset of scientific papers from my folder",
        "I'm interested in papers that are about colorectal cancer, and for these papers, \
         extract whatever public dataset is used by the study",
        "run the pipeline with maximum quality",
        "how much did the run cost and how long did it take?",
        "show me the extracted records",
        "download the notebook with the generated code",
    ];
    for turn in dialogue {
        println!("you> {turn}");
        match chat.handle(turn) {
            Ok(resp) => {
                // Figure 4: surface the agent's reasoning trace.
                for (i, step) in resp.trace.steps.iter().enumerate() {
                    if let Some(action) = &step.action {
                        println!("  [thought {}] {}", i + 1, step.thought);
                        println!("  [action  {}] {}", i + 1, action.tool);
                    }
                }
                println!("palimpchat> {}\n", resp.reply);
            }
            Err(e) => println!("palimpchat> error: {e}\n"),
        }
    }
    // Verify the §3 claim mechanically: 6 datasets with valid URLs.
    let state = chat.session().lock();
    if let Some(outcome) = &state.last_outcome {
        let (_, truth) = pz_datagen::science::demo_corpus();
        let expected = truth.expected_mentions();
        let verified = outcome
            .records
            .iter()
            .filter(|r| {
                r.get("url")
                    .and_then(|v| v.as_text())
                    .is_some_and(|u| expected.iter().any(|m| m.url == u))
            })
            .count();
        println!(
            "verified URLs against ground truth: {verified}/{} extracted ({} expected)",
            outcome.records.len(),
            expected.len()
        );
    }
}
