//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` on top of `std::thread::scope`
//! (stable since 1.63), keeping crossbeam's API shape: the orchestrating
//! closure receives `&Scope`, spawn closures receive the scope as an
//! argument, and `scope()` returns a `Result`.

pub mod thread {
    use std::any::Any;

    /// A scope for spawning threads that may borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a thread scope; all spawned threads are joined before
    /// this returns. Unlike real crossbeam this cannot observe child
    /// panics (std's scope re-raises them), so the error arm is vestigial.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
