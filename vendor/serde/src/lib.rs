//! Offline stand-in for `serde`.
//!
//! The real `serde` is a data-model-generic framework; this vendored
//! replacement collapses the data model to a JSON [`json::Value`] tree,
//! which is the only format the workspace serializes to. The public
//! surface mirrors the subset of serde the workspace uses:
//!
//! - `serde::Serialize` / `serde::Deserialize` traits (via `#[derive]`)
//! - `serde_json::{Value, Number, Map, to_string, from_str, json!, ...}`
//!   (re-exported from [`json`] by the vendored `serde_json` crate)
//!
//! It exists because this build environment has no network access to
//! crates.io; see `vendor/README.md`.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// Serialize `self` into a JSON value tree.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Reconstruct `Self` from a JSON value tree.
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(json::Number::from_i64(v))
                } else {
                    Value::Number(json::Number::from_u64(v as u64))
                }
            }
        }
    )*};
}
ser_signed!(i8 i16 i32 i64 isize);

macro_rules! ser_unsigned {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(json::Number::from_u64(*self as u64))
            }
        }
    )*};
}
ser_unsigned!(u8 u16 u32 u64 usize);

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(json::Number::from_f64(*self as f64))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(json::Number::from_f64(*self))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.serialize_value()).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.serialize_value()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.serialize_value()).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

/// Render a map key as a JSON object key. String keys pass through;
/// anything else (ints, tuples) becomes its compact JSON text — mirroring
/// how this JSON-only serde must flatten non-string keys.
fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.serialize_value() {
        Value::String(s) => s,
        other => json::write_compact(&other),
    }
}

/// Inverse of [`key_to_string`]: try the raw string first, then fall back
/// to parsing the key text as JSON (for ints, tuples, ...).
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    match K::deserialize_value(&Value::String(s.to_string())) {
        Ok(k) => Ok(k),
        Err(first) => match json::parse(s) {
            Ok(v) => K::deserialize_value(&v),
            Err(_) => Err(first),
        },
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut m = json::Map::new();
        for (k, v) in self {
            m.insert(key_to_string(k), v.serialize_value());
        }
        Value::Object(m)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        let mut m = json::Map::new();
        for (k, v) in self {
            m.insert(key_to_string(k), v.serialize_value());
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

macro_rules! de_int {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().or_else(|| v.as_u64().map(|u| u as i64));
                match n {
                    Some(i) => <$t>::try_from(i).map_err(|_| Error::expected(stringify!($t), v)),
                    None => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
de_int!(i8 i16 i32 i64 isize u8 u16 u32 usize);

impl Deserialize for u64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_u64().ok_or_else(|| Error::expected("u64", v))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("f32", v))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("f64", v))
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        if arr.len() != 2 {
            return Err(Error::expected("2-element array", v));
        }
        Ok((
            A::deserialize_value(&arr[0])?,
            B::deserialize_value(&arr[1])?,
        ))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        let mut out = std::collections::BTreeMap::new();
        for (k, val) in obj.iter() {
            out.insert(key_from_string(k)?, V::deserialize_value(val)?);
        }
        Ok(out)
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        let mut out = std::collections::HashMap::new();
        for (k, val) in obj.iter() {
            out.insert(key_from_string(k)?, V::deserialize_value(val)?);
        }
        Ok(out)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for json::Map<String, Value> {
    fn serialize_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for json::Map<String, Value> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .cloned()
            .ok_or_else(|| Error::expected("object", v))
    }
}
