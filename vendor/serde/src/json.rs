//! JSON value tree, parser, and writers for the vendored serde stand-in.
//!
//! Mirrors the `serde_json` surface the workspace uses: [`Value`],
//! [`Number`], [`Map`], compact and pretty writers, and a recursive-descent
//! parser. Object keys are stored in a `BTreeMap`, matching `serde_json`'s
//! default (sorted) map representation.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON deserialization/serialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        Self::new(format!("expected {what}, got {}", got.kind_name()))
    }

    /// Prefix the error with a field/variant context.
    pub fn context(self, ctx: &str) -> Self {
        Self::new(format!("{ctx}: {}", self.msg))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON number: positive integer, negative integer, or float.
#[derive(Clone, Copy, Debug)]
pub struct Number {
    n: N,
}

#[derive(Clone, Copy, Debug)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn from_u64(v: u64) -> Self {
        Self { n: N::PosInt(v) }
    }

    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Self {
                n: N::PosInt(v as u64),
            }
        } else {
            Self { n: N::NegInt(v) }
        }
    }

    pub fn from_f64(v: f64) -> Self {
        Self { n: N::Float(v) }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::PosInt(v) => Some(v as f64),
            N::NegInt(v) => Some(v as f64),
            N::Float(v) => Some(v),
        }
    }

    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }

    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    pub fn is_u64(&self) -> bool {
        matches!(self.n, N::PosInt(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.n, other.n) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::Float(a), N::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::PosInt(v) => write!(f, "{v}"),
            N::NegInt(v) => write!(f, "{v}"),
            N::Float(v) => {
                if !v.is_finite() {
                    // Real serde_json refuses to emit non-finite numbers;
                    // `null` is its lossy textual stand-in.
                    f.write_str("null")
                } else {
                    let s = format!("{v}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                }
            }
        }
    }
}

macro_rules! number_from_int {
    ($($t:ty)*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Self {
                Number::from_i64(v as i64)
            }
        }
    )*};
}
number_from_int!(i8 i16 i32 i64 isize);

macro_rules! number_from_uint {
    ($($t:ty)*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Self {
                Number::from_u64(v as u64)
            }
        }
    )*};
}
number_from_uint!(u8 u16 u32 u64 usize);

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::from_f64(v)
    }
}

impl From<f32> for Number {
    fn from(v: f32) -> Self {
        Number::from_f64(v as f64)
    }
}

/// An order-preserving (sorted) string-keyed map, mirroring
/// `serde_json::Map`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K: Ord = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> Map<K, V> {
    pub fn new() -> Self {
        Self {
            inner: BTreeMap::new(),
        }
    }

    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        self.inner.insert(k, v)
    }

    pub fn remove<Q: ?Sized + Ord>(&mut self, k: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
    {
        self.inner.remove(k)
    }

    pub fn get<Q: ?Sized + Ord>(&self, k: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
    {
        self.inner.get(k)
    }

    pub fn get_mut<Q: ?Sized + Ord>(&mut self, k: &Q) -> Option<&mut V>
    where
        K: std::borrow::Borrow<Q>,
    {
        self.inner.get_mut(k)
    }

    pub fn contains_key<Q: ?Sized + Ord>(&self, k: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
    {
        self.inner.contains_key(k)
    }

    pub fn entry(&mut self, k: K) -> std::collections::btree_map::Entry<'_, K, V> {
        self.inner.entry(k)
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    pub fn iter_mut(&mut self) -> std::collections::btree_map::IterMut<'_, K, V> {
        self.inner.iter_mut()
    }

    pub fn keys(&self) -> std::collections::btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    pub fn values(&self) -> std::collections::btree_map::Values<'_, K, V> {
        self.inner.values()
    }

    pub fn clear(&mut self) {
        self.inner.clear()
    }
}

impl<K: Ord, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::collections::btree_map::IntoIter<K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a Map<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::collections::btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Self {
            inner: iter.into_iter().collect(),
        }
    }
}

impl<K: Ord, V> Extend<(K, V)> for Map<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        self.inner.extend(iter)
    }
}

impl<Q: ?Sized + Ord, K: Ord + std::borrow::Borrow<Q>, V> std::ops::Index<&Q> for Map<K, V> {
    type Output = V;
    fn index(&self, k: &Q) -> &V {
        self.inner.get(k).expect("no entry found for key")
    }
}

/// A JSON value, mirroring `serde_json::Value`.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `value.get("key")` on objects, `value.get(3)` on arrays; `None`
    /// elsewhere.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    pub fn get_mut<I: ValueIndex>(&mut self, index: I) -> Option<&mut Value> {
        index.index_into_mut(self)
    }

    /// JSON-Pointer lookup (`/a/b/0`).
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        let mut cur = self;
        for seg in pointer.strip_prefix('/')?.split('/') {
            let seg = seg.replace("~1", "/").replace("~0", "~");
            cur = match cur {
                Value::Object(m) => m.get(seg.as_str())?,
                Value::Array(a) => a.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Replace with Null and return the previous value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

/// Index type for [`Value::get`] — `&str`, `String`, or `usize`.
pub trait ValueIndex {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value>;
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value;
}

impl ValueIndex for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_object_mut().and_then(|m| m.get_mut(self))
    }
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        if v.is_null() {
            *v = Value::Object(Map::new());
        }
        match v {
            Value::Object(m) => m.entry(self.to_string()).or_insert(Value::Null),
            _ => panic!("cannot index into {} with a string key", v.kind_name()),
        }
    }
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (**self).index_into(v)
    }
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        (**self).index_into_mut(v)
    }
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        (**self).index_or_insert(v)
    }
}

impl ValueIndex for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        self.as_str().index_into_mut(v)
    }
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        self.as_str().index_or_insert(v)
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_array_mut().and_then(|a| a.get_mut(*self))
    }
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        match v {
            Value::Array(a) => a.get_mut(*self).expect("index out of bounds"),
            _ => panic!("cannot index into {} with a usize", v.kind_name()),
        }
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl<I: ValueIndex> std::ops::IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_or_insert(self)
    }
}

impl fmt::Display for Value {
    /// Compact JSON, exactly like `serde_json`'s `Display` for `Value`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&write_compact(self))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl<T: Into<Number>> From<T> for Value {
    fn from(v: T) -> Self {
        Value::Number(v.into())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Self {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

// Scalar comparisons (`value["k"] == 4`), mirroring `serde_json`.
macro_rules! value_partial_eq_num {
    ($($t:ty => $as:ident: $conv:ty,)*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$as().map_or(false, |n| n == *other as $conv)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_partial_eq_num! {
    i8 => as_i64: i64,
    i16 => as_i64: i64,
    i32 => as_i64: i64,
    i64 => as_i64: i64,
    isize => as_i64: i64,
    u8 => as_u64: u64,
    u16 => as_u64: u64,
    u32 => as_u64: u64,
    u64 => as_u64: u64,
    usize => as_u64: u64,
    f32 => as_f64: f64,
    f64 => as_f64: f64,
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self.as_str())
    }
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact (no whitespace) JSON text.
pub fn write_compact(v: &Value) -> String {
    let mut out = String::new();
    write_compact_into(&mut out, v);
    out
}

fn write_compact_into(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact_into(out, item);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact_into(out, item);
            }
            out.push('}');
        }
    }
}

/// Pretty (2-space indented) JSON text.
pub fn write_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty_into(&mut out, v, 0);
    out
}

fn write_pretty_into(out: &mut String, v: &Value, depth: usize) {
    const INDENT: &str = "  ";
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                write_pretty_into(out, item, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty_into(out, item, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push('}');
        }
        other => write_compact_into(out, other),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse JSON text into a [`Value`].
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pair handling for characters above BMP.
                        if (0xd800..0xdc00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::new("unpaired surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: re-decode from the original slice.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::new("truncated \\u"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(out)),
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(out)),
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }
}
