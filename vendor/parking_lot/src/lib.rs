//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's API shape: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and a
//! poisoned lock is recovered rather than propagated — matching
//! parking_lot's no-poisoning behavior.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
