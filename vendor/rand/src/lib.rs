//! Offline stand-in for `rand` (0.9 API surface).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over numeric ranges — the subset used by this
//! workspace's tests and benches. The generator is xorshift64*, which is
//! deterministic and plenty uniform for test-data generation (it is NOT
//! the CSPRNG real `StdRng` uses).

pub mod rngs {
    /// Deterministic xorshift64* generator.
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn step(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }
}

/// Element types drawable from a range. Mirrors real rand's
/// `SampleUniform` so `Range<T>` has ONE blanket `SampleRange` impl and
/// float-literal ranges unify with the surrounding type (e.g. `f32`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between(lo: Self, hi: Self, inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! float_sample_uniform {
    ($($t:ty)*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, _inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self {
                let unit = (next() >> 11) as f64 / (1u64 << 53) as f64;
                let (l, h) = (lo as f64, hi as f64);
                let v = l + unit * (h - l);
                (if v >= h { l } else { v }) as $t
            }
        }
    )*};
}
float_sample_uniform!(f32 f64);

macro_rules! int_sample_uniform {
    ($($t:ty)*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range");
                let off = (next() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

/// Range types [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample_between(self.start, self.end, false, next)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample_between(*self.start(), *self.end(), true, next)
    }
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}
