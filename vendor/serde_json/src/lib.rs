//! Offline stand-in for `serde_json`.
//!
//! A thin facade over the vendored `serde` crate's [`serde::json`] module:
//! re-exports [`Value`], [`Number`], [`Map`], [`Error`], and provides the
//! familiar free functions plus the [`json!`] macro. See `vendor/README.md`
//! for why this exists.

pub use serde::json::{Error, Map, Number, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a JSON [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Deserialize a typed value out of a JSON [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::deserialize_value(&value)
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::json::write_compact(&value.serialize_value()))
}

/// Serialize `value` as a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::json::write_pretty(&value.serialize_value()))
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    T::deserialize_value(&serde::json::parse(s)?)
}

/// Build a [`Value`] from a JSON-like literal. Keys must be string
/// literals; values may be nested literals or arbitrary serializable
/// expressions — the subset of `serde_json::json!` this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        let mut __arr: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_internal!(@array __arr $($tt)*);
        $crate::Value::Array(__arr)
    }};
    ({ $($tt:tt)* }) => {{
        let mut __map = $crate::Map::new();
        $crate::json_internal!(@object __map $($tt)*);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serialization")
    };
}

/// Recursive muncher backing [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array elements ----
    (@array $arr:ident) => {};
    (@array $arr:ident null $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!(null));
        $crate::json_internal!(@array $arr $($($rest)*)?);
    };
    (@array $arr:ident true $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!(true));
        $crate::json_internal!(@array $arr $($($rest)*)?);
    };
    (@array $arr:ident false $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!(false));
        $crate::json_internal!(@array $arr $($($rest)*)?);
    };
    (@array $arr:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::json_internal!(@array $arr $($($rest)*)?);
    };
    (@array $arr:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::json_internal!(@array $arr $($($rest)*)?);
    };
    (@array $arr:ident $value:expr , $($rest:tt)*) => {
        $arr.push($crate::json!($value));
        $crate::json_internal!(@array $arr $($rest)*);
    };
    (@array $arr:ident $value:expr) => {
        $arr.push($crate::json!($value));
    };

    // ---- object entries (string-literal keys) ----
    (@object $map:ident) => {};
    (@object $map:ident $key:tt : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!(null));
        $crate::json_internal!(@object $map $($($rest)*)?);
    };
    (@object $map:ident $key:tt : true $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!(true));
        $crate::json_internal!(@object $map $($($rest)*)?);
    };
    (@object $map:ident $key:tt : false $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!(false));
        $crate::json_internal!(@object $map $($($rest)*)?);
    };
    (@object $map:ident $key:tt : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_internal!(@object $map $($($rest)*)?);
    };
    (@object $map:ident $key:tt : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_internal!(@object $map $($($rest)*)?);
    };
    (@object $map:ident $key:tt : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($value));
        $crate::json_internal!(@object $map $($rest)*);
    };
    (@object $map:ident $key:tt : $value:expr) => {
        $map.insert($key.to_string(), $crate::json!($value));
    };
}
