//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use. Instead of statistical sampling, each benchmark closure is warmed
//! up once and then timed over a small fixed number of iterations; the
//! mean is printed in criterion-like format. CLI flags (`--quick`,
//! `--bench`, filters) are accepted and ignored.

use std::fmt;
use std::time::Instant;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration, recorded by `iter`.
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(full_id: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: iters.max(1),
        mean_ns: 0.0,
    };
    f(&mut b);
    println!("{full_id:<48} time: [{}/iter]", human_time(b.mean_ns));
}

pub struct Criterion {
    /// Iterations per measurement (criterion's `sample_size` analog).
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which the benches mostly use directly).
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // CLI flags (--quick, --bench, filters) are accepted and ignored.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}
