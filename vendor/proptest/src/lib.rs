//! Offline stand-in for `proptest`.
//!
//! Deterministic property testing over the subset of proptest this
//! workspace uses: numeric range strategies, regex-literal string
//! strategies, tuples, `collection::vec`, `any::<T>()`, `prop_map`, and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking; failures report the
//! panicking case directly. Each test's RNG is seeded from its module
//! path, so runs are reproducible.

pub mod test_runner {
    /// Cases per property. Real proptest defaults to 256; 64 keeps the
    /// suite fast while still exercising the space.
    pub const CASES: u32 = 64;

    /// Deterministic xorshift64* RNG.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test path (FNV-1a) so every property test gets a
        /// distinct but stable stream.
        pub fn for_test(path: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self {
                state: h | 1, // xorshift state must be non-zero
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in [0, bound) for bound > 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Numeric range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

macro_rules! float_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                let v = lo + rng.unit_f64() * (hi - lo);
                // stay strictly below the exclusive upper bound
                let v = if v >= hi { lo } else { v };
                v as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                // unit_f64 is in [0,1); stretch slightly so the upper
                // bound is reachable, then clamp.
                let v = lo + rng.unit_f64() * (hi - lo) * 1.0000001;
                v.clamp(lo, hi) as $t
            }
        }
    )*};
}
float_range_strategy!(f32 f64);

// ---------------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------------

/// `&str` strategies interpret the literal as a (subset of a) regex:
/// char classes with ranges and negation, `.`, and the `*` / `+` / `?` /
/// `{m}` / `{m,n}` quantifiers, plus the `(?s)` dot-matches-newline flag.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_regex(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_regex(self, rng)
    }
}

enum Atom {
    Dot,
    Class { members: Vec<char>, negated: bool },
    Literal(char),
}

fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let (dot_all, body) = match pattern.strip_prefix("(?s)") {
        Some(rest) => (true, rest),
        None => (false, pattern),
    };
    let chars: Vec<char> = body.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let negated = chars.get(i) == Some(&'^');
                if negated {
                    i += 1;
                }
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        members.push(unescape(chars[i + 1]));
                        i += 2;
                    } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            members.push(c);
                        }
                        i += 3;
                    } else {
                        members.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                Atom::Class { members, negated }
            }
            '\\' if i + 1 < chars.len() => {
                let c = unescape(chars[i + 1]);
                i += 2;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // quantifier
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0usize, 16usize)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed {} quantifier")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad quantifier"),
                        n.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let m: usize = spec.trim().parse().expect("bad quantifier");
                        (m, m)
                    }
                }
            }
            _ => (1, 1),
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(sample_atom(&atom, dot_all, rng));
        }
    }
    out
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn sample_atom(atom: &Atom, dot_all: bool, rng: &mut TestRng) -> char {
    fn printable(rng: &mut TestRng) -> char {
        (0x20u8 + rng.below(0x5f) as u8) as char // ' '..='~'
    }
    match atom {
        Atom::Dot => {
            if dot_all && rng.below(16) == 0 {
                '\n'
            } else {
                printable(rng)
            }
        }
        Atom::Literal(c) => *c,
        Atom::Class { members, negated } => {
            if *negated {
                loop {
                    let c = printable(rng);
                    if !members.contains(&c) {
                        return c;
                    }
                }
            } else {
                assert!(!members.is_empty(), "empty character class");
                members[rng.below(members.len() as u64) as usize]
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Size bounds for [`vec`]; converts from `usize`, `Range`, and
    /// `RangeInclusive` like proptest's `SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// inclusive
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty)*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bounded but sign-varied; avoids NaN/inf which the real
        // `any::<f64>()` also excludes by default.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Property-test harness: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over
/// [`test_runner::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let __strategy = ($($strat,)*);
            for __case in 0..$crate::test_runner::CASES {
                let _ = __case;
                let ($($arg,)*) = $crate::Strategy::generate(&__strategy, &mut __rng);
                $body
            }
        }
    )*};
}

/// Assert within a property body (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}
