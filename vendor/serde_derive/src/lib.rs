//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde::Serialize` / `serde::Deserialize` traits
//! (which collapse serde's data model to a JSON `Value` tree). Token
//! parsing is hand-rolled — no `syn`/`quote` — covering the shapes this
//! workspace uses:
//!
//! - structs with named fields (`#[serde(skip)]`, `#[serde(default)]`,
//!   and `#[serde(skip_serializing_if = "...")]` supported)
//! - tuple ("newtype") structs, serialized transparently
//! - enums with unit, newtype, tuple, and struct variants, externally
//!   tagged exactly like real serde (`"Variant"`, `{"Variant": ...}`)

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    body: Body,
}

enum Body {
    NamedStruct(Vec<Field>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
    skip_ser_if: Option<String>,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    let mut kind = None;
    while let Some(t) = toks.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // outer attribute: consume the bracket group
                toks.next();
            }
            TokenTree::Ident(i) => {
                let s = i.to_string();
                if s == "pub" {
                    // possible pub(crate): consume the paren group
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
            }
            _ => {}
        }
    }
    let kind = kind.expect("derive input must be a struct or enum");
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    // Generic parameters are not supported by this stand-in.
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types ({name})");
        }
    }
    let body = if kind == "struct" {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("unexpected struct body for {name}: {other:?}"),
        }
    } else {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body for {name}: {other:?}"),
        }
    };
    Item { name, body }
}

/// Per-field serde attributes this stub understands.
#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    /// `#[serde(default)]`: a missing (or null) key deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
    /// `#[serde(skip_serializing_if = "path::to::pred")]`: omit the key
    /// when `pred(&self.field)` is true.
    skip_ser_if: Option<String>,
}

/// Parse an attribute token group (the `[...]` contents) as `serde(...)`.
fn parse_serde_attr(stream: TokenStream) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    let mut toks = stream.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return out,
    }
    let Some(TokenTree::Group(g)) = toks.next() else {
        return out;
    };
    let mut inner = g.stream().into_iter().peekable();
    while let Some(t) = inner.next() {
        let TokenTree::Ident(i) = t else { continue };
        match i.to_string().as_str() {
            "skip" => out.skip = true,
            "default" => out.default = true,
            "skip_serializing_if" => {
                if matches!(inner.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    inner.next();
                    if let Some(TokenTree::Literal(l)) = inner.next() {
                        out.skip_ser_if = Some(l.to_string().trim_matches('"').to_string());
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // per-field: attributes, visibility, name, ':', type, ','
        let mut attrs = SerdeAttrs::default();
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        let a = parse_serde_attr(g.stream());
                        attrs.skip |= a.skip;
                        attrs.default |= a.default;
                        if a.skip_ser_if.is_some() {
                            attrs.skip_ser_if = a.skip_ser_if;
                        }
                    }
                }
                _ => break,
            }
        }
        let name = loop {
            match toks.next() {
                None => return fields,
                Some(TokenTree::Ident(i)) => {
                    let s = i.to_string();
                    if s == "pub" {
                        if let Some(TokenTree::Group(g)) = toks.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                toks.next();
                            }
                        }
                        continue;
                    }
                    break s;
                }
                other => panic!("expected field name, got {other:?}"),
            }
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field `{name}`, got {other:?}"),
        }
        // Consume the type, tracking angle-bracket depth so commas inside
        // `BTreeMap<String, f64>` don't end the field early.
        let mut depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    toks.next();
                    break;
                }
                _ => {
                    toks.next();
                }
            }
        }
        fields.push(Field {
            name: name.trim_start_matches("r#").to_string(),
            skip: attrs.skip,
            default: attrs.default,
            skip_ser_if: attrs.skip_ser_if,
        });
    }
}

/// Count fields of a tuple struct / tuple variant by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_tokens = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    count + usize::from(saw_tokens)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // attributes
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        let name = match toks.next() {
            None => return variants,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        // consume up to and including the variant-separating comma
        // (skips discriminants, which this workspace doesn't use on
        // serde-derived enums)
        loop {
            match toks.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                _ => {}
            }
        }
        variants.push(Variant { name, shape });
    }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

const V: &str = "serde::json::Value";
const MAP: &str = "serde::json::Map";
const ERR: &str = "serde::json::Error";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!("{V}::Null"),
        Body::TupleStruct(1) => "serde::Serialize::serialize_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("{V}::Array(vec![{}])", elems.join(", "))
        }
        Body::NamedStruct(fields) => {
            let mut out = format!("let mut __m = {MAP}::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                let insert = format!(
                    "__m.insert(\"{0}\".to_string(), serde::Serialize::serialize_value(&self.{0}));\n",
                    f.name
                );
                match &f.skip_ser_if {
                    Some(pred) => {
                        out.push_str(&format!("if !{pred}(&self.{0}) {{ {insert} }}\n", f.name))
                    }
                    None => out.push_str(&insert),
                }
            }
            out.push_str(&format!("{V}::Object(__m)"));
            out
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => {V}::String(\"{vname}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => {{\n\
                         let mut __m = {MAP}::new();\n\
                         __m.insert(\"{vname}\".to_string(), serde::Serialize::serialize_value(__f0));\n\
                         {V}::Object(__m)\n}}\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut __m = {MAP}::new();\n\
                             __m.insert(\"{vname}\".to_string(), {V}::Array(vec![{}]));\n\
                             {V}::Object(__m)\n}}\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let mut inner = format!("let mut __inner = {MAP}::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "__inner.insert(\"{0}\".to_string(), serde::Serialize::serialize_value({0}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n{inner}\
                             let mut __m = {MAP}::new();\n\
                             __m.insert(\"{vname}\".to_string(), {V}::Object(__inner));\n\
                             {V}::Object(__m)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> {V} {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Build a `Name { field: ..., }` literal body from an object bound as `__m`.
/// Field types are resolved by inference from the struct/variant definition,
/// so the macro never has to reproduce type tokens.
fn named_fields_literal(fields: &[Field], ctor: &str) -> String {
    let mut out = format!("Ok({ctor} {{\n");
    for f in fields {
        if f.skip {
            out.push_str(&format!("{}: Default::default(),\n", f.name));
        } else if f.default {
            out.push_str(&format!(
                "{0}: match __m.get(\"{0}\") {{ Some(__v) if !__v.is_null() => serde::Deserialize::deserialize_value(__v).map_err(|e| e.context(\"{0}\"))?, _ => Default::default() }},\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "{0}: serde::Deserialize::deserialize_value(__m.get(\"{0}\").unwrap_or(&{V}::Null)).map_err(|e| e.context(\"{0}\"))?,\n",
                f.name
            ));
        }
    }
    out.push_str("})");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!("let _ = v; Ok({name})"),
        Body::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::deserialize_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = v.as_array().ok_or_else(|| {ERR}::expected(\"array\", v))?;\n\
                 if __a.len() != {n} {{ return Err({ERR}::new(\"wrong tuple length for {name}\")); }}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Body::NamedStruct(fields) => {
            format!(
                "let __m = v.as_object().ok_or_else(|| {ERR}::expected(\"object\", v))?;\n{}",
                named_fields_literal(fields, name)
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    Shape::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}(serde::Deserialize::deserialize_value(__inner).map_err(|e| e.context(\"{vname}\"))?)),\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::deserialize_value(&__a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __a = __inner.as_array().ok_or_else(|| {ERR}::expected(\"array\", __inner))?;\n\
                             if __a.len() != {n} {{ return Err({ERR}::new(\"wrong tuple length for {name}::{vname}\")); }}\n\
                             Ok({name}::{vname}({}))\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __m = __inner.as_object().ok_or_else(|| {ERR}::expected(\"object\", __inner))?;\n\
                             {}\n}}\n",
                            named_fields_literal(fields, &format!("{name}::{vname}"))
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 {V}::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => Err({ERR}::new(format!(\"unknown {name} variant '{{__other}}'\"))),\n}},\n\
                 {V}::Object(__obj) if __obj.len() == 1 => {{\n\
                 let (__tag, __inner) = __obj.iter().next().expect(\"len checked\");\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => Err({ERR}::new(format!(\"unknown {name} variant '{{__other}}'\"))),\n}}\n}},\n\
                 _ => Err({ERR}::expected(\"{name} variant\", v)),\n}}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &{V}) -> Result<Self, {ERR}> {{\n{body}\n}}\n}}\n"
    )
}
