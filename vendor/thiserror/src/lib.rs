//! Offline stand-in for `thiserror`.
//!
//! Exports the `Error` derive macro directly (the real crate re-exports it
//! from `thiserror-impl`; `use thiserror::Error` resolves identically).
//! Supports the shapes this workspace uses — error *enums* with:
//!
//! - `#[error("literal with {0} or {named} interpolations")]`
//! - `#[error(transparent)]` on newtype variants
//! - `#[from]` on single-field tuple variants (generates `impl From`)
//!
//! Generates `impl Display`, `impl std::error::Error`, and the `From`
//! impls. Token parsing is hand-rolled (no `syn`/`quote`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let item = parse_enum(input);
    generate(&item).parse().expect("generated Error impl")
}

struct ErrorEnum {
    name: String,
    variants: Vec<Variant>,
}

struct Variant {
    name: String,
    /// The `#[error(...)]` payload: either a format-string literal
    /// (verbatim, including quotes) or the `transparent` marker.
    display: Display,
    shape: Shape,
}

enum Display {
    Format(String),
    Transparent,
}

enum Shape {
    Unit,
    /// Tuple fields: (type text, has `#[from]`).
    Tuple(Vec<(String, bool)>),
    /// Named field names.
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_enum(input: TokenStream) -> ErrorEnum {
    let mut toks = input.into_iter().peekable();
    loop {
        match toks.next() {
            None => panic!("thiserror stand-in: expected an enum"),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "enum" => break,
            Some(TokenTree::Ident(i)) if i.to_string() == "struct" => {
                panic!("thiserror stand-in supports enums only")
            }
            _ => {}
        }
    }
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected enum name, got {other:?}"),
    };
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected enum body, got {other:?}"),
    };

    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // variant attributes: capture #[error(...)]
        let mut display = None;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        if let Some(d) = parse_error_attr(g.stream()) {
                            display = Some(d);
                        }
                    }
                }
                _ => break,
            }
        }
        let vname = match toks.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                toks.next();
                Shape::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_field_names(g.stream());
                toks.next();
                Shape::Struct(names)
            }
            _ => Shape::Unit,
        };
        // consume the trailing comma
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            }
        }
        variants.push(Variant {
            display: display.unwrap_or_else(|| panic!("variant {vname} is missing #[error(...)]")),
            name: vname,
            shape,
        });
    }
    ErrorEnum { name, variants }
}

/// If the attribute tokens are `error(...)`, extract the payload.
fn parse_error_attr(stream: TokenStream) -> Option<Display> {
    let mut toks = stream.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "error" => {}
        _ => return None,
    }
    let payload = match toks.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let mut inner = payload.into_iter();
    match inner.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "transparent" => Some(Display::Transparent),
        Some(TokenTree::Literal(l)) => Some(Display::Format(l.to_string())),
        other => panic!("unsupported #[error(...)] payload: {other:?}"),
    }
}

/// Tuple-variant fields: type text + whether `#[from]` is present.
/// Splits on top-level commas (angle-bracket aware).
fn parse_tuple_fields(stream: TokenStream) -> Vec<(String, bool)> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    'outer: loop {
        let mut has_from = false;
        // field attributes
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        has_from |= g
                            .stream()
                            .into_iter()
                            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "from"));
                    }
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        if toks.peek().is_none() {
            break 'outer;
        }
        let mut ty = String::new();
        let mut depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    toks.next();
                    break;
                }
                _ => {}
            }
            let t = toks.next().expect("peeked");
            if !ty.is_empty() && !matches!(&t, TokenTree::Punct(_)) && !ty.ends_with(':') {
                ty.push(' ');
            }
            ty.push_str(&t.to_string());
        }
        fields.push((ty, has_from));
    }
    fields
}

/// Named-struct-variant field names (types skipped, angle-bracket aware).
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // attributes / visibility
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match toks.next() {
            None => return names,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field {name}, got {other:?}"),
        }
        let mut depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    toks.next();
                    break;
                }
                _ => {}
            }
            toks.next();
        }
        names.push(name);
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn generate(item: &ErrorEnum) -> String {
    let name = &item.name;
    let mut arms = String::new();
    let mut from_impls = String::new();

    for v in &item.variants {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => {
                let fmt = match &v.display {
                    Display::Format(f) => f.clone(),
                    Display::Transparent => {
                        panic!("#[error(transparent)] needs exactly one field ({vname})")
                    }
                };
                arms.push_str(&format!("{name}::{vname} => write!(f, {fmt}),\n"));
            }
            Shape::Tuple(fields) => {
                let binds: Vec<String> = (0..fields.len()).map(|i| format!("_{i}")).collect();
                let pat = binds.join(", ");
                match &v.display {
                    Display::Transparent => {
                        arms.push_str(&format!(
                            "{name}::{vname}({pat}) => write!(f, \"{{}}\", _0),\n"
                        ));
                    }
                    Display::Format(fmt) => {
                        // `{0}`-style placeholders resolve against the
                        // positional args appended after the format string.
                        arms.push_str(&format!(
                            "{name}::{vname}({pat}) => write!(f, {fmt}, {pat}),\n"
                        ));
                    }
                }
                for (ty, has_from) in fields {
                    if *has_from {
                        if fields.len() != 1 {
                            panic!("#[from] requires a single-field variant ({vname})");
                        }
                        from_impls.push_str(&format!(
                            "impl From<{ty}> for {name} {{\n\
                             fn from(v: {ty}) -> Self {{ {name}::{vname}(v) }}\n}}\n"
                        ));
                    }
                }
            }
            Shape::Struct(field_names) => {
                let pat = field_names.join(", ");
                match &v.display {
                    Display::Transparent => {
                        panic!("#[error(transparent)] needs a tuple variant ({vname})")
                    }
                    Display::Format(fmt) => {
                        // Named placeholders capture the destructured
                        // bindings via inline format-args capture.
                        arms.push_str(&format!(
                            "#[allow(unused_variables)]\n\
                             {name}::{vname} {{ {pat} }} => write!(f, {fmt}),\n"
                        ));
                    }
                }
            }
        }
    }

    format!(
        "impl std::fmt::Display for {name} {{\n\
         fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
         match self {{\n{arms}}}\n}}\n}}\n\
         impl std::error::Error for {name} {{}}\n\
         {from_impls}"
    )
}
