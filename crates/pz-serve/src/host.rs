//! The session host: many tenants, many concurrent sessions, one
//! substrate.
//!
//! [`ServeHost`] assembles the per-tenant client stack
//! (simulator → tracing → global fair scheduler → shared response cache),
//! installs the admission controller on every tenant context, and drives
//! batches of [`SessionJob`]s on real threads against the shared virtual
//! clock, collecting per-session outcomes and aggregate
//! [`ServeMetrics`].
//!
//! The stack order is deliberate:
//!
//! ```text
//!   shared CachingClient          — hits are free and skip arbitration
//!     └ ScheduledClient           — WFQ slot per provider call
//!         └ TracedClient          — leaf span per provider call
//!             └ SimulatedLlm      — tenant seed, faults, quota ledger
//! ```
//!
//! so a cache hit consumes no model slot (it uses no provider capacity)
//! and a quota refusal never reaches the scheduler at all.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionStats};
use crate::metrics::{jain_fairness, percentile, ServeMetrics, TenantMetrics};
use crate::scheduler::{GlobalScheduler, ScheduledClient, SchedulerStats};
use crate::tenant::{Tenant, TenantSpec};
use pz_core::context::PzContext;
use pz_core::error::{PzError, PzResult};
use pz_core::exec::ExecutionConfig;
use pz_core::ops::logical::LogicalPlan;
use pz_core::optimizer::policy::Policy;
use pz_core::ExecutionOutcome;
use pz_llm::{CachingClient, Catalog, LlmClient, VirtualClock};
use std::collections::BTreeMap;
use std::sync::{Arc, Barrier, Mutex};

/// Host-level configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub admission: AdmissionConfig,
    /// Share the exact-match response cache across tenants (content-hash
    /// keyed; audited leak-free). Off = per-tenant caches.
    pub shared_cache: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionConfig::default(),
            shared_cache: true,
        }
    }
}

/// One session's work: a pipeline run on behalf of a tenant.
#[derive(Clone)]
pub struct SessionJob {
    pub tenant: String,
    pub session: String,
    pub plan: LogicalPlan,
    pub policy: Policy,
    pub config: ExecutionConfig,
    /// Interactive sessions are latency-sensitive chat turns; batch
    /// sessions are throughput jobs. Reported per class in the metrics.
    pub interactive: bool,
}

impl SessionJob {
    pub fn new(tenant: impl Into<String>, session: impl Into<String>, plan: LogicalPlan) -> Self {
        Self {
            tenant: tenant.into(),
            session: session.into(),
            plan,
            policy: Policy::MaxQuality,
            config: ExecutionConfig::sequential(),
            interactive: true,
        }
    }

    pub fn with_config(mut self, config: ExecutionConfig) -> Self {
        self.config = config;
        self
    }

    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    pub fn batch(mut self) -> Self {
        self.interactive = false;
        self
    }
}

/// What happened to one submitted session.
pub struct SessionOutcome {
    pub tenant: String,
    pub session: String,
    pub interactive: bool,
    /// The run's result. `Err(PzError::Overloaded)` = shed by admission.
    pub result: PzResult<ExecutionOutcome>,
    /// Submission → completion on the virtual clock (includes queue wait).
    pub latency_secs: f64,
}

impl SessionOutcome {
    /// Was this session shed (structured refusal, not a pipeline failure)?
    pub fn shed(&self) -> bool {
        matches!(&self.result, Err(e) if e.is_overloaded())
    }
}

/// Report for one [`ServeHost::serve`] batch.
pub struct ServeReport {
    pub outcomes: Vec<SessionOutcome>,
    pub metrics: ServeMetrics,
    pub scheduler: SchedulerStats,
    pub admission: AdmissionStats,
}

/// A multi-tenant pipeline serving host over the shared substrate.
pub struct ServeHost {
    clock: VirtualClock,
    catalog: Catalog,
    scheduler: GlobalScheduler,
    admission: AdmissionController,
    config: ServeConfig,
    /// Prototype handle on the shared cache; each tenant gets a
    /// `with_inner` view over its own client stack.
    shared_cache: Option<CachingClient>,
    tenants: BTreeMap<String, Tenant>,
}

impl ServeHost {
    pub fn new(config: ServeConfig) -> Self {
        let clock = VirtualClock::new();
        let catalog = Catalog::builtin();
        Self {
            scheduler: GlobalScheduler::new(&catalog),
            admission: AdmissionController::new(config.admission, clock.clone()),
            clock,
            catalog,
            config,
            shared_cache: None,
            tenants: BTreeMap::new(),
        }
    }

    /// The host's shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The model catalog all tenants share.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The cross-tenant scheduler (for inspection).
    pub fn scheduler(&self) -> &GlobalScheduler {
        &self.scheduler
    }

    /// The admission controller (for inspection).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Provision a tenant: build its isolated context and wire it into the
    /// shared scheduler, admission gate, and (optionally) shared cache.
    pub fn add_tenant(&mut self, spec: TenantSpec) -> &Tenant {
        self.scheduler.register_tenant(&spec.id, spec.weight);
        let ledger = pz_llm::UsageLedger::with_quota(spec.quota);
        // Tenant-isolated base: own simulator (seed + faults), own ledger,
        // own tracer/breakers — on the host's shared clock.
        let ctx = PzContext::simulated_shared(spec.sim_config(), self.clock.clone(), ledger);
        // simulated_shared leaves a TracedClient over the simulator on
        // ctx.llm; arbitration goes outside tracing, cache outside both.
        let scheduled: Arc<dyn LlmClient> = Arc::new(ScheduledClient::new(
            ctx.llm.clone(),
            self.scheduler.clone(),
            spec.id.clone(),
        ));
        let cache = if self.config.shared_cache {
            match &self.shared_cache {
                Some(proto) => proto.with_inner(scheduled),
                None => {
                    let first = CachingClient::new(scheduled);
                    self.shared_cache = Some(first.clone());
                    first
                }
            }
        } else {
            CachingClient::new(scheduled)
        }
        .with_tracer(ctx.tracer.clone())
        .with_ledger(ctx.ledger.clone());
        let mut ctx = ctx
            .with_client(Arc::new(cache.clone()))
            .with_admission(Arc::new(self.admission.clone()));
        ctx.cache = Some(cache);
        let id = spec.id.clone();
        self.tenants.insert(id.clone(), Tenant { spec, ctx });
        self.tenants.get(&id).expect("just inserted")
    }

    /// Look up a provisioned tenant.
    pub fn tenant(&self, id: &str) -> Option<&Tenant> {
        self.tenants.get(id)
    }

    /// A context clone for one of `tenant`'s sessions (shares the tenant's
    /// ledger, breakers, registry and tracer).
    pub fn session_ctx(&self, tenant: &str) -> Option<PzContext> {
        self.tenants.get(tenant).map(|t| t.ctx.clone())
    }

    /// Run one session inline (no extra thread), measured on the clock.
    pub fn run_session(&self, job: SessionJob) -> SessionOutcome {
        let ctx = self
            .session_ctx(&job.tenant)
            .expect("unknown tenant in SessionJob");
        Self::run_on(&ctx, job)
    }

    fn run_on(ctx: &PzContext, job: SessionJob) -> SessionOutcome {
        let t0 = ctx.clock.now_secs();
        let result = pz_core::execute(ctx, &job.plan, &job.policy, job.config);
        SessionOutcome {
            tenant: job.tenant,
            session: job.session,
            interactive: job.interactive,
            latency_secs: ctx.clock.now_secs() - t0,
            result,
        }
    }

    /// Drive a batch of sessions concurrently — one thread per job, all
    /// submitting together — and aggregate the outcome into serving
    /// metrics. Admission decides who runs, queues, or is shed; the
    /// scheduler arbitrates model slots among the admitted.
    pub fn serve(&self, jobs: Vec<SessionJob>) -> ServeReport {
        let t_start = self.clock.now_secs();
        let submitted = jobs.len();
        let barrier = Arc::new(Barrier::new(jobs.len()));
        let outcomes: Arc<Mutex<Vec<SessionOutcome>>> =
            Arc::new(Mutex::new(Vec::with_capacity(jobs.len())));
        std::thread::scope(|s| {
            for job in jobs {
                let ctx = self
                    .session_ctx(&job.tenant)
                    .expect("unknown tenant in SessionJob");
                let barrier = barrier.clone();
                let outcomes = outcomes.clone();
                s.spawn(move || {
                    barrier.wait();
                    let outcome = Self::run_on(&ctx, job);
                    outcomes.lock().unwrap().push(outcome);
                });
            }
        });
        let outcomes = Arc::into_inner(outcomes)
            .expect("all session threads joined")
            .into_inner()
            .unwrap();
        let metrics = self.aggregate(&outcomes, submitted, t_start);
        ServeReport {
            outcomes,
            metrics,
            scheduler: self.scheduler.stats(),
            admission: self.admission.stats(),
        }
    }

    fn aggregate(
        &self,
        outcomes: &[SessionOutcome],
        submitted: usize,
        t_start: f64,
    ) -> ServeMetrics {
        let completed: Vec<&SessionOutcome> =
            outcomes.iter().filter(|o| o.result.is_ok()).collect();
        let shed = outcomes.iter().filter(|o| o.shed()).count();
        let latencies: Vec<f64> = completed.iter().map(|o| o.latency_secs).collect();
        let span = self.clock.now_secs() - t_start;
        let mut per_tenant = Vec::new();
        let mut shares = Vec::new();
        for (id, tenant) in &self.tenants {
            let done = completed.iter().filter(|o| &o.tenant == id).count();
            per_tenant.push(TenantMetrics {
                tenant: id.clone(),
                sessions_completed: done,
                sessions_shed: outcomes
                    .iter()
                    .filter(|o| &o.tenant == id && o.shed())
                    .count(),
                cost_usd: tenant.ctx.ledger.total_cost_usd(),
                llm_calls: tenant.ctx.ledger.total_requests(),
            });
            shares.push(done as f64);
        }
        ServeMetrics {
            sessions_submitted: submitted,
            sessions_completed: completed.len(),
            sessions_shed: shed,
            shed_rate: if submitted == 0 {
                0.0
            } else {
                shed as f64 / submitted as f64
            },
            p50_latency_secs: percentile(&latencies, 0.50),
            p99_latency_secs: percentile(&latencies, 0.99),
            throughput_per_sec: if span > 0.0 {
                completed.len() as f64 / span
            } else {
                0.0
            },
            fairness_jain: jain_fairness(&shares),
            per_tenant,
        }
    }
}

/// Convenience check used by tests and the bench harness: did `e` shed
/// with the structured overload error (as opposed to failing)?
pub fn is_shed(e: &PzError) -> bool {
    e.is_overloaded()
}
