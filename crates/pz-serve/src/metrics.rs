//! Serving metrics: latency percentiles, throughput, fairness, shed rate.

use serde::Serialize;

/// Nearest-rank percentile over an unsorted sample. `q` in [0, 1].
/// Returns 0.0 for an empty sample.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Jain's fairness index over per-tenant service shares:
/// `(Σx)² / (n · Σx²)`. 1.0 = perfectly fair, 1/n = one tenant got
/// everything. Returns 1.0 for degenerate inputs (≤ 1 tenant or all-zero
/// service — nothing to be unfair about).
pub fn jain_fairness(shares: &[f64]) -> f64 {
    if shares.len() <= 1 {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sum_sq)
}

/// Per-tenant accounting in a [`ServeMetrics`] report.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct TenantMetrics {
    pub tenant: String,
    pub sessions_completed: usize,
    pub sessions_shed: usize,
    pub cost_usd: f64,
    pub llm_calls: usize,
}

/// Aggregate serving metrics for one load run (BENCH json payload).
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ServeMetrics {
    pub sessions_submitted: usize,
    pub sessions_completed: usize,
    pub sessions_shed: usize,
    /// Fraction of submissions shed with a structured `Overloaded` error.
    pub shed_rate: f64,
    /// Virtual-clock session latency percentiles (submission → completion),
    /// admitted sessions only.
    pub p50_latency_secs: f64,
    pub p99_latency_secs: f64,
    /// Completed sessions per virtual-clock second.
    pub throughput_per_sec: f64,
    /// Jain's index over per-tenant completed-session service.
    pub fairness_jain: f64,
    pub per_tenant: Vec<TenantMetrics>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.5), 2.0);
        assert_eq!(percentile(&s, 0.99), 4.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        // Unsorted input is fine.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[5.0]), 1.0);
        assert!((jain_fairness(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One tenant hogging everything: 1/n.
        let j = jain_fairness(&[4.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12, "{j}");
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn metrics_serialize() {
        let m = ServeMetrics {
            sessions_submitted: 10,
            sessions_completed: 8,
            sessions_shed: 2,
            shed_rate: 0.2,
            fairness_jain: 0.97,
            ..Default::default()
        };
        let j = serde_json::to_string(&m).unwrap();
        assert!(j.contains("\"shed_rate\":0.2"), "{j}");
        assert!(j.contains("fairness_jain"), "{j}");
    }
}
