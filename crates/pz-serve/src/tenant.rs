//! Per-tenant state and isolation boundaries.
//!
//! A tenant is the unit of isolation: it owns its usage ledger (with a
//! hard [`Quota`]), its fault plan and injector, its circuit breakers, and
//! its tracer. All of those live on the tenant's own [`PzContext`], so one
//! tenant's outage storm trips only its own breakers and one tenant's
//! spend can never land on another's bill. What tenants *share* — by
//! construction, not by accident — is the virtual clock (one timebase),
//! the model catalog, the global per-model concurrency scheduler, the
//! admission controller, and (optionally) the exact-match response cache,
//! whose keys are pure content hashes audited in `pz_llm::cache` to be
//! leak-free.

use pz_core::context::PzContext;
use pz_llm::{FaultPlan, Quota, SimConfig, UsageLedger};
use serde::{Deserialize, Serialize};

/// Declarative description of one tenant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Stable identifier (also the scheduler's fair-queueing key).
    pub id: String,
    /// Relative scheduler share. Interactive tenants typically get a
    /// larger weight than batch tenants.
    pub weight: f64,
    /// Hard budget; `Quota::unlimited()` for none. Enforced atomically at
    /// the billing point — an over-budget call is refused, never billed.
    pub quota: Quota,
    /// Simulator seed for this tenant's deterministic behaviour.
    pub seed: u64,
    /// Scripted faults applied to *this tenant only*.
    pub fault_plan: FaultPlan,
}

impl TenantSpec {
    pub fn new(id: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            weight: 1.0,
            quota: Quota::unlimited(),
            seed: 42,
            fault_plan: FaultPlan::default(),
        }
    }

    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    pub fn with_quota(mut self, quota: Quota) -> Self {
        self.quota = quota;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The simulator configuration this spec implies.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            seed: self.seed,
            fault_plan: self.fault_plan.clone(),
            ..SimConfig::default()
        }
    }
}

/// A provisioned tenant: its spec plus its isolated runtime context.
pub struct Tenant {
    pub spec: TenantSpec,
    /// The tenant's execution context. Clones share state, so handing a
    /// clone to each of the tenant's sessions keeps them on one ledger,
    /// one breaker set, one tracer.
    pub ctx: PzContext,
}

impl Tenant {
    /// The tenant's own ledger (quota-bearing).
    pub fn ledger(&self) -> &UsageLedger {
        &self.ctx.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_round_trips() {
        let spec = TenantSpec::new("acme")
            .with_weight(4.0)
            .with_quota(Quota::cost_limit(1.5))
            .with_seed(7)
            .with_fault_plan(FaultPlan::parse("gpt-4o:outage@0..10", 7).unwrap());
        assert_eq!(spec.id, "acme");
        assert_eq!(spec.weight, 4.0);
        assert_eq!(spec.quota.max_cost_usd, Some(1.5));
        let cfg = spec.sim_config();
        assert_eq!(cfg.seed, 7);
        assert!(!cfg.fault_plan.is_empty());
        // Serializable for host configs / traffic files.
        let j = serde_json::to_string(&spec).unwrap();
        let back: TenantSpec = serde_json::from_str(&j).unwrap();
        assert_eq!(back.id, spec.id);
    }
}
