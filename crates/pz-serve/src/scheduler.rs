//! Cross-session weighted-fair model scheduling.
//!
//! Each [`pz_llm::ModelCard`] advertises a `max_concurrency` — the
//! provider-side cap on simultaneous requests. Inside a single run the
//! executor's worker pools already respect it, but a serving host runs
//! *many* pipelines at once over the same provider pool, so the cap has to
//! be arbitrated globally: [`GlobalScheduler`] holds one slot table per
//! model and every tenant's client acquires a slot before each call.
//!
//! Arbitration is weighted fair queueing (start-time fair queueing over
//! unit-cost requests): each tenant carries a weight, each granted request
//! advances the tenant's virtual finish tag by `1/weight`, and a freed
//! slot goes to the waiter with the smallest tag (FIFO within a tenant).
//! An interactive tenant with weight 4 therefore gets four slots for every
//! one a weight-1 batch tenant gets while both are backlogged — a
//! 1M-record batch job cannot starve chat turns — while an idle tenant's
//! tag is clamped up to the scheduler's virtual time on arrival so it
//! cannot bank service while away and then monopolize the pool.
//!
//! Blocking is on a condvar, not the virtual clock: simulated calls are
//! instantaneous in wall time, so a waiter is always unblocked by the
//! thread currently holding the slot finishing its call.

use pz_llm::{
    Catalog, CompletionRequest, CompletionResponse, EmbeddingRequest, EmbeddingResponse, LlmClient,
    LlmError, ModelId,
};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Counters describing the scheduler's life so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct SchedulerStats {
    /// Slots granted (one per model call that went through arbitration).
    pub granted: u64,
    /// Grants that had to wait for a slot or for their fair turn.
    pub queued: u64,
    /// High-water mark of simultaneous waiters.
    pub max_waiters: usize,
}

struct TenantState {
    weight: f64,
    /// Virtual finish tag of this tenant's most recently enqueued request.
    next_tag: f64,
}

struct Waiter {
    seq: u64,
    tag: f64,
    model: ModelId,
}

struct SchedState {
    caps: HashMap<ModelId, usize>,
    in_flight: HashMap<ModelId, usize>,
    tenants: HashMap<String, TenantState>,
    waiters: Vec<Waiter>,
    /// Virtual time: finish tag of the most recently granted request.
    /// Newly active tenants start here, so idle time banks no credit.
    vtime: f64,
    seq: u64,
    stats: SchedulerStats,
}

impl SchedState {
    /// Is `seq` the front of the queue for its model — smallest finish
    /// tag, ties broken by arrival order?
    fn is_front(&self, seq: u64, model: &ModelId) -> bool {
        let me = match self.waiters.iter().find(|w| w.seq == seq) {
            Some(w) => w,
            None => return false,
        };
        self.waiters
            .iter()
            .filter(|w| &w.model == model)
            .all(|w| (w.tag, w.seq) >= (me.tag, me.seq))
    }
}

/// Arbitration of per-model concurrency caps across every session a host
/// runs. Clones share state.
#[derive(Clone)]
pub struct GlobalScheduler {
    state: Arc<Mutex<SchedState>>,
    cond: Arc<Condvar>,
}

impl GlobalScheduler {
    /// Scheduler enforcing `catalog`'s per-model `max_concurrency` caps.
    /// Models with cap 0 (and unknown models) are unlimited.
    pub fn new(catalog: &Catalog) -> Self {
        let caps = catalog
            .iter()
            .map(|card| (card.id.clone(), card.max_concurrency))
            .collect();
        Self {
            state: Arc::new(Mutex::new(SchedState {
                caps,
                in_flight: HashMap::new(),
                tenants: HashMap::new(),
                waiters: Vec::new(),
                vtime: 0.0,
                seq: 0,
                stats: SchedulerStats::default(),
            })),
            cond: Arc::new(Condvar::new()),
        }
    }

    /// Register (or re-weight) a tenant. Weights are relative shares;
    /// unregistered tenants get weight 1. Weights are clamped to a small
    /// positive floor so a zero weight cannot stall the queue forever.
    pub fn register_tenant(&self, tenant: &str, weight: f64) {
        let mut st = self.state.lock().unwrap();
        let vtime = st.vtime;
        let entry = st.tenants.entry(tenant.to_string()).or_insert(TenantState {
            weight: 1.0,
            next_tag: vtime,
        });
        entry.weight = weight.max(1e-6);
    }

    /// Acquire a slot for one `model` call on behalf of `tenant`, blocking
    /// until the weighted-fair queue grants it. The returned guard releases
    /// the slot on drop.
    pub fn acquire(&self, tenant: &str, model: &ModelId) -> SlotGuard {
        let mut st = self.state.lock().unwrap();
        let cap = st.caps.get(model).copied().unwrap_or(0);
        if cap == 0 {
            // Unlimited model: count it in-flight (for observability) but
            // never queue.
            *st.in_flight.entry(model.clone()).or_insert(0) += 1;
            st.stats.granted += 1;
            return self.guard(model.clone());
        }
        // Enqueue with a start-time-fair finish tag.
        let vtime = st.vtime;
        let entry = st.tenants.entry(tenant.to_string()).or_insert(TenantState {
            weight: 1.0,
            next_tag: vtime,
        });
        let start = entry.next_tag.max(vtime);
        let tag = start + 1.0 / entry.weight;
        entry.next_tag = tag;
        let seq = st.seq;
        st.seq += 1;
        st.waiters.push(Waiter {
            seq,
            tag,
            model: model.clone(),
        });
        let depth = st.waiters.len();
        st.stats.max_waiters = st.stats.max_waiters.max(depth);
        let mut waited = false;
        loop {
            let in_flight = st.in_flight.get(model).copied().unwrap_or(0);
            if in_flight < cap && st.is_front(seq, model) {
                st.waiters.retain(|w| w.seq != seq);
                *st.in_flight.entry(model.clone()).or_insert(0) += 1;
                st.vtime = st.vtime.max(tag);
                st.stats.granted += 1;
                if waited {
                    st.stats.queued += 1;
                }
                // Another waiter may now be front for a different model.
                self.cond.notify_all();
                return self.guard(model.clone());
            }
            waited = true;
            st = self.cond.wait(st).unwrap();
        }
    }

    /// Snapshot of grant/queue counters.
    pub fn stats(&self) -> SchedulerStats {
        self.state.lock().unwrap().stats
    }

    /// Requests currently holding a slot for `model`.
    pub fn in_flight(&self, model: &ModelId) -> usize {
        self.state
            .lock()
            .unwrap()
            .in_flight
            .get(model)
            .copied()
            .unwrap_or(0)
    }

    fn guard(&self, model: ModelId) -> SlotGuard {
        SlotGuard {
            sched: self.clone(),
            model,
        }
    }

    fn release(&self, model: &ModelId) {
        let mut st = self.state.lock().unwrap();
        if let Some(n) = st.in_flight.get_mut(model) {
            *n = n.saturating_sub(1);
        }
        drop(st);
        self.cond.notify_all();
    }
}

/// RAII slot: releases its model slot (and wakes waiters) on drop.
pub struct SlotGuard {
    sched: GlobalScheduler,
    model: ModelId,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.sched.release(&self.model);
    }
}

/// A client wrapper that routes every call through the global scheduler on
/// behalf of one tenant. Sits *inside* any shared cache, so cache hits
/// bypass arbitration entirely (they consume no provider capacity).
pub struct ScheduledClient {
    inner: Arc<dyn LlmClient>,
    sched: GlobalScheduler,
    tenant: String,
}

impl ScheduledClient {
    pub fn new(
        inner: Arc<dyn LlmClient>,
        sched: GlobalScheduler,
        tenant: impl Into<String>,
    ) -> Self {
        Self {
            inner,
            sched,
            tenant: tenant.into(),
        }
    }
}

impl LlmClient for ScheduledClient {
    fn complete(&self, req: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
        let _slot = self.sched.acquire(&self.tenant, &req.model);
        self.inner.complete(req)
    }

    fn embed(&self, req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
        let _slot = self.sched.acquire(&self.tenant, &req.model);
        self.inner.embed(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn tiny_catalog(cap: usize) -> Catalog {
        let mut c = Catalog::new();
        let mut card = Catalog::builtin().get(&"gpt-4o".into()).unwrap().clone();
        card.max_concurrency = cap;
        c.insert(card);
        c
    }

    #[test]
    fn cap_bounds_concurrent_holders() {
        let sched = GlobalScheduler::new(&tiny_catalog(2));
        let model: ModelId = "gpt-4o".into();
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let sched = sched.clone();
                let model = model.clone();
                let peak = peak.clone();
                let live = live.clone();
                let barrier = barrier.clone();
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..10 {
                        let _slot = sched.acquire("t", &model);
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        live.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "cap violated");
        assert_eq!(sched.stats().granted, 80);
        assert_eq!(sched.in_flight(&model), 0);
    }

    #[test]
    fn unknown_or_uncapped_models_never_queue() {
        let sched = GlobalScheduler::new(&tiny_catalog(2));
        let a = sched.acquire("t", &"never-heard-of-it".into());
        let b = sched.acquire("t", &"never-heard-of-it".into());
        drop(a);
        drop(b);
        assert_eq!(sched.stats().queued, 0);
        assert_eq!(sched.stats().granted, 2);
    }

    /// WFQ: with one slot and both tenants' backlogs fully enqueued, the
    /// weight-4 tenant's requests (finish tags 0.25, 0.5, … 2.5) are
    /// granted ahead of the weight-1 tenant's (tags 1, 2, … 10) — a deep
    /// batch backlog cannot starve interactive traffic.
    #[test]
    fn weighted_fairness_interleaves_backlogged_tenants() {
        let sched = GlobalScheduler::new(&tiny_catalog(1));
        sched.register_tenant("chat", 4.0);
        sched.register_tenant("batch", 1.0);
        let model: ModelId = "gpt-4o".into();
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        // Hold the only slot so every waiter is enqueued before any grant
        // decision happens; grant order is then purely tag-driven.
        let hold = sched.acquire("warm", &model);
        std::thread::scope(|s| {
            for name in ["batch", "chat"] {
                for _ in 0..10 {
                    let sched = sched.clone();
                    let model = model.clone();
                    let order = order.clone();
                    s.spawn(move || {
                        let slot = sched.acquire(name, &model);
                        order.lock().unwrap().push(name);
                        drop(slot);
                    });
                }
            }
            // All 20 enqueued behind the held slot (+1 for the holder's own
            // pass through the queue), then open the floodgate.
            while sched.stats().max_waiters < 20 {
                std::thread::yield_now();
            }
            drop(hold);
        });
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 20);
        // All 10 chat tags are ≤ 2.5; only batch tags 1.0 and 2.0 can tie
        // into that range, so the first 10 grants hold at least 8 chats.
        let chat_head = order.iter().take(10).filter(|n| **n == "chat").count();
        assert!(
            chat_head >= 8,
            "weight-4 tenant got only {chat_head}/10 of the head: {order:?}"
        );
        // And nobody is starved: batch finishes all 10.
        assert_eq!(order.iter().filter(|n| **n == "batch").count(), 10);
    }

    #[test]
    fn scheduled_client_routes_calls_through_slots() {
        use pz_llm::{SimConfig, SimulatedLlm, UsageLedger, VirtualClock};
        let sim = Arc::new(SimulatedLlm::new(
            Catalog::builtin(),
            SimConfig::default(),
            VirtualClock::new(),
            UsageLedger::new(),
        ));
        let sched = GlobalScheduler::new(sim.catalog());
        let client = ScheduledClient::new(sim, sched.clone(), "t");
        let resp = client
            .complete(&CompletionRequest::new("gpt-4o", "hello"))
            .unwrap();
        assert!(!resp.text.is_empty());
        assert_eq!(sched.stats().granted, 1);
        assert_eq!(sched.in_flight(&"gpt-4o".into()), 0);
    }
}
