//! # pz-serve — multi-tenant pipeline serving
//!
//! PalimpChat's interactive sessions don't run one at a time: a deployed
//! host runs many concurrent chat/pipeline sessions for many tenants over
//! one shared substrate. This crate is that host, built so that **no
//! tenant can hurt another**:
//!
//! - **Budgets** — each tenant's [`pz_llm::UsageLedger`] carries a hard
//!   [`pz_llm::Quota`] enforced atomically at the billing point: an
//!   over-budget run is refused or truncated with a flagged partial
//!   result ([`pz_core::exec::ExecutionStats::quota_exhausted`]), never
//!   silently billed.
//! - **Fair scheduling** — [`GlobalScheduler`] arbitrates each model's
//!   `max_concurrency` *across* sessions with weighted fair queueing, so
//!   a million-record batch job cannot starve interactive chat turns.
//! - **Admission control** — [`AdmissionController`] bounds concurrent
//!   runs and the wait queue, shedding overload with structured
//!   [`pz_core::PzError::Overloaded`] errors (deadline-aware: a run whose
//!   predicted queue wait blows its deadline is refused immediately).
//! - **Fault isolation** — breakers, fault injectors, and tracers are
//!   per-tenant: one tenant's outage storm trips only its own circuits.
//! - **Shared caching, audited** — the exact-match response cache may be
//!   shared cross-tenant because its keys are pure content hashes
//!   (audited in `pz_llm::cache`); hits can only ever *reduce* a
//!   tenant's cost, never shift it onto another tenant.

pub mod admission;
pub mod host;
pub mod metrics;
pub mod scheduler;
pub mod tenant;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionStats};
pub use host::{is_shed, ServeConfig, ServeHost, ServeReport, SessionJob, SessionOutcome};
pub use metrics::{jain_fairness, percentile, ServeMetrics, TenantMetrics};
pub use scheduler::{GlobalScheduler, ScheduledClient, SchedulerStats, SlotGuard};
pub use tenant::{Tenant, TenantSpec};
