//! Admission control and load shedding.
//!
//! A serving host cannot run unboundedly many pipelines at once: beyond
//! the run-slot capacity, extra submissions queue, and beyond the queue
//! bound they are *shed* with a structured [`PzError::Overloaded`] rather
//! than allowed to hang or to drag every admitted run's latency down.
//! Shedding is deadline-aware on the way in (a run whose predicted queue
//! wait already blows its deadline is refused immediately — cheaper for
//! everyone than admitting a run that must fail) and on the way through (a
//! queued run whose deadline passes while it waits is shed on wake-up).
//!
//! The controller implements [`pz_core::context::AdmissionGate`], so the
//! executor consults it at the top of every run and releases the slot via
//! RAII on every exit path.

use pz_core::context::AdmissionGate;
use pz_core::error::{PzError, PzResult};
use pz_llm::VirtualClock;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// Capacity limits for a serving host.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Runs executing simultaneously. Must be ≥ 1.
    pub max_concurrent_runs: usize,
    /// Runs allowed to wait for a slot; submissions past this are shed.
    pub max_queued: usize,
    /// Seed for the expected run duration (virtual seconds) before any
    /// run has completed; the controller then tracks an EWMA.
    pub expected_run_secs: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_concurrent_runs: 4,
            max_queued: 8,
            expected_run_secs: 30.0,
        }
    }
}

/// Counters describing admissions and sheds so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct AdmissionStats {
    pub admitted: u64,
    /// Shed because the queue was full.
    pub shed_queue_full: u64,
    /// Shed because the (predicted or actual) queue wait blew the deadline.
    pub shed_deadline: u64,
    /// High-water mark of queued runs.
    pub max_queue_depth: usize,
    /// EWMA of completed run durations, virtual seconds.
    pub ewma_run_secs: f64,
}

struct AdmState {
    running: usize,
    queue: VecDeque<u64>,
    /// Ticket → admission time, for duration tracking.
    started_at: HashMap<u64, f64>,
    next_ticket: u64,
    ewma_run_secs: f64,
    stats: AdmissionStats,
}

/// Bounded-queue admission controller with deadline-aware shedding.
/// Clones share state.
#[derive(Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// The host's shared virtual clock: queued runs consult it on wake-up
    /// to detect a deadline that passed while the runs ahead advanced time.
    clock: VirtualClock,
    state: Arc<Mutex<AdmState>>,
    cond: Arc<Condvar>,
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig, clock: VirtualClock) -> Self {
        let config = AdmissionConfig {
            max_concurrent_runs: config.max_concurrent_runs.max(1),
            ..config
        };
        Self {
            config,
            clock,
            state: Arc::new(Mutex::new(AdmState {
                running: 0,
                queue: VecDeque::new(),
                started_at: HashMap::new(),
                next_ticket: 1,
                ewma_run_secs: config.expected_run_secs,
                stats: AdmissionStats::default(),
            })),
            cond: Arc::new(Condvar::new()),
        }
    }

    /// Predicted wait from the back of a queue of depth `depth`: each slot
    /// turns over one queued run per `ewma` seconds on average.
    fn predicted_wait_secs(&self, ewma: f64, depth: usize) -> f64 {
        ewma * (depth as f64 + 1.0) / self.config.max_concurrent_runs as f64
    }

    /// Snapshot of admission counters.
    pub fn stats(&self) -> AdmissionStats {
        let st = self.state.lock().unwrap();
        AdmissionStats {
            ewma_run_secs: st.ewma_run_secs,
            ..st.stats
        }
    }

    /// Runs currently holding a slot.
    pub fn running(&self) -> usize {
        self.state.lock().unwrap().running
    }
}

impl AdmissionGate for AdmissionController {
    fn begin(&self, now_secs: f64, deadline_at_secs: Option<f64>) -> PzResult<u64> {
        let mut st = self.state.lock().unwrap();
        // Fast path: a free slot and nobody queued ahead.
        if st.running < self.config.max_concurrent_runs && st.queue.is_empty() {
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.running += 1;
            st.started_at.insert(ticket, now_secs);
            st.stats.admitted += 1;
            return Ok(ticket);
        }
        // Shed: bounded queue.
        if st.queue.len() >= self.config.max_queued {
            st.stats.shed_queue_full += 1;
            let retry = self.predicted_wait_secs(st.ewma_run_secs, st.queue.len());
            return Err(PzError::Overloaded {
                reason: format!("queue full ({} waiting)", st.queue.len()),
                retry_after_secs: retry.max(1.0),
            });
        }
        // Shed: the predicted wait from the back of the queue already blows
        // the caller's deadline — admitting it would only waste capacity.
        let predicted = self.predicted_wait_secs(st.ewma_run_secs, st.queue.len());
        if let Some(d) = deadline_at_secs {
            if now_secs + predicted >= d {
                st.stats.shed_deadline += 1;
                return Err(PzError::Overloaded {
                    reason: format!(
                        "predicted queue wait {predicted:.1}s blows deadline in {:.1}s",
                        d - now_secs
                    ),
                    retry_after_secs: predicted.max(1.0),
                });
            }
        }
        // Queue (FIFO) and wait for a slot.
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        let depth = st.queue.len();
        st.stats.max_queue_depth = st.stats.max_queue_depth.max(depth);
        loop {
            if st.queue.front() == Some(&ticket) && st.running < self.config.max_concurrent_runs {
                st.queue.pop_front();
                st.running += 1;
                st.started_at.insert(ticket, now_secs);
                st.stats.admitted += 1;
                // The next queued run may also fit (slots free in bursts).
                self.cond.notify_all();
                return Ok(ticket);
            }
            st = self.cond.wait(st).unwrap();
            // Deadline passed while queued (the shared virtual clock is
            // advanced by the runs ahead of us): shed on wake.
            if let Some(d) = deadline_at_secs {
                if self.clock.now_secs() >= d {
                    st.queue.retain(|t| *t != ticket);
                    st.stats.shed_deadline += 1;
                    self.cond.notify_all();
                    return Err(PzError::Overloaded {
                        reason: "deadline passed while queued".into(),
                        retry_after_secs: st.ewma_run_secs.max(1.0),
                    });
                }
            }
        }
    }

    fn end(&self, ticket: u64, now_secs: f64) {
        let mut st = self.state.lock().unwrap();
        st.running = st.running.saturating_sub(1);
        if let Some(t0) = st.started_at.remove(&ticket) {
            let dur = (now_secs - t0).max(0.0);
            // EWMA with alpha 0.3: responsive to load shifts, stable
            // against one outlier run.
            st.ewma_run_secs = 0.7 * st.ewma_run_secs + 0.3 * dur;
        }
        drop(st);
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(max_runs: usize, max_queued: usize) -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig {
                max_concurrent_runs: max_runs,
                max_queued,
                expected_run_secs: 10.0,
            },
            VirtualClock::new(),
        )
    }

    #[test]
    fn admits_up_to_capacity_then_sheds_past_queue_bound() {
        let g = gate(2, 1);
        let a = g.begin(0.0, None).unwrap();
        let b = g.begin(0.0, None).unwrap();
        assert_eq!(g.running(), 2);
        // Third submission would queue; we shed the *fourth* by filling the
        // queue from another thread and submitting once more.
        let g2 = g.clone();
        let queued = std::thread::spawn(move || g2.begin(0.0, None));
        while g.state.lock().unwrap().queue.is_empty() {
            std::thread::yield_now();
        }
        let err = g.begin(0.0, None).unwrap_err();
        assert!(err.is_overloaded(), "{err}");
        assert!(err.to_string().contains("queue full"), "{err}");
        g.end(a, 12.0);
        let c = queued.join().unwrap().unwrap();
        g.end(b, 15.0);
        g.end(c, 20.0);
        let s = g.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.shed_queue_full, 1);
        assert_eq!(g.running(), 0);
        // EWMA moved off the 10s seed after three completions.
        assert!(s.ewma_run_secs > 10.0, "{}", s.ewma_run_secs);
    }

    #[test]
    fn deadline_aware_shed_refuses_unmeetable_runs_immediately() {
        let g = gate(1, 8);
        let _hold = g.begin(0.0, None).unwrap();
        // Predicted wait with one slot and empty queue is ewma = 10s; a
        // 5s deadline cannot be met from the back of the queue.
        let err = g.begin(0.0, Some(5.0)).unwrap_err();
        assert!(err.is_overloaded());
        assert!(err.to_string().contains("deadline"), "{err}");
        assert_eq!(g.stats().shed_deadline, 1);
        // A roomy deadline queues fine.
        let g2 = g.clone();
        let h = std::thread::spawn(move || g2.begin(0.0, Some(100.0)));
        while g.state.lock().unwrap().queue.is_empty() {
            std::thread::yield_now();
        }
        g.end(_hold, 1.0);
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn fifo_order_among_queued_runs() {
        let g = gate(1, 8);
        let hold = g.begin(0.0, None).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for i in 0..3u64 {
                let g = g.clone();
                let order = order.clone();
                s.spawn(move || {
                    // Serialize enqueue order by spinning until it's our turn
                    // to submit.
                    loop {
                        let st = g.state.lock().unwrap();
                        if st.queue.len() as u64 == i {
                            break;
                        }
                        drop(st);
                        std::thread::yield_now();
                    }
                    let t = g.begin(0.0, None).unwrap();
                    order.lock().unwrap().push(i);
                    g.end(t, 0.0);
                });
            }
            while g.state.lock().unwrap().queue.len() < 3 {
                std::thread::yield_now();
            }
            g.end(hold, 0.0);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }
}
