//! Virtual clock.
//!
//! The paper reports pipeline runtimes (e.g. "the workload was executed in
//! about 240s"). Re-running hosted LLM latencies in wall-clock would make
//! the reproduction slow and non-deterministic, so all simulated latency is
//! accounted on a shared virtual clock: each simulated model call *advances*
//! the clock by its modelled latency instead of sleeping.
//!
//! The clock is cheap (a single atomic) and cloneable: clones share state,
//! so an execution engine, its operators, and the usage ledger can all
//! observe one timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing virtual time, stored as integer microseconds.
///
/// Cloning a `VirtualClock` yields a handle onto the *same* timeline.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    micros: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A new clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Current virtual time in whole microseconds.
    pub fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// Advance the clock by `secs` seconds. Negative or non-finite advances
    /// are ignored (the clock is monotone by construction).
    pub fn advance_secs(&self, secs: f64) {
        if secs.is_finite() && secs > 0.0 {
            let micros = (secs * 1e6).round() as u64;
            self.micros.fetch_add(micros, Ordering::Relaxed);
        }
    }

    /// Advance and return the new time in seconds. Useful for "this call
    /// finished at" bookkeeping.
    pub fn advance_and_read(&self, secs: f64) -> f64 {
        self.advance_secs(secs);
        self.now_secs()
    }

    /// Reset to t = 0. Only used between experiments.
    pub fn reset(&self) {
        self.micros.store(0, Ordering::Relaxed);
    }
}

/// The virtual clock is the trace timebase: every span and event in the
/// observability layer is stamped with the same virtual microseconds the
/// ledger and execution statistics report, so traces reconcile exactly.
impl pz_obs::TraceClock for VirtualClock {
    fn now_micros(&self) -> u64 {
        VirtualClock::now_micros(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now_secs(), 0.0);
    }

    #[test]
    fn advances() {
        let c = VirtualClock::new();
        c.advance_secs(1.5);
        c.advance_secs(0.25);
        assert!((c.now_secs() - 1.75).abs() < 1e-9);
    }

    #[test]
    fn clones_share_timeline() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance_secs(2.0);
        assert!((b.now_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ignores_negative_and_nan() {
        let c = VirtualClock::new();
        c.advance_secs(-5.0);
        c.advance_secs(f64::NAN);
        c.advance_secs(f64::INFINITY); // non-representable; also ignored? no: inf is finite? it's not
        assert_eq!(c.now_secs(), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let c = VirtualClock::new();
        c.advance_secs(3.0);
        c.reset();
        assert_eq!(c.now_secs(), 0.0);
    }

    #[test]
    fn micro_resolution() {
        let c = VirtualClock::new();
        c.advance_secs(0.000_001);
        assert_eq!(c.now_micros(), 1);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = VirtualClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance_secs(0.001);
                    }
                });
            }
        });
        assert!((c.now_secs() - 4.0).abs() < 1e-6);
    }
}
