//! Scripted provider fault injection.
//!
//! The uniform `transient_failure_rate` in [`crate::sim::SimConfig`]
//! exercises retry paths but cannot model realistic provider misbehavior:
//! a single model going down for a window, brownouts where only a
//! fraction of calls fail, rate limiting with `retry-after` hints, client
//! timeouts, or malformed completions. A [`FaultPlan`] scripts those as
//! per-model windows on the **virtual clock**, so a fault scenario is as
//! deterministic and replayable as everything else in the substrate: the
//! same plan, seed, and pipeline always fail in exactly the same places.
//!
//! Faults are raised *before* the simulator records latency or usage, so
//! failed attempts bill nothing — the invariant the executors' ledger
//! reconciliation relies on. The one exception is [`FaultKind::Timeout`],
//! which advances the clock by the configured stall before erroring: a
//! timed-out call costs wall time even though it never returns tokens.

use crate::catalog::ModelId;
use crate::client::LlmError;
use crate::hash_unit;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What goes wrong inside a [`FaultWindow`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The provider errors with a generic transient failure.
    Outage,
    /// HTTP-429-style rejection carrying a `retry_after` hint in seconds.
    RateLimit { retry_after_secs: f64 },
    /// The call stalls for `stall_secs` of virtual time, then errors.
    Timeout { stall_secs: f64 },
    /// The provider returns garbage: surfaced as a malformed-output error.
    Malformed,
}

impl FaultKind {
    fn name(&self) -> &'static str {
        match self {
            FaultKind::Outage => "outage",
            FaultKind::RateLimit { .. } => "ratelimit",
            FaultKind::Timeout { .. } => "timeout",
            FaultKind::Malformed => "malformed",
        }
    }
}

/// One scripted fault window for one model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// The model this window afflicts.
    pub model: ModelId,
    /// Window start on the virtual clock, inclusive, in seconds.
    pub start_secs: f64,
    /// Window end, exclusive, in seconds.
    pub end_secs: f64,
    /// What kind of fault calls in the window hit.
    pub kind: FaultKind,
    /// Probability a call inside the window faults: `1.0` is a hard
    /// outage, anything lower a brownout. Draws are seeded and keyed on
    /// a per-plan call counter, so brownouts are deterministic too.
    pub intensity: f64,
}

impl FaultWindow {
    fn contains(&self, now_secs: f64) -> bool {
        now_secs >= self.start_secs && now_secs < self.end_secs
    }
}

/// A seeded script of per-model fault windows.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for brownout draws (independent from the simulator seed so a
    /// fault scenario can be re-rolled without changing model answers).
    pub seed: u64,
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Add a window (builder style).
    pub fn with_window(mut self, window: FaultWindow) -> Self {
        self.windows.push(window);
        self
    }

    /// Hard outage for `model` over `[start, end)`.
    pub fn outage(self, model: impl Into<ModelId>, start: f64, end: f64) -> Self {
        self.with_window(FaultWindow {
            model: model.into(),
            start_secs: start,
            end_secs: end,
            kind: FaultKind::Outage,
            intensity: 1.0,
        })
    }

    /// The fault a call to `model` at virtual time `now_secs` hits, if
    /// any. `draw` must be unique per call (the injector's counter) so
    /// brownout sampling is deterministic yet uncorrelated across calls.
    pub fn fault_for(&self, model: &ModelId, now_secs: f64, draw: u64) -> Option<&FaultWindow> {
        self.windows
            .iter()
            .filter(|w| &w.model == model && w.contains(now_secs))
            .find(|w| {
                w.intensity >= 1.0
                    || hash_unit(&[
                        &self.seed.to_string(),
                        "fault",
                        w.model.as_str(),
                        w.kind.name(),
                        &draw.to_string(),
                    ]) < w.intensity
            })
    }

    /// Parse a compact spec string:
    ///
    /// ```text
    /// gpt-4o:outage@30..1e18; gpt-4o-mini:ratelimit@0..120:retry=30;
    /// llama-3-70b:brownout@10..50:p=0.5; gpt-4o:timeout@5..25:stall=60;
    /// mixtral-8x7b:malformed@0..40:p=0.3
    /// ```
    ///
    /// Clauses are `model:kind@start..end` with optional `:p=<prob>`,
    /// `:retry=<secs>` (ratelimit) and `:stall=<secs>` (timeout) suffixes,
    /// joined by `;`. `brownout` is `outage` with `p` defaulting to 0.5.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan {
            seed,
            windows: Vec::new(),
        };
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let mut parts = clause.split(':');
            let model = parts
                .next()
                .filter(|m| !m.is_empty())
                .ok_or_else(|| format!("missing model in clause {clause:?}"))?;
            let kind_and_range = parts
                .next()
                .ok_or_else(|| format!("missing kind@start..end in clause {clause:?}"))?;
            let (kind_name, range) = kind_and_range
                .split_once('@')
                .ok_or_else(|| format!("expected kind@start..end in clause {clause:?}"))?;
            let (start, end) = range
                .split_once("..")
                .ok_or_else(|| format!("expected start..end in clause {clause:?}"))?;
            let start: f64 = start
                .trim()
                .parse()
                .map_err(|_| format!("bad start {start:?} in clause {clause:?}"))?;
            let end: f64 = end
                .trim()
                .parse()
                .map_err(|_| format!("bad end {end:?} in clause {clause:?}"))?;

            let mut intensity: Option<f64> = None;
            let mut retry_after: Option<f64> = None;
            let mut stall: Option<f64> = None;
            for opt in parts {
                let (key, value) = opt
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=value, got {opt:?}"))?;
                let v: f64 = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad value {value:?} for {key}"))?;
                match key.trim() {
                    "p" => intensity = Some(v),
                    "retry" => retry_after = Some(v),
                    "stall" => stall = Some(v),
                    other => return Err(format!("unknown option {other:?} in {clause:?}")),
                }
            }
            let (kind, default_intensity) = match kind_name.trim() {
                "outage" => (FaultKind::Outage, 1.0),
                "brownout" => (FaultKind::Outage, 0.5),
                "ratelimit" => (
                    FaultKind::RateLimit {
                        retry_after_secs: retry_after.unwrap_or(10.0),
                    },
                    1.0,
                ),
                "timeout" => (
                    FaultKind::Timeout {
                        stall_secs: stall.unwrap_or(30.0),
                    },
                    1.0,
                ),
                "malformed" => (FaultKind::Malformed, 1.0),
                other => return Err(format!("unknown fault kind {other:?}")),
            };
            plan.windows.push(FaultWindow {
                model: model.into(),
                start_secs: start,
                end_secs: end,
                kind,
                intensity: intensity.unwrap_or(default_intensity).clamp(0.0, 1.0),
            });
        }
        Ok(plan)
    }

    /// Render back to the spec syntax accepted by [`FaultPlan::parse`].
    pub fn describe(&self) -> String {
        if self.windows.is_empty() {
            return "(no faults)".into();
        }
        self.windows
            .iter()
            .map(|w| {
                let mut s = format!(
                    "{}:{}@{}..{}",
                    w.model,
                    w.kind.name(),
                    w.start_secs,
                    w.end_secs
                );
                match w.kind {
                    FaultKind::RateLimit { retry_after_secs } => {
                        s.push_str(&format!(":retry={retry_after_secs}"));
                    }
                    FaultKind::Timeout { stall_secs } => {
                        s.push_str(&format!(":stall={stall_secs}"));
                    }
                    _ => {}
                }
                if w.intensity < 1.0 {
                    s.push_str(&format!(":p={}", w.intensity));
                }
                s
            })
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Shared, swappable handle on the active [`FaultPlan`].
///
/// The simulator holds one and consults it per call; contexts expose a
/// clone so the REPL (`:faults`) and CLI (`--fault-plan`) can script
/// faults mid-session without rebuilding the client stack.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Arc<RwLock<FaultPlan>>,
    /// Per-injector call counter driving brownout draws. Separate from
    /// the simulator's transient counter so an empty plan leaves legacy
    /// behavior untouched.
    draws: Arc<AtomicU64>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            inner: Arc::new(RwLock::new(plan)),
            draws: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Replace the active plan.
    pub fn set(&self, plan: FaultPlan) {
        *self.inner.write() = plan;
    }

    /// Remove all scripted faults.
    pub fn clear(&self) {
        self.set(FaultPlan::none());
    }

    /// Snapshot of the active plan.
    pub fn plan(&self) -> FaultPlan {
        self.inner.read().clone()
    }

    pub fn is_active(&self) -> bool {
        !self.inner.read().is_empty()
    }

    /// Check the active plan for a fault afflicting `model` now. Returns
    /// the error to surface; [`FaultKind::Timeout`] stalls are charged by
    /// the caller (the clock lives there).
    ///
    /// The fast path (empty plan) takes a read lock and touches nothing
    /// else, so zero-fault runs stay byte-identical to pre-fault builds.
    pub fn check(&self, model: &ModelId, now_secs: f64) -> Result<(), InjectedFault> {
        let plan = self.inner.read();
        if plan.is_empty() {
            return Ok(());
        }
        let draw = self.draws.fetch_add(1, Ordering::Relaxed);
        let Some(window) = plan.fault_for(model, now_secs, draw) else {
            return Ok(());
        };
        let (error, stall_secs) = match window.kind {
            FaultKind::Outage => (
                LlmError::Transient {
                    attempt: draw as usize,
                    reason: format!("scripted outage for {model}"),
                },
                0.0,
            ),
            FaultKind::RateLimit { retry_after_secs } => {
                // Don't hint past the end of the window: a client that
                // honors the hint should come back when service resumes.
                let hint = retry_after_secs.min((window.end_secs - now_secs).max(0.0));
                (
                    LlmError::RateLimited {
                        model: model.clone(),
                        retry_after_secs: hint,
                    },
                    0.0,
                )
            }
            FaultKind::Timeout { stall_secs } => (
                LlmError::Timeout {
                    model: model.clone(),
                    after_secs: stall_secs,
                },
                stall_secs,
            ),
            FaultKind::Malformed => (
                LlmError::MalformedOutput {
                    model: model.clone(),
                    reason: "truncated completion".into(),
                },
                0.0,
            ),
        };
        Err(InjectedFault { error, stall_secs })
    }
}

/// A fault the injector decided to raise: the error plus any virtual
/// time the call burned before failing (timeouts only).
#[derive(Clone, Debug)]
pub struct InjectedFault {
    pub error: LlmError,
    pub stall_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let inj = FaultInjector::default();
        for t in [0.0, 10.0, 1e9] {
            assert!(inj.check(&"gpt-4o".into(), t).is_ok());
        }
        assert!(!inj.is_active());
    }

    #[test]
    fn outage_window_faults_only_inside() {
        let inj = FaultInjector::new(FaultPlan::default().outage("gpt-4o", 10.0, 20.0));
        assert!(inj.check(&"gpt-4o".into(), 9.9).is_ok());
        let f = inj.check(&"gpt-4o".into(), 10.0).unwrap_err();
        assert!(matches!(f.error, LlmError::Transient { .. }));
        assert!(inj.check(&"gpt-4o".into(), 20.0).is_ok());
        // Other models are unaffected.
        assert!(inj.check(&"gpt-4o-mini".into(), 15.0).is_ok());
    }

    #[test]
    fn ratelimit_hint_clamped_to_window_end() {
        let plan = FaultPlan::parse("gpt-4o:ratelimit@0..30:retry=100", 1).unwrap();
        let inj = FaultInjector::new(plan);
        let f = inj.check(&"gpt-4o".into(), 25.0).unwrap_err();
        match f.error {
            LlmError::RateLimited {
                retry_after_secs, ..
            } => assert!((retry_after_secs - 5.0).abs() < 1e-9),
            other => panic!("expected RateLimited, got {other:?}"),
        }
    }

    #[test]
    fn timeout_reports_stall() {
        let plan = FaultPlan::parse("gpt-4o:timeout@0..10:stall=7", 1).unwrap();
        let inj = FaultInjector::new(plan);
        let f = inj.check(&"gpt-4o".into(), 5.0).unwrap_err();
        assert!((f.stall_secs - 7.0).abs() < 1e-9);
        assert!(matches!(f.error, LlmError::Timeout { .. }));
    }

    #[test]
    fn brownout_fails_a_fraction_of_calls() {
        let plan = FaultPlan::parse("gpt-4o:brownout@0..1000:p=0.5", 7).unwrap();
        let inj = FaultInjector::new(plan);
        let failures = (0..200)
            .filter(|_| inj.check(&"gpt-4o".into(), 5.0).is_err())
            .count();
        assert!((60..=140).contains(&failures), "failures {failures}");
    }

    #[test]
    fn brownout_is_deterministic_across_injectors() {
        let plan = FaultPlan::parse("gpt-4o:brownout@0..100:p=0.4", 9).unwrap();
        let run = || {
            let inj = FaultInjector::new(plan.clone());
            (0..50)
                .map(|_| inj.check(&"gpt-4o".into(), 1.0).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parse_round_trips() {
        let spec = "gpt-4o:outage@30..900; gpt-4o-mini:ratelimit@0..120:retry=30; \
                    llama-3-70b:outage@10..50:p=0.5; mixtral-8x7b:timeout@5..25:stall=60";
        let plan = FaultPlan::parse(spec, 3).unwrap();
        assert_eq!(plan.windows.len(), 4);
        let reparsed = FaultPlan::parse(&plan.describe(), 3).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("gpt-4o", 0).is_err());
        assert!(FaultPlan::parse("gpt-4o:meltdown@0..1", 0).is_err());
        assert!(FaultPlan::parse("gpt-4o:outage@zero..1", 0).is_err());
        assert!(FaultPlan::parse("gpt-4o:outage@0..1:speed=9", 0).is_err());
    }

    #[test]
    fn set_and_clear_swap_the_active_plan() {
        let inj = FaultInjector::default();
        inj.set(FaultPlan::default().outage("gpt-4o", 0.0, 1e9));
        assert!(inj.is_active());
        assert!(inj.check(&"gpt-4o".into(), 1.0).is_err());
        inj.clear();
        assert!(inj.check(&"gpt-4o".into(), 1.0).is_ok());
    }
}
