//! Client abstraction over completion and embedding models.
//!
//! `pz-core` programs against [`LlmClient`]; the reproduction supplies the
//! deterministic [`crate::sim::SimulatedLlm`], but any hosted client could
//! implement the same trait. The trait is object-safe so executors can hold
//! `Arc<dyn LlmClient>`.

use crate::catalog::ModelId;
use crate::usage::Usage;
use thiserror::Error;

/// Errors surfaced by model clients.
#[derive(Clone, Debug, Error, PartialEq)]
pub enum LlmError {
    #[error("unknown model: {0}")]
    UnknownModel(ModelId),
    #[error("model {model} is not a {expected} model")]
    WrongKind {
        model: ModelId,
        expected: &'static str,
    },
    #[error("context window exceeded for {model}: {tokens} tokens > {window}")]
    ContextOverflow {
        model: ModelId,
        tokens: usize,
        window: usize,
    },
    #[error("transient provider error (attempt {attempt}): {reason}")]
    Transient { attempt: usize, reason: String },
    #[error("request rejected: {0}")]
    Rejected(String),
}

impl LlmError {
    /// Whether retrying the identical request may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, LlmError::Transient { .. })
    }
}

/// A completion request.
#[derive(Clone, Debug)]
pub struct CompletionRequest {
    pub model: ModelId,
    /// Optional system preamble; accounted as input tokens.
    pub system: Option<String>,
    /// The prompt body (usually the structured dialect from [`crate::protocol`]).
    pub prompt: String,
    /// Upper bound on output tokens; responses are truncated to fit.
    pub max_output_tokens: usize,
}

impl CompletionRequest {
    pub fn new(model: impl Into<ModelId>, prompt: impl Into<String>) -> Self {
        Self {
            model: model.into(),
            system: None,
            prompt: prompt.into(),
            max_output_tokens: 1024,
        }
    }

    pub fn with_system(mut self, system: impl Into<String>) -> Self {
        self.system = Some(system.into());
        self
    }

    pub fn with_max_output_tokens(mut self, n: usize) -> Self {
        self.max_output_tokens = n;
        self
    }
}

impl From<String> for ModelId {
    fn from(s: String) -> Self {
        ModelId(s)
    }
}

/// A completion response with accounting attached.
#[derive(Clone, Debug)]
pub struct CompletionResponse {
    pub text: String,
    pub usage: Usage,
    /// Modelled latency of this single call in (virtual) seconds.
    pub latency_secs: f64,
    /// Dollar cost of this single call.
    pub cost_usd: f64,
}

/// An embedding request.
#[derive(Clone, Debug)]
pub struct EmbeddingRequest {
    pub model: ModelId,
    pub inputs: Vec<String>,
}

/// An embedding response.
#[derive(Clone, Debug)]
pub struct EmbeddingResponse {
    pub vectors: Vec<Vec<f32>>,
    pub usage: Usage,
    pub latency_secs: f64,
    pub cost_usd: f64,
}

/// Object-safe client interface.
pub trait LlmClient: Send + Sync {
    /// Run a completion.
    fn complete(&self, req: &CompletionRequest) -> Result<CompletionResponse, LlmError>;

    /// Embed a batch of inputs.
    fn embed(&self, req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError>;
}

/// Retry policy with exponential backoff on a virtual clock.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    pub max_attempts: usize,
    pub initial_backoff_secs: f64,
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            initial_backoff_secs: 0.5,
            backoff_multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Run `req` against `client`, retrying transient failures. Backoff time
    /// is charged to `clock` if one is provided.
    pub fn complete_with_retry(
        &self,
        client: &dyn LlmClient,
        req: &CompletionRequest,
        clock: Option<&crate::clock::VirtualClock>,
    ) -> Result<CompletionResponse, LlmError> {
        let mut backoff = self.initial_backoff_secs;
        let mut last_err = None;
        for _attempt in 0..self.max_attempts.max(1) {
            match client.complete(req) {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retryable() => {
                    if let Some(c) = clock {
                        c.advance_secs(backoff);
                    }
                    backoff *= self.backoff_multiplier;
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(LlmError::Rejected("no attempts configured".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Client that fails transiently `fail_first` times, then succeeds.
    struct Flaky {
        fail_first: usize,
        calls: AtomicUsize,
    }

    impl LlmClient for Flaky {
        fn complete(&self, _req: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.fail_first {
                Err(LlmError::Transient {
                    attempt: n,
                    reason: "overloaded".into(),
                })
            } else {
                Ok(CompletionResponse {
                    text: "ok".into(),
                    usage: Usage::new(1, 1),
                    latency_secs: 0.0,
                    cost_usd: 0.0,
                })
            }
        }
        fn embed(&self, _req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
            Err(LlmError::Rejected("not an embedding model".into()))
        }
    }

    #[test]
    fn retry_recovers_from_transient() {
        let c = Flaky {
            fail_first: 2,
            calls: AtomicUsize::new(0),
        };
        let clock = VirtualClock::new();
        let resp = RetryPolicy::default()
            .complete_with_retry(&c, &CompletionRequest::new("m", "p"), Some(&clock))
            .unwrap();
        assert_eq!(resp.text, "ok");
        // two backoffs: 0.5 + 1.0
        assert!((clock.now_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn retry_gives_up() {
        let c = Flaky {
            fail_first: 10,
            calls: AtomicUsize::new(0),
        };
        let err = RetryPolicy::default()
            .complete_with_retry(&c, &CompletionRequest::new("m", "p"), None)
            .unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(c.calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn non_retryable_fails_fast() {
        struct Bad;
        impl LlmClient for Bad {
            fn complete(&self, req: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
                Err(LlmError::UnknownModel(req.model.clone()))
            }
            fn embed(&self, _r: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
                unreachable!()
            }
        }
        let err = RetryPolicy::default()
            .complete_with_retry(&Bad, &CompletionRequest::new("m", "p"), None)
            .unwrap_err();
        assert_eq!(err, LlmError::UnknownModel("m".into()));
    }

    #[test]
    fn request_builder() {
        let r = CompletionRequest::new("gpt-4o", "hello")
            .with_system("sys")
            .with_max_output_tokens(5);
        assert_eq!(r.model.as_str(), "gpt-4o");
        assert_eq!(r.system.as_deref(), Some("sys"));
        assert_eq!(r.max_output_tokens, 5);
    }
}
