//! Client abstraction over completion and embedding models.
//!
//! `pz-core` programs against [`LlmClient`]; the reproduction supplies the
//! deterministic [`crate::sim::SimulatedLlm`], but any hosted client could
//! implement the same trait. The trait is object-safe so executors can hold
//! `Arc<dyn LlmClient>`.

use crate::catalog::ModelId;
use crate::usage::Usage;
use thiserror::Error;

/// Errors surfaced by model clients.
#[derive(Clone, Debug, Error, PartialEq)]
pub enum LlmError {
    #[error("unknown model: {0}")]
    UnknownModel(ModelId),
    #[error("model {model} is not a {expected} model")]
    WrongKind {
        model: ModelId,
        expected: &'static str,
    },
    #[error("context window exceeded for {model}: {tokens} tokens > {window}")]
    ContextOverflow {
        model: ModelId,
        tokens: usize,
        window: usize,
    },
    #[error("transient provider error (attempt {attempt}): {reason}")]
    Transient { attempt: usize, reason: String },
    /// HTTP-429-style rejection. The provider's `retry-after` hint (in
    /// seconds, virtual) rides along so backoff and breakers can honor it.
    #[error("rate limited by provider of {model} (retry after {retry_after_secs}s)")]
    RateLimited {
        model: ModelId,
        retry_after_secs: f64,
    },
    /// The call stalled past the client's patience and was abandoned.
    #[error("request to {model} timed out after {after_secs}s")]
    Timeout { model: ModelId, after_secs: f64 },
    /// The provider returned a truncated or unparseable completion.
    #[error("malformed output from {model}: {reason}")]
    MalformedOutput { model: ModelId, reason: String },
    /// The per-model circuit breaker is open; the call was refused locally
    /// without reaching the provider.
    #[error("circuit breaker open for {model} (retry in {retry_in_secs:.1}s)")]
    CircuitOpen { model: ModelId, retry_in_secs: f64 },
    /// The caller's usage ledger refused the charge: admitting this call
    /// would cross its tenant's budget. The call was refused locally and
    /// billed nothing. Not retryable, and *not* a provider fault — failing
    /// over to a cheaper model cannot help, the budget itself is spent.
    #[error("tenant budget exhausted for {model}: {reason}")]
    QuotaExhausted { model: ModelId, reason: String },
    #[error("request rejected: {0}")]
    Rejected(String),
}

impl LlmError {
    /// Whether retrying the identical request may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            LlmError::Transient { .. }
                | LlmError::RateLimited { .. }
                | LlmError::Timeout { .. }
                | LlmError::MalformedOutput { .. }
        )
    }

    /// Provider-supplied hint for how long to wait before retrying.
    pub fn retry_after_secs(&self) -> Option<f64> {
        match self {
            LlmError::RateLimited {
                retry_after_secs, ..
            } => Some(*retry_after_secs),
            _ => None,
        }
    }

    /// Whether this error indicates an unhealthy provider/model fault
    /// domain (as opposed to a malformed request or a caller bug) — the
    /// class of error that justifies failing over to another model.
    pub fn is_provider_fault(&self) -> bool {
        matches!(
            self,
            LlmError::Transient { .. }
                | LlmError::RateLimited { .. }
                | LlmError::Timeout { .. }
                | LlmError::MalformedOutput { .. }
                | LlmError::CircuitOpen { .. }
        )
    }
}

/// A completion request.
#[derive(Clone, Debug)]
pub struct CompletionRequest {
    pub model: ModelId,
    /// Optional system preamble; accounted as input tokens.
    pub system: Option<String>,
    /// The prompt body (usually the structured dialect from [`crate::protocol`]).
    pub prompt: String,
    /// Upper bound on output tokens; responses are truncated to fit.
    pub max_output_tokens: usize,
}

impl CompletionRequest {
    pub fn new(model: impl Into<ModelId>, prompt: impl Into<String>) -> Self {
        Self {
            model: model.into(),
            system: None,
            prompt: prompt.into(),
            max_output_tokens: 1024,
        }
    }

    pub fn with_system(mut self, system: impl Into<String>) -> Self {
        self.system = Some(system.into());
        self
    }

    pub fn with_max_output_tokens(mut self, n: usize) -> Self {
        self.max_output_tokens = n;
        self
    }
}

impl From<String> for ModelId {
    fn from(s: String) -> Self {
        ModelId(s)
    }
}

/// A completion response with accounting attached.
#[derive(Clone, Debug)]
pub struct CompletionResponse {
    pub text: String,
    pub usage: Usage,
    /// Modelled latency of this single call in (virtual) seconds.
    pub latency_secs: f64,
    /// Dollar cost of this single call.
    pub cost_usd: f64,
}

/// Default chunk size for [`RetryPolicy::embed_batched`]: large enough that
/// typical retrieve/filter workloads still make a single provider call,
/// small enough to bound one request's payload on big corpora.
pub const DEFAULT_EMBED_BATCH: usize = 256;

/// An embedding request.
#[derive(Clone, Debug)]
pub struct EmbeddingRequest {
    pub model: ModelId,
    pub inputs: Vec<String>,
}

/// An embedding response.
#[derive(Clone, Debug)]
pub struct EmbeddingResponse {
    pub vectors: Vec<Vec<f32>>,
    pub usage: Usage,
    pub latency_secs: f64,
    pub cost_usd: f64,
}

/// Object-safe client interface.
pub trait LlmClient: Send + Sync {
    /// Run a completion.
    fn complete(&self, req: &CompletionRequest) -> Result<CompletionResponse, LlmError>;

    /// Embed a batch of inputs.
    fn embed(&self, req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError>;
}

/// Retry policy with capped, optionally jittered exponential backoff on a
/// virtual clock.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    pub max_attempts: usize,
    pub initial_backoff_secs: f64,
    pub backoff_multiplier: f64,
    /// Upper bound on any single backoff sleep, hint-extended or not.
    pub max_backoff_secs: f64,
    /// Jitter fraction in `[0, 1)`: each sleep is scaled by a deterministic
    /// factor in `[1 - jitter, 1 + jitter)` keyed on (`seed`, model,
    /// request, attempt). `0.0` (the default) reproduces exact exponential
    /// backoff; non-zero de-correlates synchronized retry storms without
    /// sacrificing replayability.
    pub jitter: f64,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            initial_backoff_secs: 0.5,
            backoff_multiplier: 2.0,
            max_backoff_secs: 60.0,
            jitter: 0.0,
            seed: 0,
        }
    }
}

/// Ambient state the retry loop consults: the virtual clock backoff is
/// charged to, the per-model health tracker (breaker), and the absolute
/// execution deadline on that clock, if any.
#[derive(Clone, Copy, Default)]
pub struct RetryContext<'a> {
    pub clock: Option<&'a crate::clock::VirtualClock>,
    pub health: Option<&'a crate::breaker::HealthTracker>,
    pub deadline_at_secs: Option<f64>,
    /// Profiler sink for backoff time: every virtual microsecond the
    /// retry loop sleeps is added here, so the executor can attribute
    /// retry/backoff time to the stage that incurred it. `None` (the
    /// default) records nothing.
    pub wait_sink: Option<&'a std::sync::atomic::AtomicU64>,
}

impl<'a> RetryContext<'a> {
    pub fn new(clock: &'a crate::clock::VirtualClock) -> Self {
        Self {
            clock: Some(clock),
            health: None,
            deadline_at_secs: None,
            wait_sink: None,
        }
    }

    pub fn with_health(mut self, health: &'a crate::breaker::HealthTracker) -> Self {
        self.health = Some(health);
        self
    }

    pub fn with_deadline(mut self, deadline_at_secs: Option<f64>) -> Self {
        self.deadline_at_secs = deadline_at_secs;
        self
    }

    pub fn with_wait_sink(mut self, sink: Option<&'a std::sync::atomic::AtomicU64>) -> Self {
        self.wait_sink = sink;
        self
    }

    fn now_secs(&self) -> f64 {
        self.clock.map_or(0.0, |c| c.now_secs())
    }
}

impl RetryPolicy {
    /// Run `req` against `client`, retrying transient failures. Backoff time
    /// is charged to `clock` if one is provided.
    pub fn complete_with_retry(
        &self,
        client: &dyn LlmClient,
        req: &CompletionRequest,
        clock: Option<&crate::clock::VirtualClock>,
    ) -> Result<CompletionResponse, LlmError> {
        let rc = RetryContext {
            clock,
            ..Default::default()
        };
        self.complete_with(client, req, &rc)
    }

    /// Run an embedding request with the same retry semantics as
    /// completions (historically embeds were fired once, so one transient
    /// failure killed the pipeline).
    pub fn embed_with_retry(
        &self,
        client: &dyn LlmClient,
        req: &EmbeddingRequest,
        clock: Option<&crate::clock::VirtualClock>,
    ) -> Result<EmbeddingResponse, LlmError> {
        let rc = RetryContext {
            clock,
            ..Default::default()
        };
        self.embed_with(client, req, &rc)
    }

    /// Completion with full resilience context: breaker gating per attempt,
    /// `retry_after` hints honored, deadline-aware backoff.
    pub fn complete_with(
        &self,
        client: &dyn LlmClient,
        req: &CompletionRequest,
        rc: &RetryContext<'_>,
    ) -> Result<CompletionResponse, LlmError> {
        let salt = crate::stable_hash(&[&req.prompt]).to_string();
        self.run(&req.model, &salt, rc, || client.complete(req))
    }

    /// Embedding with full resilience context.
    ///
    /// Billing-order audit (PR 5): a failed or breaker-refused embedding
    /// bills the ledger nothing. `run` consults `health.allow` *before*
    /// every attempt, so a breaker-open refusal never reaches the client;
    /// and the simulator only records ledger usage after its fault and
    /// transient checks pass, so a faulted attempt bills nothing either.
    /// (The suspected bill-before-breaker ordering was checked and does not
    /// exist; `embed_billing_*` regression tests in `sim.rs` pin this.)
    pub fn embed_with(
        &self,
        client: &dyn LlmClient,
        req: &EmbeddingRequest,
        rc: &RetryContext<'_>,
    ) -> Result<EmbeddingResponse, LlmError> {
        let joined = req.inputs.join("\u{1}");
        let salt = crate::stable_hash(&[&joined]).to_string();
        self.run(&req.model, &salt, rc, || client.embed(req))
    }

    /// Embedding with full resilience context, splitting oversized input
    /// batches into provider requests of at most `batch_size` inputs. Each
    /// chunk gets the full retry/breaker treatment; vectors merge back in
    /// input order and usage/latency/cost sum across chunks. A request with
    /// `batch_size` or fewer inputs makes exactly one provider call —
    /// byte-identical to [`Self::embed_with`] — so workloads below the
    /// threshold are unchanged. A chunk failure fails the whole batch (no
    /// partial vectors are returned).
    pub fn embed_batched(
        &self,
        client: &dyn LlmClient,
        req: &EmbeddingRequest,
        rc: &RetryContext<'_>,
        batch_size: usize,
    ) -> Result<EmbeddingResponse, LlmError> {
        let batch = batch_size.max(1);
        if req.inputs.len() <= batch {
            return self.embed_with(client, req, rc);
        }
        let mut merged = EmbeddingResponse {
            vectors: Vec::with_capacity(req.inputs.len()),
            usage: Usage::new(0, 0),
            latency_secs: 0.0,
            cost_usd: 0.0,
        };
        for chunk in req.inputs.chunks(batch) {
            let sub = EmbeddingRequest {
                model: req.model.clone(),
                inputs: chunk.to_vec(),
            };
            let resp = self.embed_with(client, &sub, rc)?;
            merged.vectors.extend(resp.vectors);
            merged.usage += resp.usage;
            merged.latency_secs += resp.latency_secs;
            merged.cost_usd += resp.cost_usd;
        }
        Ok(merged)
    }

    fn run<T>(
        &self,
        model: &ModelId,
        salt: &str,
        rc: &RetryContext<'_>,
        mut call: impl FnMut() -> Result<T, LlmError>,
    ) -> Result<T, LlmError> {
        let mut backoff = self.initial_backoff_secs;
        let mut last_err: Option<LlmError> = None;
        for attempt in 0..self.max_attempts.max(1) {
            // Breaker gate: refuse locally while the model's domain is open.
            // Mid-retry this surfaces the provider error we already saw;
            // before the first attempt it is a fast CircuitOpen.
            if let Some(health) = rc.health {
                if let Err(retry_in) = health.allow(model, rc.now_secs()) {
                    return Err(last_err.unwrap_or(LlmError::CircuitOpen {
                        model: model.clone(),
                        retry_in_secs: retry_in,
                    }));
                }
            }
            match call() {
                Ok(resp) => {
                    if let Some(health) = rc.health {
                        health.record_success(model, rc.now_secs());
                    }
                    return Ok(resp);
                }
                Err(e) if e.is_retryable() => {
                    if let Some(health) = rc.health {
                        health.record_failure(model, &e, rc.now_secs());
                    }
                    let mut wait = backoff;
                    if let Some(hint) = e.retry_after_secs() {
                        wait = wait.max(hint);
                    }
                    wait = wait.min(self.max_backoff_secs);
                    if self.jitter > 0.0 {
                        let u = crate::hash_unit(&[
                            &self.seed.to_string(),
                            "retry-jitter",
                            model.as_str(),
                            salt,
                            &attempt.to_string(),
                        ]);
                        wait *= 1.0 + self.jitter * (2.0 * u - 1.0);
                    }
                    // Deadline: if even waiting would blow the budget, stop
                    // burning attempts and surface the provider error now.
                    if let Some(deadline) = rc.deadline_at_secs {
                        if rc.now_secs() + wait > deadline {
                            return Err(e);
                        }
                    }
                    if let Some(c) = rc.clock {
                        c.advance_secs(wait);
                        // Attribute the backoff sleep (virtual time only:
                        // without a clock no virtual time passes).
                        if let Some(sink) = rc.wait_sink {
                            sink.fetch_add(
                                (wait * 1e6).round() as u64,
                                std::sync::atomic::Ordering::Relaxed,
                            );
                        }
                    }
                    backoff = (backoff * self.backoff_multiplier).min(self.max_backoff_secs);
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        // Every attempt failed: trip the breaker so subsequent work (and
        // other operators) fail over instead of re-paying full retry cost.
        if let (Some(health), Some(e)) = (rc.health, last_err.as_ref()) {
            health.trip(model, e, rc.now_secs());
        }
        Err(last_err.unwrap_or(LlmError::Rejected("no attempts configured".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Client that fails transiently `fail_first` times, then succeeds.
    struct Flaky {
        fail_first: usize,
        calls: AtomicUsize,
    }

    impl LlmClient for Flaky {
        fn complete(&self, _req: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.fail_first {
                Err(LlmError::Transient {
                    attempt: n,
                    reason: "overloaded".into(),
                })
            } else {
                Ok(CompletionResponse {
                    text: "ok".into(),
                    usage: Usage::new(1, 1),
                    latency_secs: 0.0,
                    cost_usd: 0.0,
                })
            }
        }
        fn embed(&self, _req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
            Err(LlmError::Rejected("not an embedding model".into()))
        }
    }

    #[test]
    fn retry_recovers_from_transient() {
        let c = Flaky {
            fail_first: 2,
            calls: AtomicUsize::new(0),
        };
        let clock = VirtualClock::new();
        let resp = RetryPolicy::default()
            .complete_with_retry(&c, &CompletionRequest::new("m", "p"), Some(&clock))
            .unwrap();
        assert_eq!(resp.text, "ok");
        // two backoffs: 0.5 + 1.0
        assert!((clock.now_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn retry_gives_up() {
        let c = Flaky {
            fail_first: 10,
            calls: AtomicUsize::new(0),
        };
        let err = RetryPolicy::default()
            .complete_with_retry(&c, &CompletionRequest::new("m", "p"), None)
            .unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(c.calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn non_retryable_fails_fast() {
        struct Bad;
        impl LlmClient for Bad {
            fn complete(&self, req: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
                Err(LlmError::UnknownModel(req.model.clone()))
            }
            fn embed(&self, _r: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
                unreachable!()
            }
        }
        let err = RetryPolicy::default()
            .complete_with_retry(&Bad, &CompletionRequest::new("m", "p"), None)
            .unwrap_err();
        assert_eq!(err, LlmError::UnknownModel("m".into()));
    }

    /// Client that always fails with a fixed error.
    struct AlwaysErr(LlmError);

    impl LlmClient for AlwaysErr {
        fn complete(&self, _req: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
            Err(self.0.clone())
        }
        fn embed(&self, _req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
            Err(self.0.clone())
        }
    }

    fn transient() -> LlmError {
        LlmError::Transient {
            attempt: 0,
            reason: "overloaded".into(),
        }
    }

    #[test]
    fn embed_retry_recovers_from_transient() {
        struct FlakyEmbed {
            calls: AtomicUsize,
        }
        impl LlmClient for FlakyEmbed {
            fn complete(&self, _r: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
                unreachable!()
            }
            fn embed(&self, _r: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
                if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    Err(transient())
                } else {
                    Ok(EmbeddingResponse {
                        vectors: vec![vec![0.0]],
                        usage: Usage::new(1, 0),
                        latency_secs: 0.0,
                        cost_usd: 0.0,
                    })
                }
            }
        }
        let c = FlakyEmbed {
            calls: AtomicUsize::new(0),
        };
        let clock = VirtualClock::new();
        let req = EmbeddingRequest {
            model: "e".into(),
            inputs: vec!["x".into()],
        };
        let resp = RetryPolicy::default()
            .embed_with_retry(&c, &req, Some(&clock))
            .unwrap();
        assert_eq!(resp.vectors.len(), 1);
        assert_eq!(c.calls.load(Ordering::SeqCst), 2);
        assert!((clock.now_secs() - 0.5).abs() < 1e-9);
    }

    /// Embedding client that records per-call chunk sizes and returns one
    /// vector per input, tagged with its call index.
    struct ChunkRecorder {
        chunks: std::sync::Mutex<Vec<usize>>,
    }

    impl LlmClient for ChunkRecorder {
        fn complete(&self, _r: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
            unreachable!()
        }
        fn embed(&self, req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
            let mut chunks = self.chunks.lock().unwrap();
            let call = chunks.len() as f32;
            chunks.push(req.inputs.len());
            Ok(EmbeddingResponse {
                vectors: req.inputs.iter().map(|_| vec![call]).collect(),
                usage: Usage::new(req.inputs.len(), 0),
                latency_secs: 1.0,
                cost_usd: 0.25,
            })
        }
    }

    #[test]
    fn embed_batched_chunks_and_merges_in_order() {
        let c = ChunkRecorder {
            chunks: std::sync::Mutex::new(Vec::new()),
        };
        let req = EmbeddingRequest {
            model: "e".into(),
            inputs: (0..7).map(|i| format!("doc {i}")).collect(),
        };
        let rc = RetryContext::default();
        let resp = RetryPolicy::default()
            .embed_batched(&c, &req, &rc, 3)
            .unwrap();
        assert_eq!(*c.chunks.lock().unwrap(), vec![3, 3, 1]);
        // Vectors come back in input order: chunk 0's three, then chunk 1's…
        let tags: Vec<f32> = resp.vectors.iter().map(|v| v[0]).collect();
        assert_eq!(tags, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0]);
        // Accounting sums across chunks.
        assert_eq!(resp.usage.input_tokens, 7);
        assert!((resp.latency_secs - 3.0).abs() < 1e-9);
        assert!((resp.cost_usd - 0.75).abs() < 1e-9);
    }

    #[test]
    fn embed_batched_small_input_is_single_call() {
        let c = ChunkRecorder {
            chunks: std::sync::Mutex::new(Vec::new()),
        };
        let req = EmbeddingRequest {
            model: "e".into(),
            inputs: vec!["a".into(), "b".into()],
        };
        let rc = RetryContext::default();
        RetryPolicy::default()
            .embed_batched(&c, &req, &rc, DEFAULT_EMBED_BATCH)
            .unwrap();
        assert_eq!(*c.chunks.lock().unwrap(), vec![2]);
    }

    #[test]
    fn retry_honors_retry_after_hint() {
        let c = AlwaysErr(LlmError::RateLimited {
            model: "m".into(),
            retry_after_secs: 10.0,
        });
        let clock = VirtualClock::new();
        let err = RetryPolicy::default()
            .complete_with_retry(&c, &CompletionRequest::new("m", "p"), Some(&clock))
            .unwrap_err();
        assert!(matches!(err, LlmError::RateLimited { .. }));
        // Three sleeps, each lifted to the 10s hint.
        assert!((clock.now_secs() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn backoff_is_capped() {
        let c = AlwaysErr(transient());
        let clock = VirtualClock::new();
        let policy = RetryPolicy {
            max_attempts: 4,
            initial_backoff_secs: 0.5,
            backoff_multiplier: 10.0,
            max_backoff_secs: 1.0,
            ..Default::default()
        };
        policy
            .complete_with_retry(&c, &CompletionRequest::new("m", "p"), Some(&clock))
            .unwrap_err();
        // Sleeps: 0.5, then capped at 1.0 thrice.
        assert!((clock.now_secs() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let run = |jitter: f64| {
            let c = AlwaysErr(transient());
            let clock = VirtualClock::new();
            let policy = RetryPolicy {
                jitter,
                seed: 7,
                ..Default::default()
            };
            policy
                .complete_with_retry(&c, &CompletionRequest::new("m", "p"), Some(&clock))
                .unwrap_err();
            clock.now_secs()
        };
        let a = run(0.25);
        let b = run(0.25);
        assert!((a - b).abs() < 1e-12, "jitter must be reproducible");
        let plain = run(0.0);
        assert!((plain - 3.5).abs() < 1e-9);
        assert!(a != plain && (a - plain).abs() <= 0.25 * plain + 1e-9);
    }

    #[test]
    fn deadline_stops_retry_backoff() {
        let c = Flaky {
            fail_first: 10,
            calls: AtomicUsize::new(0),
        };
        let clock = VirtualClock::new();
        let rc = RetryContext::new(&clock).with_deadline(Some(0.3));
        let err = RetryPolicy::default()
            .complete_with(&c, &CompletionRequest::new("m", "p"), &rc)
            .unwrap_err();
        assert!(err.is_retryable());
        // First backoff (0.5s) would blow the 0.3s budget: one attempt only,
        // and the clock never advanced.
        assert_eq!(c.calls.load(Ordering::SeqCst), 1);
        assert!(clock.now_secs().abs() < 1e-9);
    }

    #[test]
    fn exhaustion_trips_breaker_and_gates_next_call() {
        use crate::breaker::{BreakerState, HealthTracker};
        let c = AlwaysErr(transient());
        let clock = VirtualClock::new();
        let health = HealthTracker::default();
        let rc = RetryContext::new(&clock).with_health(&health);
        let policy = RetryPolicy::default();
        let req = CompletionRequest::new("m", "p");
        let err = policy.complete_with(&c, &req, &rc).unwrap_err();
        assert!(matches!(err, LlmError::Transient { .. }));
        assert!(matches!(
            health.state(&"m".into()),
            BreakerState::Open { .. }
        ));
        // Next call is refused locally before touching the client.
        let before = clock.now_secs();
        let err = policy.complete_with(&c, &req, &rc).unwrap_err();
        assert!(matches!(err, LlmError::CircuitOpen { .. }));
        assert!((clock.now_secs() - before).abs() < 1e-9);
    }

    #[test]
    fn request_builder() {
        let r = CompletionRequest::new("gpt-4o", "hello")
            .with_system("sys")
            .with_max_output_tokens(5);
        assert_eq!(r.model.as_str(), "gpt-4o");
        assert_eq!(r.system.as_deref(), Some("sys"));
        assert_eq!(r.max_output_tokens, 5);
    }
}
