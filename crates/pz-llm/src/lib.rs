//! # pz-llm — simulated LLM substrate
//!
//! Palimpzest's physical operators are implemented on top of hosted large
//! language models (GPT-4o, GPT-4o-mini, Llama-3, Mixtral, ...). This crate
//! provides the stand-in substrate used by the reproduction: a **model
//! catalog** with realistic price / latency / quality characteristics, a
//! **deterministic simulated client** whose output quality degrades with the
//! model's quality factor, a **virtual clock** so simulated latency is
//! accounted without wall-clock sleeps, and a **usage ledger** that tracks
//! token consumption and dollar cost exactly the way the paper's execution
//! statistics (Figure 5) report them.
//!
//! ## Determinism
//!
//! Every behaviour in this crate is a pure function of its inputs plus the
//! configured seed: the same prompt against the same model always yields the
//! same completion, the same injected errors, and the same accounted cost.
//! This is what makes the reproduction's experiments exactly re-runnable.
//!
//! ## Prompt protocol
//!
//! The simulator understands the structured prompt dialect emitted by
//! `pz-core`'s physical operators (see [`protocol`]): `FILTER`, `EXTRACT`,
//! `CLASSIFY` and `GENERATE` tasks. Free-form prompts fall back to a
//! deterministic echo-summarizer so that agent-style usage also works.

pub mod breaker;
pub mod cache;
pub mod catalog;
pub mod client;
pub mod clock;
pub mod embedding;
pub mod fault;
pub mod protocol;
pub mod sim;
pub mod tokenizer;
pub mod traced;
pub mod usage;

pub use breaker::{BreakerConfig, BreakerSnapshot, BreakerState, HealthTracker};
pub use cache::{CacheStats, CachingClient};
pub use catalog::{Catalog, ModelCard, ModelId, ModelKind};
pub use client::{
    CompletionRequest, CompletionResponse, EmbeddingRequest, EmbeddingResponse, LlmClient,
    LlmError, RetryContext, RetryPolicy, DEFAULT_EMBED_BATCH,
};
pub use clock::VirtualClock;
pub use embedding::Embedder;
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultWindow};
pub use sim::{SimConfig, SimulatedLlm};
pub use tokenizer::count_tokens;
pub use traced::TracedClient;
pub use usage::{ModelUsage, Quota, QuotaExceeded, Usage, UsageLedger};

/// Stable 64-bit FNV-1a hash used everywhere the substrate needs seeded,
/// reproducible pseudo-randomness (error injection, embeddings, latency
/// jitter). Not cryptographic; chosen for determinism across platforms.
#[inline]
pub fn stable_hash(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ["ab","c"] != ["a","bc"].
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // FNV-1a's low bits are a weak 7-bit state machine (multiplication by an
    // odd constant never lets high bits influence low bits), so finish with
    // a splitmix64-style avalanche before anyone takes `h % n`.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Map a stable hash to a uniform f64 in [0, 1).
#[inline]
pub fn hash_unit(parts: &[&str]) -> f64 {
    // Use the top 53 bits for a full-precision mantissa.
    (stable_hash(parts) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_deterministic() {
        assert_eq!(stable_hash(&["a", "b"]), stable_hash(&["a", "b"]));
    }

    #[test]
    fn stable_hash_separates_boundaries() {
        assert_ne!(stable_hash(&["ab", "c"]), stable_hash(&["a", "bc"]));
    }

    #[test]
    fn hash_unit_in_range() {
        for s in ["", "x", "hello world", "PalimpChat"] {
            let u = hash_unit(&[s]);
            assert!((0.0..1.0).contains(&u), "{u} out of range for {s:?}");
        }
    }

    #[test]
    fn hash_unit_spreads() {
        // Crude uniformity check: over 1000 strings the mean should be
        // near 0.5.
        let mut sum = 0.0;
        for i in 0..1000 {
            sum += hash_unit(&[&format!("key-{i}")]);
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
