//! Tracing wrapper for model clients.
//!
//! [`TracedClient`] wraps any [`LlmClient`] and records one leaf span per
//! completion / embedding call on the shared [`pz_obs::Tracer`], stamped on
//! the virtual clock. Because spans are *leaf* spans they adopt whatever
//! structural span is currently open (an executor operator, an agent step)
//! without disturbing the scope stack — safe for parallel workers.
//!
//! The wrapper sees only calls that actually reach the provider: placed
//! inside a [`crate::CachingClient`], cache hits never produce an LLM span
//! (they emit `cache_hit` events instead), so `llm` span counts reconcile
//! with [`crate::UsageLedger::total_requests`].

use crate::client::{
    CompletionRequest, CompletionResponse, EmbeddingRequest, EmbeddingResponse, LlmClient, LlmError,
};
use pz_obs::{Layer, Tracer};
use std::sync::Arc;

/// An [`LlmClient`] that records a span per call.
#[derive(Clone)]
pub struct TracedClient {
    inner: Arc<dyn LlmClient>,
    tracer: Tracer,
}

impl TracedClient {
    pub fn new(inner: Arc<dyn LlmClient>, tracer: Tracer) -> Self {
        Self { inner, tracer }
    }
}

impl LlmClient for TracedClient {
    fn complete(&self, req: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
        let span = self.tracer.leaf_span(Layer::Llm, "complete");
        span.set_attr("model", req.model.as_str());
        let result = self.inner.complete(req);
        match &result {
            Ok(resp) => {
                span.set_attr("input_tokens", resp.usage.input_tokens.to_string());
                span.set_attr("output_tokens", resp.usage.output_tokens.to_string());
                span.set_attr("cost_usd", format!("{:.6}", resp.cost_usd));
                span.set_attr("latency_secs", format!("{:.6}", resp.latency_secs));
                self.tracer.incr("llm.completions", 1);
                self.tracer.observe("llm.latency_secs", resp.latency_secs);
            }
            Err(e) => {
                span.set_attr("error", e.to_string());
                self.tracer.incr("llm.errors", 1);
            }
        }
        result
    }

    fn embed(&self, req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
        let span = self.tracer.leaf_span(Layer::Llm, "embed");
        span.set_attr("model", req.model.as_str());
        span.set_attr("inputs", req.inputs.len().to_string());
        let result = self.inner.embed(req);
        match &result {
            Ok(resp) => {
                span.set_attr("input_tokens", resp.usage.input_tokens.to_string());
                span.set_attr("cost_usd", format!("{:.6}", resp.cost_usd));
                self.tracer.incr("llm.embeddings", 1);
            }
            Err(e) => {
                span.set_attr("error", e.to_string());
                self.tracer.incr("llm.errors", 1);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::sim::SimulatedLlm;
    use pz_obs::Tracer;

    fn traced_sim() -> (TracedClient, Tracer, VirtualClock) {
        let clock = VirtualClock::new();
        let tracer = Tracer::new(Arc::new(clock.clone()));
        let sim = Arc::new(SimulatedLlm::new(
            crate::Catalog::builtin(),
            crate::SimConfig::default(),
            clock.clone(),
            crate::UsageLedger::new(),
        ));
        (TracedClient::new(sim, tracer.clone()), tracer, clock)
    }

    #[test]
    fn completion_records_leaf_span_on_virtual_clock() {
        let (client, tracer, clock) = traced_sim();
        let resp = client
            .complete(&CompletionRequest::new("gpt-4o", "hello world"))
            .unwrap();
        let snap = tracer.snapshot();
        let llm = snap.spans_in_layer(Layer::Llm);
        assert_eq!(llm.len(), 1);
        assert_eq!(llm[0].name, "complete");
        assert_eq!(llm[0].attrs["model"], "gpt-4o");
        // Span duration equals the modelled latency (the sim advanced the
        // shared clock during the call).
        let dur_secs = llm[0].duration_us() as f64 / 1e6;
        assert!((dur_secs - resp.latency_secs).abs() < 1e-5);
        assert_eq!(llm[0].end_us, Some(clock.now_micros()));
        assert_eq!(snap.counters["llm.completions"], 1);
    }

    #[test]
    fn errors_are_counted_not_hidden() {
        let (client, tracer, _) = traced_sim();
        assert!(client
            .complete(&CompletionRequest::new("no-such-model", "x"))
            .is_err());
        let snap = tracer.snapshot();
        assert_eq!(snap.counters["llm.errors"], 1);
        let llm = snap.spans_in_layer(Layer::Llm);
        assert!(llm[0].attrs["error"].contains("unknown model"));
    }

    #[test]
    fn embeddings_traced_with_batch_size() {
        let (client, tracer, _) = traced_sim();
        client
            .embed(&EmbeddingRequest {
                model: "text-embedding-3-small".into(),
                inputs: vec!["a".into(), "b".into(), "c".into()],
            })
            .unwrap();
        let snap = tracer.snapshot();
        let llm = snap.spans_in_layer(Layer::Llm);
        assert_eq!(llm[0].name, "embed");
        assert_eq!(llm[0].attrs["inputs"], "3");
        assert_eq!(snap.counters["llm.embeddings"], 1);
    }
}
