//! Response caching.
//!
//! AI pipelines re-issue identical prompts constantly — sentinel
//! calibration runs the same records the full execution will, retried
//! requests repeat verbatim, and iterative chat sessions re-execute
//! pipelines over unchanged data. [`CachingClient`] wraps any
//! [`LlmClient`] with an exact-match cache keyed by
//! `(model, system, prompt, max_output_tokens)`: hits return the recorded
//! response without charging cost or latency (the ledger and clock only
//! see misses), exactly how a production result cache behaves.
//!
//! Embeddings are cached per input string, so a batch with a mix of seen
//! and unseen inputs only pays for the unseen ones.

use crate::client::{
    CompletionRequest, CompletionResponse, EmbeddingRequest, EmbeddingResponse, LlmClient, LlmError,
};
use crate::stable_hash;
use crate::usage::{Usage, UsageLedger};
use parking_lot::Mutex;
use pz_obs::{Layer, Tracer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub completion_hits: usize,
    pub completion_misses: usize,
    pub embedding_hits: usize,
    pub embedding_misses: usize,
}

impl CacheStats {
    /// Fraction of completion lookups served from cache.
    pub fn completion_hit_rate(&self) -> f64 {
        let total = self.completion_hits + self.completion_misses;
        if total == 0 {
            0.0
        } else {
            self.completion_hits as f64 / total as f64
        }
    }
}

/// An exact-match response cache over any client. Clones share the cache.
#[derive(Clone)]
pub struct CachingClient {
    inner: Arc<dyn LlmClient>,
    completions: Arc<Mutex<HashMap<u64, CompletionResponse>>>,
    embeddings: Arc<Mutex<HashMap<u64, Vec<f32>>>>,
    completion_hits: Arc<AtomicUsize>,
    completion_misses: Arc<AtomicUsize>,
    embedding_hits: Arc<AtomicUsize>,
    embedding_misses: Arc<AtomicUsize>,
    tracer: Option<Tracer>,
    ledger: Option<UsageLedger>,
}

impl CachingClient {
    pub fn new(inner: Arc<dyn LlmClient>) -> Self {
        Self {
            inner,
            completions: Arc::new(Mutex::new(HashMap::new())),
            embeddings: Arc::new(Mutex::new(HashMap::new())),
            completion_hits: Arc::new(AtomicUsize::new(0)),
            completion_misses: Arc::new(AtomicUsize::new(0)),
            embedding_hits: Arc::new(AtomicUsize::new(0)),
            embedding_misses: Arc::new(AtomicUsize::new(0)),
            tracer: None,
            ledger: None,
        }
    }

    /// Emit `cache_hit` / `cache_miss` events on `tracer` for every lookup.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Record per-model cache hit/miss counts on `ledger`.
    pub fn with_ledger(mut self, ledger: UsageLedger) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// A handle onto the *same* cache (same maps, same counters) routed
    /// through a different inner client.
    ///
    /// This is how the serving layer shares one cross-tenant result cache
    /// while every tenant keeps its own billing/fault/breaker stack: the
    /// maps are shared, the misses flow to each tenant's own client.
    /// Isolation audit: keys are pure content hashes over
    /// `(model, system, prompt, max_output_tokens)` — see
    /// [`Self::completion_key`] — with no session- or tenant-local state
    /// folded in, so a hit can only ever replay a response another request
    /// with the *byte-identical* prompt would have produced. Tenant-scoped
    /// tracer/ledger attachments are deliberately dropped here; re-attach
    /// the new tenant's own via [`Self::with_tracer`] / [`Self::with_ledger`].
    pub fn with_inner(&self, inner: Arc<dyn LlmClient>) -> Self {
        Self {
            inner,
            completions: self.completions.clone(),
            embeddings: self.embeddings.clone(),
            completion_hits: self.completion_hits.clone(),
            completion_misses: self.completion_misses.clone(),
            embedding_hits: self.embedding_hits.clone(),
            embedding_misses: self.embedding_misses.clone(),
            tracer: None,
            ledger: None,
        }
    }

    fn note_completion(&self, model: &crate::ModelId, hit: bool) {
        if let Some(t) = &self.tracer {
            let name = if hit { "cache_hit" } else { "cache_miss" };
            t.event(Layer::Llm, name, &[("model", model.to_string())]);
        }
        if let Some(l) = &self.ledger {
            if hit {
                l.record_cache_hits(model, 1);
            } else {
                l.record_cache_misses(model, 1);
            }
        }
    }

    fn note_embeddings(&self, model: &crate::ModelId, hits: usize, misses: usize) {
        if let Some(t) = &self.tracer {
            if hits + misses > 0 {
                t.event(
                    Layer::Llm,
                    "embed_cache",
                    &[
                        ("model", model.to_string()),
                        ("hits", hits.to_string()),
                        ("misses", misses.to_string()),
                    ],
                );
            }
        }
        if let Some(l) = &self.ledger {
            l.record_cache_hits(model, hits);
            l.record_cache_misses(model, misses);
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            completion_hits: self.completion_hits.load(Ordering::Relaxed),
            completion_misses: self.completion_misses.load(Ordering::Relaxed),
            embedding_hits: self.embedding_hits.load(Ordering::Relaxed),
            embedding_misses: self.embedding_misses.load(Ordering::Relaxed),
        }
    }

    /// Drop all cached entries (counters are kept).
    pub fn clear(&self) {
        self.completions.lock().clear();
        self.embeddings.lock().clear();
    }

    /// Exact-match cache key for a completion request. Public because the
    /// executor's per-operator memo store (`pz-core`'s incremental
    /// `ExecutionSnapshot`) generalizes this leaf cache: both key on the
    /// same [`stable_hash`] over request-determining content, so a record
    /// that misses the operator memo but repeats a prompt verbatim still
    /// lands on the same response here.
    pub fn completion_key(req: &CompletionRequest) -> u64 {
        stable_hash(&[
            req.model.as_str(),
            req.system.as_deref().unwrap_or(""),
            &req.prompt,
            &req.max_output_tokens.to_string(),
        ])
    }

    fn embedding_key(model: &str, input: &str) -> u64 {
        stable_hash(&["embed", model, input])
    }
}

impl LlmClient for CachingClient {
    fn complete(&self, req: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
        let key = Self::completion_key(req);
        if let Some(hit) = self.completions.lock().get(&key).cloned() {
            self.completion_hits.fetch_add(1, Ordering::Relaxed);
            self.note_completion(&req.model, true);
            // A cache hit is free: no provider cost, negligible latency.
            return Ok(CompletionResponse {
                text: hit.text,
                usage: Usage::default(),
                latency_secs: 0.0,
                cost_usd: 0.0,
            });
        }
        self.completion_misses.fetch_add(1, Ordering::Relaxed);
        self.note_completion(&req.model, false);
        let resp = self.inner.complete(req)?;
        self.completions.lock().insert(key, resp.clone());
        Ok(resp)
    }

    fn embed(&self, req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
        // Split the batch into cached and uncached inputs.
        let keys: Vec<u64> = req
            .inputs
            .iter()
            .map(|i| Self::embedding_key(req.model.as_str(), i))
            .collect();
        let mut vectors: Vec<Option<Vec<f32>>> = {
            let cache = self.embeddings.lock();
            keys.iter().map(|k| cache.get(k).cloned()).collect()
        };
        let missing: Vec<usize> = (0..vectors.len())
            .filter(|&i| vectors[i].is_none())
            .collect();
        self.embedding_hits
            .fetch_add(vectors.len() - missing.len(), Ordering::Relaxed);
        self.embedding_misses
            .fetch_add(missing.len(), Ordering::Relaxed);
        self.note_embeddings(&req.model, vectors.len() - missing.len(), missing.len());

        let (usage, latency, cost) = if missing.is_empty() {
            (Usage::default(), 0.0, 0.0)
        } else {
            let sub = EmbeddingRequest {
                model: req.model.clone(),
                inputs: missing.iter().map(|&i| req.inputs[i].clone()).collect(),
            };
            let resp = self.inner.embed(&sub)?;
            let mut cache = self.embeddings.lock();
            for (slot, v) in missing.iter().zip(resp.vectors) {
                cache.insert(keys[*slot], v.clone());
                vectors[*slot] = Some(v);
            }
            (resp.usage, resp.latency_secs, resp.cost_usd)
        };
        Ok(EmbeddingResponse {
            vectors: vectors
                .into_iter()
                .map(|v| v.expect("all slots filled"))
                .collect(),
            usage,
            latency_secs: latency,
            cost_usd: cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::clock::VirtualClock;
    use crate::protocol::filter_prompt;
    use crate::sim::{SimConfig, SimulatedLlm};

    fn caching_sim() -> (CachingClient, Arc<SimulatedLlm>) {
        let sim = Arc::new(SimulatedLlm::with_defaults());
        (CachingClient::new(sim.clone()), sim)
    }

    #[test]
    fn repeat_completion_is_free_and_identical() {
        let (cache, sim) = caching_sim();
        let req = CompletionRequest::new(
            "gpt-4o",
            filter_prompt("about cancer", "a colorectal cancer study"),
        );
        let first = cache.complete(&req).unwrap();
        assert!(first.cost_usd > 0.0);
        let cost_after_first = sim.ledger().total_cost_usd();

        let second = cache.complete(&req).unwrap();
        assert_eq!(second.text, first.text);
        assert_eq!(second.cost_usd, 0.0);
        assert_eq!(second.usage.total_tokens(), 0);
        // Nothing new hit the ledger or the clock.
        assert_eq!(sim.ledger().total_cost_usd(), cost_after_first);
        assert_eq!(
            cache.stats(),
            CacheStats {
                completion_hits: 1,
                completion_misses: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn different_prompts_do_not_collide() {
        let (cache, _) = caching_sim();
        let a = cache
            .complete(&CompletionRequest::new(
                "gpt-4o",
                filter_prompt("cancer", "colorectal cancer"),
            ))
            .unwrap();
        let b = cache
            .complete(&CompletionRequest::new(
                "gpt-4o",
                filter_prompt("cancer", "galaxy survey"),
            ))
            .unwrap();
        assert_ne!(a.text, b.text);
        assert_eq!(cache.stats().completion_misses, 2);
    }

    #[test]
    fn model_is_part_of_the_key() {
        let (cache, _) = caching_sim();
        let prompt = filter_prompt("x", "y");
        cache
            .complete(&CompletionRequest::new("gpt-4o", prompt.clone()))
            .unwrap();
        cache
            .complete(&CompletionRequest::new("gpt-4o-mini", prompt))
            .unwrap();
        assert_eq!(cache.stats().completion_misses, 2);
        assert_eq!(cache.stats().completion_hits, 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let (cache, _) = caching_sim();
        let bad = CompletionRequest::new("no-such-model", "hi");
        assert!(cache.complete(&bad).is_err());
        assert!(cache.complete(&bad).is_err());
        // Both attempts were misses (the error was retried, not replayed).
        assert_eq!(cache.stats().completion_misses, 2);
    }

    #[test]
    fn embedding_batches_split_hit_and_miss() {
        let (cache, sim) = caching_sim();
        let model = "text-embedding-3-small";
        let first = cache
            .embed(&EmbeddingRequest {
                model: model.into(),
                inputs: vec!["alpha beta".into(), "gamma delta".into()],
            })
            .unwrap();
        let cost_after_first = sim.ledger().total_cost_usd();
        // One repeated, one new: only the new one is charged.
        let second = cache
            .embed(&EmbeddingRequest {
                model: model.into(),
                inputs: vec!["alpha beta".into(), "epsilon zeta".into()],
            })
            .unwrap();
        assert_eq!(second.vectors[0], first.vectors[0]);
        assert!(sim.ledger().total_cost_usd() > cost_after_first);
        let stats = cache.stats();
        assert_eq!(stats.embedding_hits, 1);
        assert_eq!(stats.embedding_misses, 3);
    }

    #[test]
    fn clear_forces_recompute() {
        let (cache, _) = caching_sim();
        let req = CompletionRequest::new("gpt-4o", "hello world");
        cache.complete(&req).unwrap();
        cache.clear();
        cache.complete(&req).unwrap();
        assert_eq!(cache.stats().completion_misses, 2);
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats {
            completion_hits: 3,
            completion_misses: 1,
            ..Default::default()
        };
        assert!((s.completion_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().completion_hit_rate(), 0.0);
    }

    #[test]
    fn hits_and_misses_reach_tracer_and_ledger() {
        let sim = Arc::new(SimulatedLlm::with_defaults());
        let tracer = Tracer::new(Arc::new(sim.clock().clone()));
        let ledger = sim.ledger().clone();
        let cache = CachingClient::new(sim)
            .with_tracer(tracer.clone())
            .with_ledger(ledger.clone());
        let req = CompletionRequest::new("gpt-4o", filter_prompt("topic", "content"));
        cache.complete(&req).unwrap();
        cache.complete(&req).unwrap();
        let snap = tracer.snapshot();
        let names: Vec<&str> = snap.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["cache_miss", "cache_hit"]);
        assert_eq!(snap.events[0].attrs["model"], "gpt-4o");
        let by = ledger.by_model();
        assert_eq!(by[0].1.cache_hits, 1);
        assert_eq!(by[0].1.cache_misses, 1);
    }

    #[test]
    fn clones_share_cache() {
        let (cache, _) = caching_sim();
        let clone = cache.clone();
        let req = CompletionRequest::new("gpt-4o", "shared");
        cache.complete(&req).unwrap();
        clone.complete(&req).unwrap();
        assert_eq!(clone.stats().completion_hits, 1);
    }

    /// Two tenants, each with their own simulator/clock/ledger, sharing one
    /// cache via [`CachingClient::with_inner`]: an identical prompt dedups
    /// (tenant B pays nothing for tenant A's miss), and the hit shifts no
    /// cost between ledgers — A's bill is unchanged by B's hit.
    #[test]
    fn shared_cache_dedups_across_tenants_without_cost_bleed() {
        let clock = VirtualClock::new();
        let sim_a = Arc::new(SimulatedLlm::new(
            Catalog::builtin(),
            SimConfig::default(),
            clock.clone(),
            UsageLedger::new(),
        ));
        let sim_b = Arc::new(SimulatedLlm::new(
            Catalog::builtin(),
            SimConfig::default(),
            clock.clone(),
            UsageLedger::new(),
        ));
        let cache_a = CachingClient::new(sim_a.clone());
        let cache_b = cache_a.with_inner(sim_b.clone());

        let req = CompletionRequest::new("gpt-4o", filter_prompt("topic", "shared document"));
        let first = cache_a.complete(&req).unwrap();
        let a_cost = sim_a.ledger().total_cost_usd();
        assert!(a_cost > 0.0);

        let second = cache_b.complete(&req).unwrap();
        assert_eq!(second.text, first.text);
        assert_eq!(second.cost_usd, 0.0);
        // B billed nothing; A's ledger did not move on B's hit.
        assert_eq!(sim_b.ledger().total_cost_usd(), 0.0);
        assert_eq!(sim_b.ledger().total_requests(), 0);
        assert_eq!(sim_a.ledger().total_cost_usd(), a_cost);
        // One shared pair of counters across both handles.
        assert_eq!(cache_b.stats().completion_hits, 1);
        assert_eq!(cache_b.stats().completion_misses, 1);
    }

    /// Leakage audit: the cache key is a pure content hash, so tenants with
    /// *different* prompt bytes can never observe each other's responses —
    /// and there is no tenant-id dimension that could fragment identical
    /// content into per-tenant entries.
    #[test]
    fn shared_cache_never_leaks_across_distinct_prompts() {
        let clock = VirtualClock::new();
        let sim_a = Arc::new(SimulatedLlm::new(
            Catalog::builtin(),
            SimConfig::default(),
            clock.clone(),
            UsageLedger::new(),
        ));
        let sim_b = Arc::new(SimulatedLlm::new(
            Catalog::builtin(),
            SimConfig::default(),
            clock.clone(),
            UsageLedger::new(),
        ));
        let cache_a = CachingClient::new(sim_a.clone());
        let cache_b = cache_a.with_inner(sim_b.clone());

        // Tenant A warms the cache with its (private) document. Free-form
        // prompts echo content back, so a leak would be visible in the text.
        let private = CompletionRequest::new("gpt-4o", "summarize: tenant A confidential record");
        let a_resp = cache_a.complete(&private).unwrap();

        // Tenant B asks about *its own* document: near-identical task, one
        // byte of content difference. Must miss and be answered from B's own
        // client, never from A's entry.
        let b_req = CompletionRequest::new("gpt-4o", "summarize: tenant B confidential record");
        let b_resp = cache_b.complete(&b_req).unwrap();
        assert_ne!(
            CachingClient::completion_key(&private),
            CachingClient::completion_key(&b_req)
        );
        assert_ne!(b_resp.text, a_resp.text);
        assert!(b_resp.cost_usd > 0.0);
        assert_eq!(cache_b.stats().completion_hits, 0);
        assert_eq!(cache_b.stats().completion_misses, 2);

        // Embeddings share the same discipline: content-hash key, no tenant
        // dimension.
        let embed_req = EmbeddingRequest {
            model: "text-embedding-3-small".into(),
            inputs: vec!["alpha".into()],
        };
        let ea = cache_a.embed(&embed_req).unwrap();
        let eb = cache_b.embed(&embed_req).unwrap();
        assert_eq!(ea.vectors, eb.vectors);
        assert_eq!(sim_b.ledger().total_requests(), 1); // only B's filter call
    }
}
