//! Per-model health tracking and circuit breaking.
//!
//! Each model gets an independent fault domain with a classic three-state
//! breaker driven entirely by the **virtual clock**:
//!
//! ```text
//!            trip / rate threshold            cooldown elapses
//!   Closed ───────────────────────▶ Open ────────────────────▶ HalfOpen
//!     ▲                              ▲                            │
//!     │            probe succeeds    │    probe fails             │
//!     └──────────────────────────────┼────────────────────────────┘
//!                                    └──── (reopen, fresh cooldown)
//! ```
//!
//! Two mechanisms open a breaker:
//!
//! 1. **Retry exhaustion** ([`HealthTracker::trip`]): the retry layer burned
//!    every attempt against the model. This is the primary signal — it is
//!    deterministic and essentially immune to the background transient rate
//!    used in tests (P(exhaust) = rate^attempts).
//! 2. **Failure-rate window**: a sliding window of per-attempt outcomes;
//!    the breaker opens when the window holds at least
//!    [`BreakerConfig::min_failures`] failures at a failure rate of at
//!    least [`BreakerConfig::failure_rate`]. Defaults are deliberately
//!    conservative so modest transient rates never trip it.
//!
//! Rate-limit errors carry a `retry_after` hint; an opening breaker honors
//! it by extending the cooldown to at least the hint, so half-open probes
//! don't land while the provider is still shedding load.

use crate::catalog::ModelId;
use crate::client::LlmError;
use parking_lot::Mutex;
use pz_obs::{Layer, Tracer};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Tuning knobs for the per-model breakers.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Sliding window length, in attempts.
    pub window: usize,
    /// Minimum failures in the window before the rate check can fire.
    pub min_failures: usize,
    /// Failure rate over the window at/above which the breaker opens.
    pub failure_rate: f64,
    /// Seconds an opened breaker stays open before allowing a probe.
    pub cooldown_secs: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 16,
            min_failures: 12,
            failure_rate: 0.75,
            cooldown_secs: 30.0,
        }
    }
}

/// Breaker state for one model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BreakerState {
    /// Healthy: calls flow freely.
    Closed,
    /// Unhealthy: calls are refused until `until_secs` on the virtual clock.
    Open { until_secs: f64 },
    /// Cooling down: exactly one probe call is allowed through; its outcome
    /// decides between Closed and a fresh Open.
    HalfOpen,
}

impl BreakerState {
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

#[derive(Clone, Debug)]
struct ModelHealth {
    state: BreakerState,
    /// Sliding window of attempt outcomes, `true` = failure.
    window: VecDeque<bool>,
    failures_total: u64,
    successes_total: u64,
    trips: u64,
}

impl Default for ModelHealth {
    fn default() -> Self {
        Self {
            state: BreakerState::Closed,
            window: VecDeque::new(),
            failures_total: 0,
            successes_total: 0,
            trips: 0,
        }
    }
}

/// One row of [`HealthTracker::snapshot`], for display.
#[derive(Clone, Debug)]
pub struct BreakerSnapshot {
    pub model: ModelId,
    pub state: BreakerState,
    pub failures_total: u64,
    pub successes_total: u64,
    pub trips: u64,
    /// Failure rate over the current sliding window.
    pub window_failure_rate: f64,
}

struct Inner {
    models: BTreeMap<ModelId, ModelHealth>,
    tracer: Option<Tracer>,
}

/// Shared per-model health tracker. Cheap to clone; all clones observe the
/// same state, so the retry layer and both executors see one truth.
#[derive(Clone)]
pub struct HealthTracker {
    inner: Arc<Mutex<Inner>>,
    config: BreakerConfig,
}

impl Default for HealthTracker {
    fn default() -> Self {
        Self::new(BreakerConfig::default())
    }
}

impl HealthTracker {
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                models: BTreeMap::new(),
                tracer: None,
            })),
            config,
        }
    }

    /// Attach a tracer; breaker transitions emit `llm.breaker.*` events.
    pub fn with_tracer(self, tracer: Tracer) -> Self {
        self.inner.lock().tracer = Some(tracer);
        self
    }

    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// May a call to `model` proceed at virtual time `now_secs`? Handles
    /// the Open → HalfOpen transition when the cooldown has elapsed.
    /// Returns `Err(retry_in_secs)` while the breaker refuses calls.
    pub fn allow(&self, model: &ModelId, now_secs: f64) -> Result<(), f64> {
        let mut inner = self.inner.lock();
        let health = inner.models.entry(model.clone()).or_default();
        match health.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open { until_secs } => {
                if now_secs >= until_secs {
                    health.state = BreakerState::HalfOpen;
                    emit(&mut inner, model, "breaker_half_open", now_secs, &[]);
                    Ok(())
                } else {
                    Err(until_secs - now_secs)
                }
            }
        }
    }

    /// Is the breaker currently refusing calls (without side effects)?
    pub fn is_open(&self, model: &ModelId, now_secs: f64) -> bool {
        let inner = self.inner.lock();
        matches!(
            inner.models.get(model).map(|h| h.state),
            Some(BreakerState::Open { until_secs }) if now_secs < until_secs
        )
    }

    /// Record a successful attempt. A half-open probe succeeding closes
    /// the breaker and resets the window.
    pub fn record_success(&self, model: &ModelId, now_secs: f64) {
        let mut inner = self.inner.lock();
        let health = inner.models.entry(model.clone()).or_default();
        health.successes_total += 1;
        if health.state == BreakerState::HalfOpen {
            health.state = BreakerState::Closed;
            health.window.clear();
            emit(&mut inner, model, "breaker_closed", now_secs, &[]);
        } else {
            push_outcome(health, false, self.config.window);
        }
    }

    /// Record a failed attempt. A half-open probe failing reopens the
    /// breaker; otherwise the sliding-window rate check may open it.
    pub fn record_failure(&self, model: &ModelId, err: &LlmError, now_secs: f64) {
        let mut inner = self.inner.lock();
        let health = inner.models.entry(model.clone()).or_default();
        health.failures_total += 1;
        if health.state == BreakerState::HalfOpen {
            open(
                &mut inner,
                model,
                err,
                now_secs,
                &self.config,
                "half-open probe failed",
            );
            return;
        }
        push_outcome(health, true, self.config.window);
        let failures = health.window.iter().filter(|f| **f).count();
        let rate = failures as f64 / health.window.len().max(1) as f64;
        if matches!(health.state, BreakerState::Closed)
            && failures >= self.config.min_failures
            && rate >= self.config.failure_rate
        {
            open(
                &mut inner,
                model,
                err,
                now_secs,
                &self.config,
                "failure-rate window",
            );
        }
    }

    /// Force-open the breaker: the retry layer exhausted every attempt.
    pub fn trip(&self, model: &ModelId, err: &LlmError, now_secs: f64) {
        let mut inner = self.inner.lock();
        open(
            &mut inner,
            model,
            err,
            now_secs,
            &self.config,
            "retry exhausted",
        );
    }

    /// Current state for one model (Closed if never seen).
    pub fn state(&self, model: &ModelId) -> BreakerState {
        self.inner
            .lock()
            .models
            .get(model)
            .map(|h| h.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// All tracked models, for `:breaker`-style display.
    pub fn snapshot(&self) -> Vec<BreakerSnapshot> {
        let inner = self.inner.lock();
        inner
            .models
            .iter()
            .map(|(model, h)| BreakerSnapshot {
                model: model.clone(),
                state: h.state,
                failures_total: h.failures_total,
                successes_total: h.successes_total,
                trips: h.trips,
                window_failure_rate: h.window.iter().filter(|f| **f).count() as f64
                    / h.window.len().max(1) as f64,
            })
            .collect()
    }

    /// Forget all health state (fresh run).
    pub fn reset(&self) {
        self.inner.lock().models.clear();
    }
}

fn push_outcome(health: &mut ModelHealth, failed: bool, window: usize) {
    health.window.push_back(failed);
    while health.window.len() > window.max(1) {
        health.window.pop_front();
    }
}

fn open(
    inner: &mut Inner,
    model: &ModelId,
    err: &LlmError,
    now_secs: f64,
    config: &BreakerConfig,
    reason: &str,
) {
    let cooldown = match err.retry_after_secs() {
        Some(hint) => config.cooldown_secs.max(hint),
        None => config.cooldown_secs,
    };
    let until_secs = now_secs + cooldown;
    let health = inner.models.entry(model.clone()).or_default();
    health.state = BreakerState::Open { until_secs };
    health.window.clear();
    health.trips += 1;
    emit(
        inner,
        model,
        "breaker_opened",
        now_secs,
        &[
            ("reason", reason.to_string()),
            ("until_secs", format!("{until_secs:.3}")),
        ],
    );
}

fn emit(inner: &mut Inner, model: &ModelId, event: &str, now_secs: f64, extra: &[(&str, String)]) {
    if let Some(tracer) = &inner.tracer {
        let mut attrs: Vec<(&str, String)> = vec![
            ("model", model.to_string()),
            ("at_secs", format!("{now_secs:.3}")),
        ];
        attrs.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
        tracer.event(Layer::Llm, event, &attrs);
        tracer.incr(&format!("llm.{event}"), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelId {
        "gpt-4o".into()
    }

    fn outage() -> LlmError {
        LlmError::Transient {
            attempt: 0,
            reason: "down".into(),
        }
    }

    #[test]
    fn starts_closed_and_allows() {
        let t = HealthTracker::default();
        assert_eq!(t.state(&model()), BreakerState::Closed);
        assert!(t.allow(&model(), 0.0).is_ok());
    }

    #[test]
    fn trip_opens_then_half_opens_after_cooldown() {
        let t = HealthTracker::default();
        t.trip(&model(), &outage(), 10.0);
        assert_eq!(t.state(&model()), BreakerState::Open { until_secs: 40.0 });
        // Refused with the remaining cooldown.
        assert_eq!(t.allow(&model(), 20.0), Err(20.0));
        // After cooldown: one probe allowed, state flips to HalfOpen.
        assert!(t.allow(&model(), 41.0).is_ok());
        assert_eq!(t.state(&model()), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let t = HealthTracker::default();
        t.trip(&model(), &outage(), 0.0);
        assert!(t.allow(&model(), 31.0).is_ok());
        t.record_success(&model(), 31.5);
        assert_eq!(t.state(&model()), BreakerState::Closed);
        assert!(t.allow(&model(), 32.0).is_ok());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let t = HealthTracker::default();
        t.trip(&model(), &outage(), 0.0);
        assert!(t.allow(&model(), 31.0).is_ok());
        t.record_failure(&model(), &outage(), 31.5);
        assert_eq!(t.state(&model()), BreakerState::Open { until_secs: 61.5 });
    }

    #[test]
    fn open_honors_retry_after_hint() {
        let t = HealthTracker::default();
        let err = LlmError::RateLimited {
            model: model(),
            retry_after_secs: 120.0,
        };
        t.trip(&model(), &err, 0.0);
        assert_eq!(t.state(&model()), BreakerState::Open { until_secs: 120.0 });
    }

    #[test]
    fn rate_window_opens_only_past_threshold() {
        let t = HealthTracker::default();
        // 11 failures: below min_failures (12), stays closed.
        for i in 0..11 {
            t.record_failure(&model(), &outage(), i as f64);
        }
        assert_eq!(t.state(&model()), BreakerState::Closed);
        // 12th failure crosses min_failures at rate 1.0.
        t.record_failure(&model(), &outage(), 11.0);
        assert!(matches!(t.state(&model()), BreakerState::Open { .. }));
    }

    #[test]
    fn interleaved_successes_keep_rate_below_threshold() {
        let t = HealthTracker::default();
        // Alternate: rate never reaches 0.75.
        for i in 0..40 {
            if i % 2 == 0 {
                t.record_failure(&model(), &outage(), i as f64);
            } else {
                t.record_success(&model(), i as f64);
            }
        }
        assert_eq!(t.state(&model()), BreakerState::Closed);
    }

    #[test]
    fn models_are_independent_fault_domains() {
        let t = HealthTracker::default();
        t.trip(&model(), &outage(), 0.0);
        let other: ModelId = "gpt-4o-mini".into();
        assert!(t.allow(&other, 1.0).is_ok());
        assert_eq!(t.state(&other), BreakerState::Closed);
    }

    #[test]
    fn clones_share_state() {
        let t = HealthTracker::default();
        let u = t.clone();
        t.trip(&model(), &outage(), 0.0);
        assert!(u.is_open(&model(), 1.0));
    }

    #[test]
    fn snapshot_reports_counts() {
        let t = HealthTracker::default();
        t.record_success(&model(), 0.0);
        t.record_failure(&model(), &outage(), 1.0);
        t.trip(&model(), &outage(), 2.0);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].successes_total, 1);
        assert_eq!(snap[0].failures_total, 1);
        assert_eq!(snap[0].trips, 1);
        assert_eq!(snap[0].state.name(), "open");
    }

    #[test]
    fn tracer_records_breaker_events() {
        use crate::clock::VirtualClock;
        let clock = VirtualClock::new();
        let tracer = Tracer::new(Arc::new(clock));
        let t = HealthTracker::default().with_tracer(tracer.clone());
        t.trip(&model(), &outage(), 0.0);
        assert!(t.allow(&model(), 31.0).is_ok()); // -> half-open
        t.record_success(&model(), 31.0); // -> closed
        assert_eq!(tracer.counter("llm.breaker_opened"), 1);
        assert_eq!(tracer.counter("llm.breaker_half_open"), 1);
        assert_eq!(tracer.counter("llm.breaker_closed"), 1);
    }

    #[test]
    fn reset_clears_state() {
        let t = HealthTracker::default();
        t.trip(&model(), &outage(), 0.0);
        t.reset();
        assert_eq!(t.state(&model()), BreakerState::Closed);
        assert!(t.snapshot().is_empty());
    }
}
