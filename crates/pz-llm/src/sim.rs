//! Deterministic LLM simulator.
//!
//! This is substitution **S1** from DESIGN.md: hosted models are replaced by
//! a simulator that (a) actually performs the filter / extract / classify /
//! generate tasks over the synthetic corpora using transparent rules, and
//! (b) injects *deterministic, quality-dependent errors*, so that cheaper
//! models measurably produce worse output — the property Palimpzest's
//! optimizer trades against cost and latency.
//!
//! Error injection is keyed by `(seed, model, task, content)` through the
//! stable hash, so a given record is always judged the same way by a given
//! model: reruns are bit-identical, yet aggregate error rates match the
//! model card's quality factor.

use crate::catalog::{Catalog, ModelKind};
use crate::client::{
    CompletionRequest, CompletionResponse, EmbeddingRequest, EmbeddingResponse, LlmClient, LlmError,
};
use crate::clock::VirtualClock;
use crate::embedding::Embedder;
use crate::fault::{FaultInjector, FaultPlan};
use crate::protocol::{self, Cardinality, Effort, FieldSpec, Task};
use crate::tokenizer::{count_output_tokens, count_tokens};
use crate::usage::{Usage, UsageLedger};
use crate::{hash_unit, stable_hash};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of the simulator.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed: change it to sample a different (but still
    /// deterministic) error pattern.
    pub seed: u64,
    /// Probability that any single call fails with a transient error
    /// (exercises retry paths; 0.0 in most experiments).
    pub transient_failure_rate: f64,
    /// Dimensionality of simulated embeddings.
    pub embedding_dim: usize,
    /// Scripted per-model fault windows (outages, brownouts, rate limits,
    /// timeouts, malformed output) on the virtual clock. Empty by default:
    /// the fault path is then a complete no-op.
    pub fault_plan: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            transient_failure_rate: 0.0,
            embedding_dim: 64,
            fault_plan: FaultPlan::none(),
        }
    }
}

/// The simulated client. Cheap to clone is not required; executors share it
/// behind an `Arc`.
pub struct SimulatedLlm {
    catalog: Catalog,
    config: SimConfig,
    clock: VirtualClock,
    ledger: UsageLedger,
    embedder: Embedder,
    faults: FaultInjector,
    call_counter: AtomicU64,
}

impl SimulatedLlm {
    pub fn new(
        catalog: Catalog,
        config: SimConfig,
        clock: VirtualClock,
        ledger: UsageLedger,
    ) -> Self {
        let embedder = Embedder::new(config.embedding_dim);
        let faults = FaultInjector::new(config.fault_plan.clone());
        Self {
            catalog,
            config,
            clock,
            ledger,
            embedder,
            faults,
            call_counter: AtomicU64::new(0),
        }
    }

    /// Simulator over the builtin catalog with fresh clock and ledger.
    pub fn with_defaults() -> Self {
        Self::new(
            Catalog::builtin(),
            SimConfig::default(),
            VirtualClock::new(),
            UsageLedger::new(),
        )
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    pub fn ledger(&self) -> &UsageLedger {
        &self.ledger
    }

    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Shared handle on the scripted fault plan; clones observe (and can
    /// swap) the same plan live.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Consult the scripted fault plan. Runs before any billing: a faulted
    /// call costs no tokens and no dollars — except timeouts, which burn
    /// the stalled wall-clock time.
    fn check_faults(&self, model: &crate::catalog::ModelId) -> Result<(), LlmError> {
        match self.faults.check(model, self.clock.now_secs()) {
            Ok(()) => Ok(()),
            Err(fault) => {
                if fault.stall_secs > 0.0 {
                    self.clock.advance_secs(fault.stall_secs);
                }
                Err(fault.error)
            }
        }
    }

    fn seed_str(&self) -> String {
        self.config.seed.to_string()
    }

    /// Decide whether this call transiently fails (deterministic in the call
    /// counter, so a retry of the "same" request is a *different* call and
    /// can succeed).
    fn maybe_transient(&self) -> Result<(), LlmError> {
        if self.config.transient_failure_rate <= 0.0 {
            return Ok(());
        }
        let n = self.call_counter.fetch_add(1, Ordering::Relaxed);
        let u = hash_unit(&[&self.seed_str(), "transient", &n.to_string()]);
        if u < self.config.transient_failure_rate {
            Err(LlmError::Transient {
                attempt: n as usize,
                reason: "simulated provider overload".into(),
            })
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Text analysis helpers (shared by the task implementations)
// ---------------------------------------------------------------------------

const STOPWORDS: &[&str] = &[
    "a",
    "an",
    "the",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "do",
    "does",
    "did",
    "have",
    "has",
    "had",
    "of",
    "in",
    "on",
    "at",
    "to",
    "for",
    "with",
    "by",
    "from",
    "as",
    "about",
    "into",
    "that",
    "this",
    "these",
    "those",
    "it",
    "its",
    "and",
    "or",
    "not",
    "no",
    "paper",
    "papers",
    "document",
    "documents",
    "record",
    "records",
    "item",
    "items",
    "all",
    "any",
    "which",
    "who",
    "whom",
    "whose",
    "what",
    "where",
    "when",
    "how",
    "should",
    "would",
    "must",
    "can",
    "could",
    "may",
    "might",
    "will",
    "shall",
    "than",
    "then",
    "there",
    "their",
    "they",
    "them",
    "we",
    "you",
    "i",
    "he",
    "she",
    "his",
    "her",
    "our",
    "your",
    // Conversational filler around predicates: container nouns and speech
    // verbs that carry no topical signal.
    "listing",
    "listings",
    "email",
    "emails",
    "mail",
    "mails",
    "message",
    "messages",
    "describe",
    "describes",
    "describing",
    "discuss",
    "discusses",
    "discussing",
    "mention",
    "mentions",
    "mentioning",
    "keep",
    "only",
    "interested",
    "want",
    "wants",
    "like",
    "please",
    "study",
    "studies",
];

fn is_stopword(w: &str) -> bool {
    STOPWORDS.contains(&w)
}

/// Lowercased alphanumeric content words (stopwords removed).
pub(crate) fn content_words(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() > 1)
        .map(|t| t.to_ascii_lowercase())
        .filter(|t| !is_stopword(t))
        .collect()
}

/// Crude stemmer: normalizes common English inflections so "mutations"
/// matches "mutation", "homes" matches "home", "studies" matches "study".
fn stem(w: &str) -> String {
    if w.len() > 4 {
        if let Some(st) = w.strip_suffix("ies") {
            return format!("{st}y");
        }
        if let Some(st) = w.strip_suffix("sses") {
            return format!("{st}ss");
        }
        // boxes -> box, churches -> church
        for pre in ["xes", "zes", "ches", "shes"] {
            if w.ends_with(pre) {
                return w[..w.len() - 2].to_string();
            }
        }
        if let Some(st) = w.strip_suffix("ing") {
            return st.to_string();
        }
        if let Some(st) = w.strip_suffix("ed") {
            return st.to_string();
        }
    }
    if w.len() > 3 && w.ends_with('s') && !w.ends_with("ss") {
        return w[..w.len() - 1].to_string();
    }
    w.to_string()
}

fn relevance(predicate_words: &[String], haystack: &str) -> f64 {
    if predicate_words.is_empty() {
        return 1.0;
    }
    let hay: Vec<String> = content_words(haystack).iter().map(|w| stem(w)).collect();
    let mut hits = 0usize;
    for w in predicate_words {
        let sw = stem(w);
        if hay.contains(&sw) {
            hits += 1;
        }
    }
    hits as f64 / predicate_words.len() as f64
}

// ---------------------------------------------------------------------------
// Task implementations
// ---------------------------------------------------------------------------

/// Fraction of a model's error probability attributable to *record
/// difficulty* shared across models (hard records trip every model),
/// versus model-idiosyncratic noise. Real LLM errors are substantially
/// correlated, which is why majority voting helps less than independence
/// would predict; the cost model mirrors this constant
/// (`pz-core::optimizer::cost::ensemble_quality`).
pub const ERROR_CORRELATION: f64 = 0.35;

impl SimulatedLlm {
    fn answer_filter(&self, model_q: f64, model: &str, predicate: &str, input: &str) -> String {
        // 0.7: with a two-content-word predicate ("colorectal cancer") a
        // hard negative matching only one word (a *breast* cancer paper)
        // scores 0.5 and is rejected; with a three-word conjunctive
        // predicate ("modern homes garden") all three words must appear,
        // giving conjunctions their intended semantics.
        let words = content_words(predicate);
        let base = relevance(&words, input) >= 0.7;
        // Deterministic quality-dependent flip with correlated errors:
        // a shared "record difficulty" draw trips every model whose shared
        // error budget covers it (weaker models err on a superset of hard
        // records), plus an independent per-model draw.
        let e = 1.0 - model_q;
        let u_shared = hash_unit(&[&self.seed_str(), "filter-difficulty", predicate, input]);
        let u_model = hash_unit(&[&self.seed_str(), model, "filter", predicate, input]);
        let flipped = u_shared < ERROR_CORRELATION * e || u_model < (1.0 - ERROR_CORRELATION) * e;
        let answer = if flipped { !base } else { base };
        if answer {
            "TRUE".into()
        } else {
            "FALSE".into()
        }
    }

    fn answer_classify(&self, model_q: f64, model: &str, labels: &[String], input: &str) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let mut best = 0usize;
        let mut best_score = -1.0f64;
        for (i, l) in labels.iter().enumerate() {
            let score = relevance(&content_words(l), input);
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        let e = 1.0 - model_q;
        let u_shared = hash_unit(&[&self.seed_str(), "classify-difficulty", input]);
        let u_model = hash_unit(&[&self.seed_str(), model, "classify", input]);
        let wrong = u_shared < ERROR_CORRELATION * e || u_model < (1.0 - ERROR_CORRELATION) * e;
        let pick = if !wrong || labels.len() == 1 {
            best
        } else {
            // Error: deterministic wrong label.
            (best + 1 + (stable_hash(&[input]) as usize % (labels.len() - 1))) % labels.len()
        };
        labels[pick].clone()
    }

    fn answer_extract(
        &self,
        model_q: f64,
        model: &str,
        fields: &[FieldSpec],
        cardinality: Cardinality,
        input: &str,
    ) -> String {
        let pairs = label_value_pairs(input);
        let blocks = group_into_blocks(&pairs);
        let mut objects: Vec<BTreeMap<String, Option<String>>> = Vec::new();
        for block in &blocks {
            let mut obj = BTreeMap::new();
            let mut any = false;
            for f in fields {
                let v = match_field(f, block, input);
                if v.is_some() {
                    any = true;
                }
                obj.insert(f.name.clone(), v);
            }
            if any {
                objects.push(obj);
            }
        }
        if objects.is_empty() && cardinality == Cardinality::OneToOne {
            // OneToOne always yields exactly one object, even if all null.
            let mut obj = BTreeMap::new();
            for f in fields {
                obj.insert(f.name.clone(), match_field(f, &[], input));
            }
            objects.push(obj);
        }
        if cardinality == Cardinality::OneToOne && objects.len() > 1 {
            objects.truncate(1);
        }

        // Quality-dependent degradation: per extracted object, possibly drop
        // it entirely (recall loss); per field, possibly null it out or
        // corrupt the value (precision loss).
        let mut degraded: Vec<BTreeMap<String, Option<String>>> = Vec::new();
        for (i, mut obj) in objects.into_iter().enumerate() {
            let key = format!("{i}:{}", obj_signature(&obj));
            let u_drop = hash_unit(&[&self.seed_str(), model, "extract-drop", &key]);
            // Whole-object misses are rarer than field-level mistakes.
            let drop_p = (1.0 - model_q) * 0.5;
            if cardinality == Cardinality::OneToMany && u_drop < drop_p {
                continue;
            }
            for f in fields {
                if let Some(Some(v)) = obj.get(&f.name).cloned() {
                    let u = hash_unit(&[&self.seed_str(), model, "extract-field", &f.name, &v]);
                    if u > model_q {
                        let corrupted = if u > model_q + (1.0 - model_q) * 0.5 {
                            None
                        } else {
                            Some(corrupt_value(&v))
                        };
                        obj.insert(f.name.clone(), corrupted);
                    }
                }
            }
            degraded.push(obj);
        }
        protocol::format_extraction_response(&degraded)
    }

    /// Pair judgement for semantic joins: the base decision is lexical —
    /// the two sides share a meaningful fraction of content vocabulary
    /// (Jaccard overlap of stemmed content words ≥ 0.4) — with the same
    /// correlated error injection the filter uses.
    fn answer_match(
        &self,
        model_q: f64,
        model: &str,
        criterion: &str,
        left: &str,
        right: &str,
    ) -> String {
        let lw: std::collections::BTreeSet<String> =
            content_words(left).iter().map(|w| stem(w)).collect();
        let rw: std::collections::BTreeSet<String> =
            content_words(right).iter().map(|w| stem(w)).collect();
        let inter = lw.intersection(&rw).count();
        let smaller = lw.len().min(rw.len()).max(1);
        let base = inter as f64 / smaller as f64 >= 0.4 && inter > 0;
        let e = 1.0 - model_q;
        let u_shared = hash_unit(&[&self.seed_str(), "match-difficulty", criterion, left, right]);
        let u_model = hash_unit(&[&self.seed_str(), model, "match", criterion, left, right]);
        let flipped = u_shared < ERROR_CORRELATION * e || u_model < (1.0 - ERROR_CORRELATION) * e;
        let answer = if flipped { !base } else { base };
        if answer {
            "TRUE".into()
        } else {
            "FALSE".into()
        }
    }

    fn answer_generate(&self, instruction: &str, input: &str) -> String {
        let words: Vec<&str> = input.split_whitespace().take(40).collect();
        if words.is_empty() {
            format!("[{instruction}] (no input)")
        } else {
            format!("[{instruction}] {}", words.join(" "))
        }
    }
}

/// A `label: value` pair found in the input text.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Pair {
    label: String,
    value: String,
}

/// Extract `Label: value` pairs line by line. The label must be short (at
/// most four words) so prose containing colons is not misread.
pub(crate) fn label_value_pairs(input: &str) -> Vec<Pair> {
    let mut out = Vec::new();
    for line in input.lines() {
        let line = line.trim();
        if let Some((label, value)) = line.split_once(':') {
            // Skip URLs masquerading as pairs ("https://...").
            if value.starts_with("//") {
                continue;
            }
            let label = label.trim();
            let value = value.trim().trim_end_matches('.');
            if label.is_empty() || value.is_empty() {
                continue;
            }
            if label.split_whitespace().count() <= 4 {
                out.push(Pair {
                    label: label.to_string(),
                    value: value.to_string(),
                });
            }
        }
    }
    out
}

/// Group a flat pair list into record blocks: a block ends when a label seen
/// in the current block repeats.
pub(crate) fn group_into_blocks(pairs: &[Pair]) -> Vec<Vec<Pair>> {
    let mut blocks: Vec<Vec<Pair>> = Vec::new();
    let mut current: Vec<Pair> = Vec::new();
    for p in pairs {
        let norm = normalize_label(&p.label);
        if current.iter().any(|q| normalize_label(&q.label) == norm) {
            blocks.push(std::mem::take(&mut current));
        }
        current.push(p.clone());
    }
    if !current.is_empty() {
        blocks.push(current);
    }
    blocks
}

fn normalize_label(l: &str) -> String {
    let words = content_words(l).join(" ");
    if words.is_empty() {
        // Single-character or all-stopword labels still need an identity.
        l.trim().to_ascii_lowercase()
    } else {
        words
    }
}

fn obj_signature(obj: &BTreeMap<String, Option<String>>) -> String {
    obj.values()
        .map(|v| v.as_deref().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\u{1}")
}

fn wants_url(f: &FieldSpec) -> bool {
    let hay = format!("{} {}", f.name, f.description).to_ascii_lowercase();
    hay.contains("url") || hay.contains("link") || hay.contains("website")
}

fn find_url(text: &str) -> Option<String> {
    for tok in text.split_whitespace() {
        if let Some(start) = tok.find("http://").or_else(|| tok.find("https://")) {
            let url: String = tok[start..]
                .trim_end_matches(['.', ',', ';', ')', ']'])
                .to_string();
            if url.len() > 10 {
                return Some(url);
            }
        }
    }
    None
}

/// Find the value for a requested field inside one record block, falling
/// back to the whole input for URL-like fields.
/// Header-style synonyms the extractor understands: a field named
/// `sender` matches a `From:` header the way a real LLM would.
fn field_synonyms(word: &str) -> &'static [&'static str] {
    match word {
        "sender" => &["from"],
        "recipient" | "receiver" => &["to"],
        "date" => &["sent", "when"],
        "subject" => &["re"],
        "author" => &["by", "from"],
        "title" => &["name"],
        _ => &[],
    }
}

fn match_field(f: &FieldSpec, block: &[Pair], whole_input: &str) -> Option<String> {
    // Words from the field name carry much more weight than words from its
    // description: "url" in the name must beat "dataset" in the description.
    let mut name_stems: Vec<String> = f
        .name
        .split(['_', '-'])
        .map(|w| w.to_ascii_lowercase())
        .filter(|w| w.len() > 1 && !is_stopword(w))
        .map(|w| stem(&w))
        .collect();
    for w in name_stems.clone() {
        for syn in field_synonyms(&w) {
            name_stems.push((*syn).to_string());
        }
    }
    let desc_stems: Vec<String> = content_words(&f.description)
        .iter()
        .map(|w| stem(w))
        .collect();

    let mut best: Option<(&Pair, usize)> = None;
    for p in block {
        // Labels made entirely of stopwords ("From", "To") still need to
        // be matchable via synonyms: fall back to the raw tokens.
        let mut label_words: Vec<String> =
            content_words(&p.label).iter().map(|w| stem(w)).collect();
        if label_words.is_empty() {
            label_words = p
                .label
                .split_whitespace()
                .map(|w| w.to_ascii_lowercase())
                .collect();
        }
        let score = label_words
            .iter()
            .filter(|w| name_stems.contains(w))
            .count()
            * 10
            + label_words
                .iter()
                .filter(|w| desc_stems.contains(w))
                .count();
        if score > 0 {
            match best {
                Some((_, b)) if b >= score => {}
                _ => best = Some((p, score)),
            }
        }
    }
    if let Some((p, _)) = best {
        // URL fields: extract the URL token even if buried in prose.
        if wants_url(f) {
            if let Some(u) = find_url(&p.value) {
                return Some(u);
            }
        }
        return Some(p.value.clone());
    }
    if wants_url(f) {
        // No matching label: scan the block values, then the whole input.
        for p in block {
            if let Some(u) = find_url(&p.value) {
                return Some(u);
            }
        }
        return find_url(whole_input);
    }
    None
}

/// Deterministically mangle a value so quality metrics register the error.
fn corrupt_value(v: &str) -> String {
    if v.starts_with("http") {
        // A wrong-but-plausible URL.
        format!("https://example.org/{:x}", stable_hash(&[v]) & 0xffff)
    } else if v.len() > 4 {
        // Truncate and mark: a classic partial-extraction failure.
        format!("{}…", &v[..v.len() / 2])
    } else {
        format!("{v}?")
    }
}

// ---------------------------------------------------------------------------
// LlmClient implementation
// ---------------------------------------------------------------------------

impl LlmClient for SimulatedLlm {
    fn complete(&self, req: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
        let card = self
            .catalog
            .get(&req.model)
            .ok_or_else(|| LlmError::UnknownModel(req.model.clone()))?
            .clone();
        if card.kind != ModelKind::Chat {
            return Err(LlmError::WrongKind {
                model: req.model.clone(),
                expected: "chat",
            });
        }
        let input_tokens =
            count_tokens(&req.prompt) + req.system.as_deref().map_or(0, count_tokens);
        if input_tokens > card.context_window {
            return Err(LlmError::ContextOverflow {
                model: req.model.clone(),
                tokens: input_tokens,
                window: card.context_window,
            });
        }
        self.check_faults(&req.model)?;
        self.maybe_transient()?;

        let model = card.id.as_str();
        let q = card.quality;
        // High effort models self-critique prompting: the error rate is
        // roughly halved, at about double the token/latency budget (applied
        // below via `effort_multiplier`).
        let boosted = |q: f64, e: Effort| match e {
            Effort::Standard => q,
            Effort::High => q + (1.0 - q) * 0.5,
        };
        let mut effort_multiplier = 1.0f64;
        let mut text = match protocol::parse_prompt(&req.prompt) {
            Some(Task::Filter {
                predicate,
                input,
                effort,
            }) => {
                if effort == Effort::High {
                    effort_multiplier = 2.0;
                }
                self.answer_filter(boosted(q, effort), model, &predicate, &input)
            }
            Some(Task::Extract {
                fields,
                cardinality,
                input,
                effort,
            }) => {
                if effort == Effort::High {
                    effort_multiplier = 2.0;
                }
                self.answer_extract(boosted(q, effort), model, &fields, cardinality, &input)
            }
            Some(Task::Classify { labels, input }) => {
                // The Effort header is honoured for classification too.
                let effort = if req.prompt.contains("#EFFORT high") {
                    Effort::High
                } else {
                    Effort::Standard
                };
                if effort == Effort::High {
                    effort_multiplier = 2.0;
                }
                self.answer_classify(boosted(q, effort), model, &labels, &input)
            }
            Some(Task::Generate { instruction, input }) => {
                self.answer_generate(&instruction, &input)
            }
            Some(Task::Match {
                criterion,
                left,
                right,
                effort,
            }) => {
                if effort == Effort::High {
                    effort_multiplier = 2.0;
                }
                self.answer_match(boosted(q, effort), model, &criterion, &left, &right)
            }
            None => self.answer_generate("echo", &req.prompt),
        };

        // Enforce the output budget by word-truncation.
        if count_output_tokens(&text) > req.max_output_tokens {
            let mut acc = String::new();
            for w in text.split_inclusive(char::is_whitespace) {
                if count_output_tokens(&acc) + count_output_tokens(w) > req.max_output_tokens {
                    break;
                }
                acc.push_str(w);
            }
            text = acc.trim_end().to_string();
        }

        let output_tokens = count_output_tokens(&text);
        // High effort = a sequential self-critique round-trip: tokens (and
        // dollars) double, and wall latency doubles because the second pass
        // cannot start before the first finishes.
        let billed_input = (input_tokens as f64 * effort_multiplier) as usize;
        let usage = Usage::new(billed_input, output_tokens);
        let cost_usd = card.cost_usd(billed_input, output_tokens);
        let latency_secs = card.latency_secs(input_tokens, output_tokens) * effort_multiplier;
        // Atomic check-and-bill: a call the tenant's budget cannot cover is
        // refused before it "happens" — no ledger entry, no clock advance.
        self.ledger
            .try_charge(&card.id, usage, cost_usd, latency_secs)
            .map_err(|q| LlmError::QuotaExhausted {
                model: card.id.clone(),
                reason: q.reason,
            })?;
        self.clock.advance_secs(latency_secs);
        Ok(CompletionResponse {
            text,
            usage,
            latency_secs,
            cost_usd,
        })
    }

    fn embed(&self, req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
        let card = self
            .catalog
            .get(&req.model)
            .ok_or_else(|| LlmError::UnknownModel(req.model.clone()))?
            .clone();
        if card.kind != ModelKind::Embedding {
            return Err(LlmError::WrongKind {
                model: req.model.clone(),
                expected: "embedding",
            });
        }
        self.check_faults(&req.model)?;
        self.maybe_transient()?;
        let input_tokens: usize = req.inputs.iter().map(|s| count_tokens(s)).sum();
        let vectors: Vec<Vec<f32>> = req.inputs.iter().map(|s| self.embedder.embed(s)).collect();
        let usage = Usage::new(input_tokens, 0);
        let cost_usd = card.cost_usd(input_tokens, 0);
        let latency_secs = card.latency_secs(input_tokens, 0);
        self.ledger
            .try_charge(&card.id, usage, cost_usd, latency_secs)
            .map_err(|q| LlmError::QuotaExhausted {
                model: card.id.clone(),
                reason: q.reason,
            })?;
        self.clock.advance_secs(latency_secs);
        Ok(EmbeddingResponse {
            vectors,
            usage,
            latency_secs,
            cost_usd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{extract_prompt, filter_prompt};

    fn sim() -> SimulatedLlm {
        SimulatedLlm::with_defaults()
    }

    const CANCER_DOC: &str = "Title: Gene mutation profiles in colorectal cancer tumors\n\
        Abstract: We study somatic mutation patterns in colorectal cancer \
        tumor cells using public genomic cohorts.\n\
        Dataset: TCGA-COADREAD\n\
        Description: Colorectal adenocarcinoma multi omics cohort\n\
        URL: https://portal.gdc.cancer.gov/projects/TCGA-COADREAD\n";

    const ASTRO_DOC: &str = "Title: Spectral classification of distant quasars\n\
        Abstract: We analyze emission spectra of quasars observed by a survey telescope.\n";

    /// Majority vote across doc variants: individual answers may flip with
    /// probability 1 - quality (that is the point of the simulator), but the
    /// aggregate decision must track relevance.
    fn majority_filter(s: &SimulatedLlm, predicate: &str, doc: &str) -> bool {
        let mut yes = 0;
        for i in 0..9 {
            let variant = format!("{doc}\nNote {i}.");
            let req = CompletionRequest::new("gpt-4o", filter_prompt(predicate, &variant));
            if s.complete(&req).unwrap().text == "TRUE" {
                yes += 1;
            }
        }
        yes > 4
    }

    #[test]
    fn filter_true_on_relevant_doc() {
        let s = sim();
        assert!(majority_filter(
            &s,
            "The papers are about colorectal cancer",
            CANCER_DOC
        ));
    }

    #[test]
    fn filter_false_on_irrelevant_doc() {
        let s = sim();
        assert!(!majority_filter(
            &s,
            "The papers are about colorectal cancer",
            ASTRO_DOC
        ));
    }

    #[test]
    fn extraction_finds_fields() {
        let s = sim();
        let fields = vec![
            FieldSpec::new("name", "The name of the dataset"),
            FieldSpec::new("description", "A short description of the dataset"),
            FieldSpec::new("url", "The public URL where the dataset can be accessed"),
        ];
        let req = CompletionRequest::new(
            "gpt-4o",
            extract_prompt(&fields, Cardinality::OneToMany, CANCER_DOC),
        );
        let resp = s.complete(&req).unwrap();
        let objs = protocol::parse_extraction_response(&resp.text);
        assert_eq!(objs.len(), 1, "resp: {}", resp.text);
        assert_eq!(objs[0]["name"].as_deref(), Some("TCGA-COADREAD"));
        assert_eq!(
            objs[0]["url"].as_deref(),
            Some("https://portal.gdc.cancer.gov/projects/TCGA-COADREAD")
        );
    }

    #[test]
    fn extraction_one_to_many_groups_blocks() {
        let s = sim();
        let doc = "Dataset: A\nURL: https://a.example.com/data\n\
                   Dataset: B\nURL: https://b.example.com/data\n";
        let fields = vec![
            FieldSpec::new("dataset_name", "The dataset name"),
            FieldSpec::new("url", "The public URL"),
        ];
        let req = CompletionRequest::new(
            "gpt-4o",
            extract_prompt(&fields, Cardinality::OneToMany, doc),
        );
        let objs = protocol::parse_extraction_response(&s.complete(&req).unwrap().text);
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[0]["dataset_name"].as_deref(), Some("A"));
        assert_eq!(
            objs[1]["url"].as_deref(),
            Some("https://b.example.com/data")
        );
    }

    #[test]
    fn one_to_one_always_yields_one_object() {
        let s = sim();
        let fields = vec![FieldSpec::new(
            "nothing_here",
            "A field that does not exist",
        )];
        let req = CompletionRequest::new(
            "gpt-4o",
            extract_prompt(
                &fields,
                Cardinality::OneToOne,
                "plain prose without structure",
            ),
        );
        let objs = protocol::parse_extraction_response(&s.complete(&req).unwrap().text);
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0]["nothing_here"], None);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = sim();
        let b = sim();
        let req =
            CompletionRequest::new("llama-3-8b", filter_prompt("colorectal cancer", CANCER_DOC));
        assert_eq!(
            a.complete(&req).unwrap().text,
            b.complete(&req).unwrap().text
        );
    }

    #[test]
    fn weaker_model_makes_more_mistakes() {
        // Over many documents, the weak model must disagree with ground
        // truth more often than the strong one.
        let s = sim();
        let mut strong_errors = 0;
        let mut weak_errors = 0;
        for i in 0..200 {
            let relevant = i % 2 == 0;
            let doc = if relevant {
                format!("Doc {i}. Study of colorectal cancer tumor mutation.")
            } else {
                format!("Doc {i}. Galaxy cluster redshift survey telescope.")
            };
            let prompt = filter_prompt("about colorectal cancer", &doc);
            let strong = s
                .complete(&CompletionRequest::new("gpt-4o", prompt.clone()))
                .unwrap()
                .text
                == "TRUE";
            let weak = s
                .complete(&CompletionRequest::new("llama-3-8b", prompt))
                .unwrap()
                .text
                == "TRUE";
            if strong != relevant {
                strong_errors += 1;
            }
            if weak != relevant {
                weak_errors += 1;
            }
        }
        assert!(
            weak_errors > strong_errors,
            "weak {weak_errors} vs strong {strong_errors}"
        );
        // gpt-4o quality 0.96 -> about 8 errors in 200; allow slack.
        assert!(strong_errors < 30);
        // llama-3-8b quality 0.72 -> about 56 errors in 200; require a gap.
        assert!(weak_errors > 30);
    }

    #[test]
    fn match_task_judges_pairs() {
        let s = sim();
        let yes = s
            .complete(&CompletionRequest::new(
                "gpt-4o",
                protocol::match_prompt(
                    "the records refer to the same dataset",
                    "name: TCGA-COADREAD colorectal adenocarcinoma cohort",
                    "dataset: TCGA COADREAD multi omics colorectal cohort",
                    Effort::Standard,
                ),
            ))
            .unwrap();
        assert_eq!(yes.text, "TRUE");
        let no = s
            .complete(&CompletionRequest::new(
                "gpt-4o",
                protocol::match_prompt(
                    "the records refer to the same dataset",
                    "name: TCGA-COADREAD colorectal cohort",
                    "dataset: quasar redshift survey catalogue",
                    Effort::Standard,
                ),
            ))
            .unwrap();
        assert_eq!(no.text, "FALSE");
    }

    #[test]
    fn errors_are_correlated_across_models() {
        // The shared record-difficulty component makes two models' errors
        // co-occur far more often than independence predicts.
        let s = sim();
        let models = ["llama-3-8b", "mixtral-8x7b"]; // e = .28, .22
        let mut errs = [0usize; 2];
        let mut joint = 0usize;
        let n = 400;
        for i in 0..n {
            let relevant = i % 2 == 0;
            let doc = if relevant {
                format!("Doc {i}: colorectal cancer tumor mutation cohort.")
            } else {
                format!("Doc {i}: galaxy redshift survey telescope imaging.")
            };
            let prompt = filter_prompt("about colorectal cancer", &doc);
            let mut wrong = [false; 2];
            for (j, m) in models.iter().enumerate() {
                let ans = s
                    .complete(&CompletionRequest::new(*m, prompt.clone()))
                    .unwrap();
                wrong[j] = (ans.text == "TRUE") != relevant;
            }
            errs[0] += usize::from(wrong[0]);
            errs[1] += usize::from(wrong[1]);
            joint += usize::from(wrong[0] && wrong[1]);
        }
        let p0 = errs[0] as f64 / n as f64;
        let p1 = errs[1] as f64 / n as f64;
        let p_joint = joint as f64 / n as f64;
        // Joint error rate well above the independent product.
        assert!(
            p_joint > 1.5 * p0 * p1,
            "joint {p_joint:.3} vs independent {:.3}",
            p0 * p1
        );
        // And the marginals are in the neighbourhood of 1 - quality.
        assert!((0.15..0.45).contains(&p0), "llama-3-8b error rate {p0}");
        assert!((0.10..0.35).contains(&p1), "mixtral error rate {p1}");
    }

    #[test]
    fn accounting_hits_ledger_and_clock() {
        let s = sim();
        let req = CompletionRequest::new("gpt-4o", filter_prompt("cancer", CANCER_DOC));
        let resp = s.complete(&req).unwrap();
        assert!(resp.cost_usd > 0.0);
        assert!(resp.latency_secs > 0.0);
        assert_eq!(s.ledger().total_requests(), 1);
        assert!((s.clock().now_secs() - resp.latency_secs).abs() < 1e-9);
    }

    #[test]
    fn unknown_model_rejected() {
        let s = sim();
        let err = s
            .complete(&CompletionRequest::new("gpt-99", "hi"))
            .unwrap_err();
        assert_eq!(err, LlmError::UnknownModel("gpt-99".into()));
    }

    #[test]
    fn embedding_model_rejects_completion() {
        let s = sim();
        let err = s
            .complete(&CompletionRequest::new("text-embedding-3-small", "hi"))
            .unwrap_err();
        assert!(matches!(err, LlmError::WrongKind { .. }));
    }

    #[test]
    fn chat_model_rejects_embedding() {
        let s = sim();
        let err = s
            .embed(&EmbeddingRequest {
                model: "gpt-4o".into(),
                inputs: vec!["x".into()],
            })
            .unwrap_err();
        assert!(matches!(err, LlmError::WrongKind { .. }));
    }

    #[test]
    fn context_overflow_detected() {
        let s = sim();
        let huge = "word ".repeat(20_000);
        let err = s
            .complete(&CompletionRequest::new("llama-3-8b", huge))
            .unwrap_err();
        assert!(matches!(err, LlmError::ContextOverflow { .. }));
    }

    #[test]
    fn transient_failures_fire_at_configured_rate() {
        let s = SimulatedLlm::new(
            Catalog::builtin(),
            SimConfig {
                transient_failure_rate: 0.5,
                ..Default::default()
            },
            VirtualClock::new(),
            UsageLedger::new(),
        );
        let mut failures = 0;
        for _ in 0..100 {
            let r = s.complete(&CompletionRequest::new("gpt-4o", "hello"));
            if matches!(r, Err(LlmError::Transient { .. })) {
                failures += 1;
            }
        }
        assert!((30..=70).contains(&failures), "failures {failures}");
    }

    #[test]
    fn scripted_outage_fails_without_billing() {
        let s = SimulatedLlm::new(
            Catalog::builtin(),
            SimConfig {
                fault_plan: FaultPlan::default().outage("gpt-4o", 0.0, 100.0),
                ..Default::default()
            },
            VirtualClock::new(),
            UsageLedger::new(),
        );
        let req = CompletionRequest::new("gpt-4o", filter_prompt("cancer", CANCER_DOC));
        let err = s.complete(&req).unwrap_err();
        assert!(matches!(err, LlmError::Transient { .. }));
        // Failed calls bill nothing and burn no time.
        assert_eq!(s.ledger().total_requests(), 0);
        assert!(s.clock().now_secs().abs() < 1e-9);
        // Other models are unaffected, and once past the window the model
        // recovers.
        s.complete(&CompletionRequest::new(
            "gpt-4o-mini",
            filter_prompt("cancer", CANCER_DOC),
        ))
        .unwrap();
        s.clock().advance_secs(200.0);
        s.complete(&req).unwrap();
    }

    /// Satellite regression for the billing-order audit in
    /// [`crate::client::RetryPolicy::embed_with`]: an embedding attempt that
    /// fails inside a fault window must bill the ledger nothing, including
    /// when driven through the full retry path.
    #[test]
    fn embed_billing_skipped_when_fault_fails_the_call() {
        let clock = VirtualClock::new();
        let s = SimulatedLlm::new(
            Catalog::builtin(),
            SimConfig {
                fault_plan: FaultPlan::default().outage("text-embedding-3-small", 0.0, 1e9),
                ..Default::default()
            },
            clock.clone(),
            UsageLedger::new(),
        );
        let req = EmbeddingRequest {
            model: "text-embedding-3-small".into(),
            inputs: vec!["some document".into()],
        };
        let rc = crate::client::RetryContext::new(&clock);
        let err = crate::client::RetryPolicy::default()
            .embed_with(&s, &req, &rc)
            .unwrap_err();
        assert!(err.is_retryable());
        // Every attempt failed: no requests, no tokens, no dollars.
        assert_eq!(s.ledger().total_requests(), 0);
        assert_eq!(s.ledger().total_usage().total_tokens(), 0);
        assert!(s.ledger().total_cost_usd().abs() < 1e-12);
    }

    /// Companion regression: once the breaker for the embedding model is
    /// open, the retry layer refuses locally — the client is never reached
    /// and the ledger stays untouched.
    #[test]
    fn embed_billing_skipped_when_breaker_refuses_the_call() {
        use crate::breaker::HealthTracker;
        let clock = VirtualClock::new();
        let s = SimulatedLlm::new(
            Catalog::builtin(),
            SimConfig {
                fault_plan: FaultPlan::default().outage("text-embedding-3-small", 0.0, 1e9),
                ..Default::default()
            },
            clock.clone(),
            UsageLedger::new(),
        );
        let health = HealthTracker::default();
        let req = EmbeddingRequest {
            model: "text-embedding-3-small".into(),
            inputs: vec!["some document".into()],
        };
        let rc = crate::client::RetryContext::new(&clock).with_health(&health);
        let policy = crate::client::RetryPolicy::default();
        // Exhausting retries trips the breaker…
        policy.embed_with(&s, &req, &rc).unwrap_err();
        // …so the next call is refused before the provider, billing nothing
        // and burning no time (a provider attempt would back off on the
        // clock; a local refusal must not).
        let requests_before = s.ledger().total_requests();
        let now_before = clock.now_secs();
        let err = policy.embed_with(&s, &req, &rc).unwrap_err();
        assert!(matches!(err, LlmError::CircuitOpen { .. }));
        assert_eq!(s.ledger().total_requests(), requests_before);
        assert!((clock.now_secs() - now_before).abs() < 1e-9);
        assert!(s.ledger().total_cost_usd().abs() < 1e-12);
    }

    /// Quota enforcement happens at the billing point: a call the tenant's
    /// budget cannot cover is refused with a structured error, bills
    /// nothing, and consumes no virtual time. Not a provider fault: the
    /// failover machinery must not route around a spent budget by swapping
    /// models (the ledger — and so the refusal — is tenant-wide).
    #[test]
    fn quota_refusal_bills_nothing_and_burns_no_time() {
        use crate::usage::Quota;
        let clock = VirtualClock::new();
        let ledger = UsageLedger::new();
        let s = SimulatedLlm::new(
            Catalog::builtin(),
            SimConfig::default(),
            clock.clone(),
            ledger.clone(),
        );
        let req = CompletionRequest::new("gpt-4o", filter_prompt("cancer", "a cancer study"));
        let first = s.complete(&req).unwrap();
        assert!(first.cost_usd > 0.0);
        // Cap the budget exactly at what was spent: the next call must not fit.
        ledger.set_quota(Quota::cost_limit(ledger.total_cost_usd()));
        let (requests, now) = (ledger.total_requests(), clock.now_secs());
        let err = s.complete(&req).unwrap_err();
        assert!(matches!(err, LlmError::QuotaExhausted { .. }), "{err}");
        assert!(!err.is_retryable());
        assert!(!err.is_provider_fault());
        assert_eq!(ledger.total_requests(), requests);
        assert!((clock.now_secs() - now).abs() < 1e-9);
        // Embeddings enforce the same budget.
        let err = s
            .embed(&EmbeddingRequest {
                model: "text-embedding-3-small".into(),
                inputs: vec!["doc".into()],
            })
            .unwrap_err();
        assert!(matches!(err, LlmError::QuotaExhausted { .. }), "{err}");
    }

    #[test]
    fn scripted_timeout_burns_time_but_no_tokens() {
        let s = SimulatedLlm::new(
            Catalog::builtin(),
            SimConfig {
                fault_plan: FaultPlan::parse("gpt-4o:timeout@0..10:stall=8", 1).unwrap(),
                ..Default::default()
            },
            VirtualClock::new(),
            UsageLedger::new(),
        );
        let err = s
            .complete(&CompletionRequest::new("gpt-4o", "hello"))
            .unwrap_err();
        assert!(matches!(err, LlmError::Timeout { .. }));
        assert!((s.clock().now_secs() - 8.0).abs() < 1e-9);
        assert_eq!(s.ledger().total_requests(), 0);
    }

    #[test]
    fn injector_handle_swaps_plan_live() {
        let s = sim();
        let req = CompletionRequest::new("gpt-4o", "hello");
        s.complete(&req).unwrap();
        s.faults()
            .set(FaultPlan::default().outage("gpt-4o", 0.0, 1e12));
        assert!(s.complete(&req).is_err());
        s.faults().clear();
        s.complete(&req).unwrap();
    }

    #[test]
    fn embeddings_returned_per_input() {
        let s = sim();
        let resp = s
            .embed(&EmbeddingRequest {
                model: "text-embedding-3-small".into(),
                inputs: vec!["colorectal cancer".into(), "real estate".into()],
            })
            .unwrap();
        assert_eq!(resp.vectors.len(), 2);
        assert_eq!(resp.vectors[0].len(), 64);
        assert!(resp.cost_usd > 0.0);
    }

    #[test]
    fn max_output_tokens_truncates() {
        let s = sim();
        let long_input = "alpha beta gamma delta ".repeat(50);
        let req = CompletionRequest::new(
            "gpt-4o",
            protocol::generate_prompt("summarize", &long_input),
        )
        .with_max_output_tokens(5);
        let resp = s.complete(&req).unwrap();
        assert!(resp.usage.output_tokens <= 5, "{}", resp.text);
    }

    #[test]
    fn free_form_prompt_echoes() {
        let s = sim();
        let resp = s
            .complete(&CompletionRequest::new("gpt-4o", "What is Palimpzest?"))
            .unwrap();
        assert!(resp.text.contains("Palimpzest"));
    }

    #[test]
    fn pair_parsing_skips_urls_and_prose() {
        let pairs = label_value_pairs(
            "Name: X\nhttps://foo.bar/baz\nThis sentence mentions time 12:30 in prose but the label is way too long to count: nope\nB: y\n",
        );
        let labels: Vec<&str> = pairs.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["Name", "B"]);
    }

    #[test]
    fn block_grouping_on_repeated_label() {
        let pairs = label_value_pairs("A: 1\nB: 2\nA: 3\nB: 4\n");
        let blocks = group_into_blocks(&pairs);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].len(), 2);
        assert_eq!(blocks[1].len(), 2);
    }

    #[test]
    fn corrupt_value_changes_value() {
        for v in ["https://portal.gdc.cancer.gov/x", "TCGA-COADREAD", "ab"] {
            assert_ne!(corrupt_value(v), v);
        }
    }
}
