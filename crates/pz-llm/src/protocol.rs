//! Structured prompt protocol.
//!
//! Palimpzest's physical operators communicate with models through prompts.
//! So the simulated client can respond meaningfully *and* real clients could
//! be substituted later, the operators emit a small structured dialect with
//! an unambiguous grammar:
//!
//! ```text
//! #TASK filter
//! #PREDICATE The papers are about colorectal cancer
//! #INPUT
//! <free text...>
//! ```
//!
//! Tasks: `filter` (boolean judgement), `extract` (schema-directed field
//! extraction, one-to-one or one-to-many), `classify` (pick one label), and
//! `generate` (free-form instruction following). Responses are plain text:
//! `TRUE`/`FALSE` for filters, one JSON object per line for extractions, the
//! label for classification.
//!
//! This module owns both directions: building prompts (used by `pz-core`)
//! and parsing them (used by [`crate::sim`]), plus response parsing. Keeping
//! both sides in one place makes round-trip property tests possible.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A field requested from an `extract` task.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Machine name, e.g. `dataset_name`. No `|` or newlines allowed.
    pub name: String,
    /// Natural-language description, e.g. "The public URL of the dataset".
    pub description: String,
}

impl FieldSpec {
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            description: description.into(),
        }
    }
}

/// Output cardinality of an extraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cardinality {
    /// One output object per input record.
    OneToOne,
    /// Zero or more output objects per input record.
    OneToMany,
}

/// Reasoning effort requested from the model. `High` stands in for
/// self-critique / ensemble prompting: roughly double the token budget in
/// exchange for a lower error rate. It is one of the physical-plan knobs
/// Palimpzest's optimizer explores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effort {
    #[default]
    Standard,
    High,
}

/// Separator between the two sides of a `match` task's input.
pub const MATCH_SEPARATOR: &str = "\n#===RIGHT===#\n";

/// A parsed structured prompt.
#[derive(Clone, Debug, PartialEq)]
pub enum Task {
    Filter {
        predicate: String,
        input: String,
        effort: Effort,
    },
    Extract {
        fields: Vec<FieldSpec>,
        cardinality: Cardinality,
        input: String,
        effort: Effort,
    },
    Classify {
        labels: Vec<String>,
        input: String,
    },
    Generate {
        instruction: String,
        input: String,
    },
    /// Judge whether two records match under a natural-language criterion
    /// (semantic join).
    Match {
        criterion: String,
        left: String,
        right: String,
        effort: Effort,
    },
}

impl Task {
    /// The free-text payload of the task (the left side for `Match`).
    pub fn input(&self) -> &str {
        match self {
            Task::Filter { input, .. }
            | Task::Extract { input, .. }
            | Task::Classify { input, .. }
            | Task::Generate { input, .. } => input,
            Task::Match { left, .. } => left,
        }
    }
}

fn sanitize_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// Build a `filter` prompt at standard effort.
pub fn filter_prompt(predicate: &str, input: &str) -> String {
    filter_prompt_with_effort(predicate, input, Effort::Standard)
}

/// Build a `filter` prompt with an explicit effort level.
pub fn filter_prompt_with_effort(predicate: &str, input: &str, effort: Effort) -> String {
    format!(
        "#TASK filter\n#PREDICATE {}\n{}#INPUT\n{}",
        sanitize_line(predicate),
        effort_header(effort),
        input
    )
}

fn effort_header(effort: Effort) -> &'static str {
    match effort {
        Effort::Standard => "",
        Effort::High => "#EFFORT high\n",
    }
}

/// Build an `extract` prompt at standard effort.
pub fn extract_prompt(fields: &[FieldSpec], cardinality: Cardinality, input: &str) -> String {
    extract_prompt_with_effort(fields, cardinality, input, Effort::Standard)
}

/// Build an `extract` prompt with an explicit effort level.
pub fn extract_prompt_with_effort(
    fields: &[FieldSpec],
    cardinality: Cardinality,
    input: &str,
    effort: Effort,
) -> String {
    let mut s = String::from("#TASK extract\n");
    s.push_str(effort_header(effort));
    let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
    let _ = writeln!(s, "#FIELDS {}", names.join("|"));
    for f in fields {
        let _ = writeln!(
            s,
            "#DESC {}: {}",
            sanitize_line(&f.name),
            sanitize_line(&f.description)
        );
    }
    let card = match cardinality {
        Cardinality::OneToOne => "one",
        Cardinality::OneToMany => "many",
    };
    let _ = writeln!(s, "#CARDINALITY {card}");
    s.push_str("#INPUT\n");
    s.push_str(input);
    s
}

/// Build a `classify` prompt at standard effort.
pub fn classify_prompt(labels: &[String], input: &str) -> String {
    classify_prompt_with_effort(labels, input, Effort::Standard)
}

/// Build a `classify` prompt with an explicit effort level.
pub fn classify_prompt_with_effort(labels: &[String], input: &str, effort: Effort) -> String {
    format!(
        "#TASK classify\n#LABELS {}\n{}#INPUT\n{}",
        labels
            .iter()
            .map(|l| sanitize_line(l))
            .collect::<Vec<_>>()
            .join("|"),
        effort_header(effort),
        input
    )
}

/// Build a `match` prompt (semantic join pair judgement).
pub fn match_prompt(criterion: &str, left: &str, right: &str, effort: Effort) -> String {
    format!(
        "#TASK match\n#CRITERION {}\n{}#INPUT\n{}{}{}",
        sanitize_line(criterion),
        effort_header(effort),
        left,
        MATCH_SEPARATOR,
        right
    )
}

/// Build a `generate` prompt.
pub fn generate_prompt(instruction: &str, input: &str) -> String {
    format!(
        "#TASK generate\n#INSTRUCTION {}\n#INPUT\n{}",
        sanitize_line(instruction),
        input
    )
}

/// Parse a structured prompt. Returns `None` for free-form prompts that do
/// not follow the dialect (the simulator falls back to echo behaviour).
pub fn parse_prompt(prompt: &str) -> Option<Task> {
    let rest = prompt.strip_prefix("#TASK ")?;
    let (task_name, rest) = rest.split_once('\n')?;
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut lines = rest.lines();
    let mut input = String::new();
    let mut remainder_offset = 0usize;
    // Walk header lines until #INPUT; everything after is verbatim input.
    loop {
        let line_start = remainder_offset;
        let line = match lines.next() {
            Some(l) => l,
            None => break,
        };
        remainder_offset = line_start + line.len() + 1; // +1 for '\n'
        if line == "#INPUT" {
            if remainder_offset <= rest.len() {
                input = rest[remainder_offset..].to_string();
            }
            break;
        }
        if let Some(h) = line.strip_prefix('#') {
            if let Some((k, v)) = h.split_once(' ') {
                headers.push((k.to_string(), v.to_string()));
            } else {
                headers.push((h.to_string(), String::new()));
            }
        }
    }
    let header = |key: &str| -> Option<&str> {
        headers
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    let effort = match header("EFFORT") {
        Some("high") => Effort::High,
        _ => Effort::Standard,
    };
    match task_name.trim() {
        "filter" => Some(Task::Filter {
            predicate: header("PREDICATE")?.to_string(),
            input,
            effort,
        }),
        "extract" => {
            let names: Vec<String> = header("FIELDS")?
                .split('|')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let mut descs: BTreeMap<String, String> = BTreeMap::new();
            for (k, v) in &headers {
                if k == "DESC" {
                    if let Some((name, d)) = v.split_once(':') {
                        descs.insert(name.trim().to_string(), d.trim().to_string());
                    }
                }
            }
            let fields = names
                .into_iter()
                .map(|n| {
                    let d = descs.get(&n).cloned().unwrap_or_default();
                    FieldSpec {
                        name: n,
                        description: d,
                    }
                })
                .collect();
            let cardinality = match header("CARDINALITY") {
                Some("many") => Cardinality::OneToMany,
                _ => Cardinality::OneToOne,
            };
            Some(Task::Extract {
                fields,
                cardinality,
                input,
                effort,
            })
        }
        "classify" => Some(Task::Classify {
            labels: header("LABELS")?
                .split('|')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect(),
            input,
        }),
        "generate" => Some(Task::Generate {
            instruction: header("INSTRUCTION")?.to_string(),
            input,
        }),
        "match" => {
            let (left, right) = input.split_once(MATCH_SEPARATOR)?;
            Some(Task::Match {
                criterion: header("CRITERION")?.to_string(),
                left: left.to_string(),
                right: right.to_string(),
                effort,
            })
        }
        _ => None,
    }
}

/// Parse a boolean filter response ("TRUE" / "FALSE", case-insensitive,
/// tolerating surrounding prose the way real LLM responses require).
pub fn parse_bool_response(resp: &str) -> Option<bool> {
    let lower = resp.to_ascii_lowercase();
    let t = lower.contains("true");
    let f = lower.contains("false");
    match (t, f) {
        (true, false) => Some(true),
        (false, true) => Some(false),
        _ => None,
    }
}

/// Parse an extraction response: one JSON object per non-empty line, each
/// mapping field name to string-or-null.
pub fn parse_extraction_response(resp: &str) -> Vec<BTreeMap<String, Option<String>>> {
    resp.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<BTreeMap<String, Option<String>>>(l.trim()).ok())
        .collect()
}

/// Serialize extraction objects to the response wire format.
pub fn format_extraction_response(objs: &[BTreeMap<String, Option<String>>]) -> String {
    objs.iter()
        .map(|o| serde_json::to_string(o).expect("string maps always serialize"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn filter_round_trip() {
        let p = filter_prompt("about colorectal cancer", "Title: X\nBody text.");
        match parse_prompt(&p) {
            Some(Task::Filter {
                predicate, input, ..
            }) => {
                assert_eq!(predicate, "about colorectal cancer");
                assert_eq!(input, "Title: X\nBody text.");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn extract_round_trip() {
        let fields = vec![
            FieldSpec::new("name", "The dataset name"),
            FieldSpec::new("url", "The public URL"),
        ];
        let p = extract_prompt(&fields, Cardinality::OneToMany, "doc body");
        match parse_prompt(&p) {
            Some(Task::Extract {
                fields: f2,
                cardinality,
                input,
                ..
            }) => {
                assert_eq!(f2, fields);
                assert_eq!(cardinality, Cardinality::OneToMany);
                assert_eq!(input, "doc body");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn classify_round_trip() {
        let labels = vec!["science".to_string(), "legal".to_string()];
        let p = classify_prompt(&labels, "text");
        match parse_prompt(&p) {
            Some(Task::Classify { labels: l2, input }) => {
                assert_eq!(l2, labels);
                assert_eq!(input, "text");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn generate_round_trip() {
        let p = generate_prompt("summarize", "long text here");
        match parse_prompt(&p) {
            Some(Task::Generate { instruction, input }) => {
                assert_eq!(instruction, "summarize");
                assert_eq!(input, "long text here");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn match_round_trip() {
        let p = match_prompt(
            "the records refer to the same dataset",
            "TCGA-COADREAD",
            "TCGA COADREAD cohort",
            Effort::High,
        );
        match parse_prompt(&p) {
            Some(Task::Match {
                criterion,
                left,
                right,
                effort,
            }) => {
                assert_eq!(criterion, "the records refer to the same dataset");
                assert_eq!(left, "TCGA-COADREAD");
                assert_eq!(right, "TCGA COADREAD cohort");
                assert_eq!(effort, Effort::High);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn match_without_separator_is_unparseable() {
        assert_eq!(
            parse_prompt("#TASK match\n#CRITERION c\n#INPUT\nonly one side"),
            None
        );
    }

    #[test]
    fn free_form_is_none() {
        assert_eq!(parse_prompt("What is the capital of France?"), None);
        assert_eq!(parse_prompt("#TASK dance\n#INPUT\nx"), None);
    }

    #[test]
    fn predicate_newlines_sanitized() {
        let p = filter_prompt("line1\nline2", "body");
        match parse_prompt(&p).unwrap() {
            Task::Filter { predicate, .. } => assert_eq!(predicate, "line1 line2"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn bool_response_variants() {
        assert_eq!(parse_bool_response("TRUE"), Some(true));
        assert_eq!(parse_bool_response("false"), Some(false));
        assert_eq!(parse_bool_response("The answer is True."), Some(true));
        assert_eq!(parse_bool_response("maybe"), None);
        assert_eq!(parse_bool_response("true or false"), None);
    }

    #[test]
    fn effort_round_trips() {
        let p = filter_prompt_with_effort("pred", "body", Effort::High);
        match parse_prompt(&p).unwrap() {
            Task::Filter { effort, .. } => assert_eq!(effort, Effort::High),
            _ => unreachable!(),
        }
        let fields = vec![FieldSpec::new("a", "b")];
        let p = extract_prompt_with_effort(&fields, Cardinality::OneToOne, "x", Effort::High);
        match parse_prompt(&p).unwrap() {
            Task::Extract { effort, .. } => assert_eq!(effort, Effort::High),
            _ => unreachable!(),
        }
        // Standard prompts carry no effort header and parse as Standard.
        match parse_prompt(&filter_prompt("pred", "body")).unwrap() {
            Task::Filter { effort, .. } => assert_eq!(effort, Effort::Standard),
            _ => unreachable!(),
        }
    }

    #[test]
    fn extraction_response_round_trip() {
        let mut a = BTreeMap::new();
        a.insert("name".to_string(), Some("TCGA".to_string()));
        a.insert("url".to_string(), None);
        let objs = vec![a];
        let wire = format_extraction_response(&objs);
        assert_eq!(parse_extraction_response(&wire), objs);
    }

    #[test]
    fn extraction_response_skips_garbage_lines() {
        let out = parse_extraction_response("not json\n{\"a\": \"b\"}\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("a"), Some(&Some("b".to_string())));
    }

    #[test]
    fn empty_input_allowed() {
        let p = filter_prompt("pred", "");
        match parse_prompt(&p).unwrap() {
            Task::Filter { input, .. } => assert_eq!(input, ""),
            _ => unreachable!(),
        }
    }

    proptest! {
        #[test]
        fn filter_round_trip_prop(pred in "[a-zA-Z0-9 ]{1,40}", input in "(?s).{0,200}") {
            let p = filter_prompt(&pred, &input);
            let task = parse_prompt(&p).expect("parse");
            match task {
                Task::Filter { predicate, input: i2, .. } => {
                    prop_assert_eq!(predicate, pred);
                    prop_assert_eq!(i2, input);
                }
                _ => prop_assert!(false, "wrong task kind"),
            }
        }

        #[test]
        fn extract_round_trip_prop(
            names in proptest::collection::vec("[a-z_]{1,12}", 1..5),
            input in "(?s)[^#]{0,200}",
        ) {
            // Deduplicate names: duplicate field names collapse in descs.
            let mut names = names;
            names.sort();
            names.dedup();
            let fields: Vec<FieldSpec> = names.iter()
                .map(|n| FieldSpec::new(n.clone(), format!("desc of {n}")))
                .collect();
            let p = extract_prompt(&fields, Cardinality::OneToOne, &input);
            match parse_prompt(&p).expect("parse") {
                Task::Extract { fields: f2, input: i2, .. } => {
                    prop_assert_eq!(f2, fields);
                    prop_assert_eq!(i2, input);
                }
                _ => prop_assert!(false, "wrong task kind"),
            }
        }
    }
}
