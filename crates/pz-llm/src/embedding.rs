//! Deterministic text embeddings.
//!
//! Stand-in for hosted embedding models: a hashed bag-of-words projection
//! into a fixed-dimension space. Texts sharing vocabulary land close in
//! cosine distance — exactly the property the `Retrieve` operator and
//! embedding-based filters rely on — and the mapping is a pure function of
//! the text, so every experiment is reproducible. Because each vector
//! depends only on its own text, chunking a batch across provider requests
//! ([`crate::client::RetryPolicy::embed_batched`]) yields bit-identical
//! vectors to one monolithic request.

use crate::stable_hash;

/// Deterministic embedder with a configurable dimensionality.
#[derive(Clone, Debug)]
pub struct Embedder {
    dim: usize,
}

impl Default for Embedder {
    fn default() -> Self {
        Self { dim: 64 }
    }
}

impl Embedder {
    /// Create an embedder producing vectors of `dim` dimensions (min 4).
    pub fn new(dim: usize) -> Self {
        Self { dim: dim.max(4) }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed `text` into an L2-normalized vector.
    ///
    /// Each lowercased alphanumeric token is hashed into three coordinates
    /// with signed weights (a sparse random projection), weighted by a
    /// sublinear term frequency. The zero text embeds to the zero vector.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        for token in tokenize(text) {
            // Sublinear tf: repeated occurrences add with damping via the
            // natural accumulation then final normalization; per-token we
            // add a fixed contribution.
            for probe in 0..3u32 {
                let h = stable_hash(&[&token, &probe.to_string()]);
                let idx = (h % self.dim as u64) as usize;
                let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
                v[idx] += sign;
            }
        }
        l2_normalize(&mut v);
        v
    }
}

fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() > 1)
        .map(|t| t.to_ascii_lowercase())
}

fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity between two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let e = Embedder::default();
        assert_eq!(
            e.embed("colorectal cancer study"),
            e.embed("colorectal cancer study")
        );
    }

    #[test]
    fn normalized() {
        let e = Embedder::default();
        let v = e.embed("some meaningful text about genomes");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_is_zero_vector() {
        let e = Embedder::default();
        let v = e.embed("");
        assert!(v.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn shared_vocabulary_is_closer() {
        let e = Embedder::new(128);
        let a = e.embed("colorectal cancer tumor genomic mutation study");
        let b = e.embed("colorectal cancer tumor cells mutation analysis");
        let c = e.embed("three bedroom apartment with garden and garage");
        let sim_ab = cosine(&a, &b);
        let sim_ac = cosine(&a, &c);
        assert!(
            sim_ab > sim_ac + 0.2,
            "related texts should be closer: ab={sim_ab} ac={sim_ac}"
        );
    }

    #[test]
    fn self_similarity_is_one() {
        let e = Embedder::default();
        let v = e.embed("hello world");
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn dimension_respected() {
        assert_eq!(Embedder::new(32).embed("x y z").len(), 32);
        // Minimum clamp.
        assert_eq!(Embedder::new(1).dim(), 4);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn single_char_tokens_ignored() {
        let e = Embedder::default();
        assert!(e.embed("a b c d e").iter().all(|x| *x == 0.0));
    }
}
