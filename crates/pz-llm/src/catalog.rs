//! Model catalog.
//!
//! Palimpzest's optimizer chooses among physical operator implementations
//! that differ in which model they call. The catalog carries the per-model
//! characteristics the optimizer's cost model needs: dollar price per token,
//! latency, context window, and a scalar *quality factor* that the simulated
//! client turns into measurable output quality (see `sim`).
//!
//! Prices and latencies mirror public mid-2024 price sheets so the E1
//! reproduction lands in the paper's reported ballpark (≈ $0.35 / ≈ 240 s
//! for the 11-paper scientific-discovery workload under `MaxQuality`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier for a model in the catalog (e.g. `"gpt-4o"`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelId(pub String);

impl ModelId {
    pub fn new(id: impl Into<String>) -> Self {
        Self(id.into())
    }
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ModelId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// What a model can be used for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Chat / completion model: filters, conversions, agents.
    Chat,
    /// Embedding model: vector search, embedding-based filters.
    Embedding,
}

/// Static characteristics of one model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelCard {
    pub id: ModelId,
    pub kind: ModelKind,
    /// USD per 1M input tokens.
    pub usd_per_1m_input: f64,
    /// USD per 1M output tokens.
    pub usd_per_1m_output: f64,
    /// Fixed per-request latency in seconds (network + queueing + prefill
    /// floor).
    pub latency_base_secs: f64,
    /// Seconds per *output* token (decode speed).
    pub secs_per_output_token: f64,
    /// Seconds per 1K *input* tokens (prefill speed).
    pub secs_per_1k_input_tokens: f64,
    /// Maximum context window in tokens.
    pub context_window: usize,
    /// Quality factor in (0, 1]: the probability the simulated model gets an
    /// atomic judgement / field extraction right. Drives the optimizer's
    /// quality dimension.
    pub quality: f64,
    /// Provider-side rate limit: the maximum number of requests the
    /// provider services concurrently for this model. Caps the effective
    /// intra-operator worker-pool size in both the executor's time
    /// attribution and the optimizer's parallel time model. `0` means
    /// "no published limit" (treated as unbounded).
    #[serde(default)]
    pub max_concurrency: usize,
}

impl ModelCard {
    /// Dollar cost of a request with the given token counts.
    pub fn cost_usd(&self, input_tokens: usize, output_tokens: usize) -> f64 {
        input_tokens as f64 * self.usd_per_1m_input / 1e6
            + output_tokens as f64 * self.usd_per_1m_output / 1e6
    }

    /// Modelled latency in seconds of a request with the given token counts.
    pub fn latency_secs(&self, input_tokens: usize, output_tokens: usize) -> f64 {
        self.latency_base_secs
            + input_tokens as f64 / 1000.0 * self.secs_per_1k_input_tokens
            + output_tokens as f64 * self.secs_per_output_token
    }

    /// Effective concurrency cap for worker pools: `max_concurrency`, with
    /// `0` (no published limit) mapped to unbounded.
    pub fn concurrency_cap(&self) -> usize {
        if self.max_concurrency == 0 {
            usize::MAX
        } else {
            self.max_concurrency
        }
    }
}

/// A set of model cards with lookup by id.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    models: Vec<ModelCard>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in catalog used throughout the reproduction.
    ///
    /// Quality factors are calibrated so that the model ranking matches the
    /// public benchmark ordering the Palimpzest paper relies on:
    /// gpt-4o > llama-3-70b > gpt-4o-mini > mixtral > gpt-3.5 > llama-3-8b.
    pub fn builtin() -> Self {
        let mut c = Self::new();
        c.insert(ModelCard {
            id: "gpt-4o".into(),
            kind: ModelKind::Chat,
            usd_per_1m_input: 2.50,
            usd_per_1m_output: 10.00,
            latency_base_secs: 1.20,
            secs_per_output_token: 0.015,
            secs_per_1k_input_tokens: 0.90,
            context_window: 128_000,
            quality: 0.96,
            max_concurrency: 8,
        });
        c.insert(ModelCard {
            id: "gpt-4o-mini".into(),
            kind: ModelKind::Chat,
            usd_per_1m_input: 0.15,
            usd_per_1m_output: 0.60,
            latency_base_secs: 0.80,
            secs_per_output_token: 0.008,
            secs_per_1k_input_tokens: 0.20,
            context_window: 128_000,
            quality: 0.88,
            max_concurrency: 16,
        });
        c.insert(ModelCard {
            id: "gpt-3.5-turbo".into(),
            kind: ModelKind::Chat,
            usd_per_1m_input: 0.50,
            usd_per_1m_output: 1.50,
            latency_base_secs: 0.70,
            secs_per_output_token: 0.007,
            secs_per_1k_input_tokens: 0.18,
            context_window: 16_000,
            quality: 0.80,
            max_concurrency: 16,
        });
        c.insert(ModelCard {
            id: "llama-3-70b".into(),
            kind: ModelKind::Chat,
            usd_per_1m_input: 0.90,
            usd_per_1m_output: 0.90,
            latency_base_secs: 0.90,
            secs_per_output_token: 0.016,
            secs_per_1k_input_tokens: 0.40,
            context_window: 8_000,
            quality: 0.92,
            max_concurrency: 8,
        });
        c.insert(ModelCard {
            id: "llama-3-8b".into(),
            kind: ModelKind::Chat,
            usd_per_1m_input: 0.10,
            usd_per_1m_output: 0.10,
            latency_base_secs: 0.50,
            secs_per_output_token: 0.004,
            secs_per_1k_input_tokens: 0.08,
            context_window: 8_000,
            quality: 0.72,
            max_concurrency: 16,
        });
        c.insert(ModelCard {
            id: "mixtral-8x7b".into(),
            kind: ModelKind::Chat,
            usd_per_1m_input: 0.24,
            usd_per_1m_output: 0.24,
            latency_base_secs: 0.60,
            secs_per_output_token: 0.006,
            secs_per_1k_input_tokens: 0.12,
            context_window: 32_000,
            quality: 0.78,
            max_concurrency: 8,
        });
        c.insert(ModelCard {
            id: "text-embedding-3-small".into(),
            kind: ModelKind::Embedding,
            usd_per_1m_input: 0.02,
            usd_per_1m_output: 0.0,
            latency_base_secs: 0.05,
            secs_per_output_token: 0.0,
            secs_per_1k_input_tokens: 0.01,
            context_window: 8_192,
            quality: 0.85,
            max_concurrency: 32,
        });
        c
    }

    /// Add or replace a card (keyed by id).
    pub fn insert(&mut self, card: ModelCard) {
        if let Some(existing) = self.models.iter_mut().find(|m| m.id == card.id) {
            *existing = card;
        } else {
            self.models.push(card);
        }
    }

    /// Look up a card by id.
    pub fn get(&self, id: &ModelId) -> Option<&ModelCard> {
        self.models.iter().find(|m| &m.id == id)
    }

    /// All cards of a given kind.
    pub fn of_kind(&self, kind: ModelKind) -> impl Iterator<Item = &ModelCard> {
        self.models.iter().filter(move |m| m.kind == kind)
    }

    /// All chat models, sorted by descending quality. The first entry is the
    /// "champion" model sentinel calibration compares against.
    pub fn chat_models_by_quality(&self) -> Vec<&ModelCard> {
        let mut v: Vec<&ModelCard> = self.of_kind(ModelKind::Chat).collect();
        v.sort_by(|a, b| b.quality.total_cmp(&a.quality));
        v
    }

    pub fn len(&self) -> usize {
        self.models.len()
    }

    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &ModelCard> {
        self.models.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_chat_and_embedding() {
        let c = Catalog::builtin();
        assert!(c.of_kind(ModelKind::Chat).count() >= 5);
        assert!(c.of_kind(ModelKind::Embedding).count() >= 1);
    }

    #[test]
    fn every_builtin_publishes_a_rate_limit() {
        let c = Catalog::builtin();
        for card in c.iter() {
            assert!(
                card.max_concurrency >= 1,
                "{} has no published rate limit",
                card.id
            );
            assert_eq!(card.concurrency_cap(), card.max_concurrency);
        }
        // `0` deserializes (serde default) as "no published limit".
        let card = ModelCard {
            max_concurrency: 0,
            ..c.get(&"gpt-4o".into()).unwrap().clone()
        };
        assert_eq!(card.concurrency_cap(), usize::MAX);
    }

    #[test]
    fn lookup_by_id() {
        let c = Catalog::builtin();
        assert!(c.get(&"gpt-4o".into()).is_some());
        assert!(c.get(&"not-a-model".into()).is_none());
    }

    #[test]
    fn insert_replaces_by_id() {
        let mut c = Catalog::builtin();
        let n = c.len();
        let mut card = c.get(&"gpt-4o".into()).unwrap().clone();
        card.quality = 0.5;
        c.insert(card);
        assert_eq!(c.len(), n);
        assert_eq!(c.get(&"gpt-4o".into()).unwrap().quality, 0.5);
    }

    #[test]
    fn champion_is_highest_quality() {
        let c = Catalog::builtin();
        let ranked = c.chat_models_by_quality();
        assert_eq!(ranked[0].id.as_str(), "gpt-4o");
        for w in ranked.windows(2) {
            assert!(w[0].quality >= w[1].quality);
        }
    }

    #[test]
    fn cost_model_scales_linearly() {
        let c = Catalog::builtin();
        let m = c.get(&"gpt-4o".into()).unwrap();
        let one = m.cost_usd(1000, 100);
        let two = m.cost_usd(2000, 200);
        assert!((two - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn premium_model_costs_more() {
        let c = Catalog::builtin();
        let big = c.get(&"gpt-4o".into()).unwrap().cost_usd(10_000, 500);
        let small = c.get(&"gpt-4o-mini".into()).unwrap().cost_usd(10_000, 500);
        assert!(big > 10.0 * small);
    }

    #[test]
    fn latency_includes_base() {
        let c = Catalog::builtin();
        let m = c.get(&"gpt-4o".into()).unwrap();
        assert!(m.latency_secs(0, 0) >= m.latency_base_secs);
        assert!(m.latency_secs(1000, 100) > m.latency_secs(1000, 0));
    }
}
