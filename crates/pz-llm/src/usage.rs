//! Token and dollar accounting.
//!
//! Figure 5 of the paper shows per-pipeline cost and runtime summaries; the
//! ledger here is the substrate that makes those numbers available: every
//! simulated model call records its token usage and cost, tagged by model.

use crate::catalog::ModelId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Token counts for a single request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Usage {
    pub input_tokens: usize,
    pub output_tokens: usize,
}

impl Usage {
    pub fn new(input_tokens: usize, output_tokens: usize) -> Self {
        Self {
            input_tokens,
            output_tokens,
        }
    }

    pub fn total_tokens(&self) -> usize {
        self.input_tokens + self.output_tokens
    }
}

impl std::ops::Add for Usage {
    type Output = Usage;
    fn add(self, rhs: Usage) -> Usage {
        Usage {
            input_tokens: self.input_tokens + rhs.input_tokens,
            output_tokens: self.output_tokens + rhs.output_tokens,
        }
    }
}

impl std::ops::AddAssign for Usage {
    fn add_assign(&mut self, rhs: Usage) {
        self.input_tokens += rhs.input_tokens;
        self.output_tokens += rhs.output_tokens;
    }
}

/// Per-model accumulated usage.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelUsage {
    pub requests: usize,
    pub usage: Usage,
    pub cost_usd: f64,
    pub latency_secs: f64,
    /// Lookups served from a response cache (no request was issued).
    pub cache_hits: usize,
    /// Lookups that missed the cache and became real requests.
    pub cache_misses: usize,
}

impl ModelUsage {
    /// Fraction of cache lookups served from cache; 0.0 when uncached.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Thread-safe ledger of all model usage. Clones share state.
#[derive(Clone, Debug, Default)]
pub struct UsageLedger {
    inner: Arc<Mutex<BTreeMap<ModelId, ModelUsage>>>,
}

impl UsageLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request against `model`.
    pub fn record(&self, model: &ModelId, usage: Usage, cost_usd: f64, latency_secs: f64) {
        let mut inner = self.inner.lock();
        let entry = inner.entry(model.clone()).or_default();
        entry.requests += 1;
        entry.usage += usage;
        entry.cost_usd += cost_usd;
        entry.latency_secs += latency_secs;
    }

    /// Record `n` cache hits against `model` (lookups served without a
    /// request).
    pub fn record_cache_hits(&self, model: &ModelId, n: usize) {
        if n > 0 {
            self.inner
                .lock()
                .entry(model.clone())
                .or_default()
                .cache_hits += n;
        }
    }

    /// Record `n` cache misses against `model` (lookups that became real
    /// requests).
    pub fn record_cache_misses(&self, model: &ModelId, n: usize) {
        if n > 0 {
            self.inner
                .lock()
                .entry(model.clone())
                .or_default()
                .cache_misses += n;
        }
    }

    /// Total cache hits across all models.
    pub fn total_cache_hits(&self) -> usize {
        self.inner.lock().values().map(|m| m.cache_hits).sum()
    }

    /// Total cache misses across all models.
    pub fn total_cache_misses(&self) -> usize {
        self.inner.lock().values().map(|m| m.cache_misses).sum()
    }

    /// Total dollar cost across all models.
    pub fn total_cost_usd(&self) -> f64 {
        self.inner.lock().values().map(|m| m.cost_usd).sum()
    }

    /// Total request count across all models.
    pub fn total_requests(&self) -> usize {
        self.inner.lock().values().map(|m| m.requests).sum()
    }

    /// Total token usage across all models.
    pub fn total_usage(&self) -> Usage {
        self.inner
            .lock()
            .values()
            .fold(Usage::default(), |acc, m| acc + m.usage)
    }

    /// Sum of modelled latencies (i.e. total model-time; an upper bound on
    /// pipeline runtime when calls are sequential).
    pub fn total_latency_secs(&self) -> f64 {
        self.inner.lock().values().map(|m| m.latency_secs).sum()
    }

    /// Snapshot of the per-model breakdown (sorted by model id).
    pub fn by_model(&self) -> Vec<(ModelId, ModelUsage)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Reset all counters. Used between experiments.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let l = UsageLedger::new();
        let m: ModelId = "gpt-4o".into();
        l.record(&m, Usage::new(100, 10), 0.001, 0.5);
        l.record(&m, Usage::new(200, 20), 0.002, 0.7);
        let by = l.by_model();
        assert_eq!(by.len(), 1);
        assert_eq!(by[0].1.requests, 2);
        assert_eq!(by[0].1.usage, Usage::new(300, 30));
        assert!((by[0].1.cost_usd - 0.003).abs() < 1e-12);
        assert!((l.total_latency_secs() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn totals_span_models() {
        let l = UsageLedger::new();
        l.record(&"a".into(), Usage::new(1, 2), 0.5, 0.1);
        l.record(&"b".into(), Usage::new(3, 4), 0.25, 0.2);
        assert_eq!(l.total_usage(), Usage::new(4, 6));
        assert!((l.total_cost_usd() - 0.75).abs() < 1e-12);
        assert_eq!(l.total_requests(), 2);
    }

    #[test]
    fn clones_share_state() {
        let l = UsageLedger::new();
        let l2 = l.clone();
        l.record(&"a".into(), Usage::new(5, 5), 0.1, 0.0);
        assert_eq!(l2.total_requests(), 1);
    }

    #[test]
    fn reset_clears() {
        let l = UsageLedger::new();
        l.record(&"a".into(), Usage::new(5, 5), 0.1, 0.0);
        l.reset();
        assert_eq!(l.total_requests(), 0);
        assert_eq!(l.total_cost_usd(), 0.0);
    }

    #[test]
    fn cache_counts_per_model() {
        let l = UsageLedger::new();
        let m: ModelId = "gpt-4o".into();
        l.record_cache_misses(&m, 2);
        l.record_cache_hits(&m, 6);
        l.record_cache_hits(&"gpt-4o-mini".into(), 1);
        let by = l.by_model();
        assert_eq!(by[0].1.cache_hits, 6);
        assert_eq!(by[0].1.cache_misses, 2);
        assert!((by[0].1.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(l.total_cache_hits(), 7);
        assert_eq!(l.total_cache_misses(), 2);
        // Cache bookkeeping never counts as a request.
        assert_eq!(l.total_requests(), 0);
        // Zero-count records are no-ops (no entry churn).
        l.record_cache_hits(&"untouched".into(), 0);
        assert_eq!(l.by_model().len(), 2);
    }

    #[test]
    fn usage_add() {
        assert_eq!(Usage::new(1, 2) + Usage::new(10, 20), Usage::new(11, 22));
        assert_eq!(Usage::new(3, 4).total_tokens(), 7);
    }

    #[test]
    fn concurrent_records() {
        let l = UsageLedger::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = l.clone();
                s.spawn(move || {
                    for _ in 0..250 {
                        l.record(&"m".into(), Usage::new(1, 1), 0.001, 0.01);
                    }
                });
            }
        });
        assert_eq!(l.total_requests(), 1000);
        assert_eq!(l.total_usage(), Usage::new(1000, 1000));
    }
}
