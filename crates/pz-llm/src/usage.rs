//! Token and dollar accounting.
//!
//! Figure 5 of the paper shows per-pipeline cost and runtime summaries; the
//! ledger here is the substrate that makes those numbers available: every
//! simulated model call records its token usage and cost, tagged by model.

use crate::catalog::ModelId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Token counts for a single request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Usage {
    pub input_tokens: usize,
    pub output_tokens: usize,
}

impl Usage {
    pub fn new(input_tokens: usize, output_tokens: usize) -> Self {
        Self {
            input_tokens,
            output_tokens,
        }
    }

    pub fn total_tokens(&self) -> usize {
        self.input_tokens + self.output_tokens
    }
}

impl std::ops::Add for Usage {
    type Output = Usage;
    fn add(self, rhs: Usage) -> Usage {
        Usage {
            input_tokens: self.input_tokens + rhs.input_tokens,
            output_tokens: self.output_tokens + rhs.output_tokens,
        }
    }
}

impl std::ops::AddAssign for Usage {
    fn add_assign(&mut self, rhs: Usage) {
        self.input_tokens += rhs.input_tokens;
        self.output_tokens += rhs.output_tokens;
    }
}

/// Per-model accumulated usage.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelUsage {
    pub requests: usize,
    pub usage: Usage,
    pub cost_usd: f64,
    pub latency_secs: f64,
    /// Lookups served from a response cache (no request was issued).
    pub cache_hits: usize,
    /// Lookups that missed the cache and became real requests.
    pub cache_misses: usize,
}

impl ModelUsage {
    /// Fraction of cache lookups served from cache; 0.0 when uncached.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Hard spending limits for a ledger — typically one tenant's budget in a
/// multi-tenant serving deployment. All limits are optional; the default is
/// unlimited, which keeps every existing single-run ledger byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Quota {
    /// Maximum total dollar spend across all models.
    pub max_cost_usd: Option<f64>,
    /// Maximum request count across all models.
    pub max_requests: Option<usize>,
    /// Maximum total tokens (input + output) across all models.
    pub max_tokens: Option<usize>,
}

impl Quota {
    /// No limits (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Dollar budget only.
    pub fn cost_limit(max_cost_usd: f64) -> Self {
        Self {
            max_cost_usd: Some(max_cost_usd),
            ..Self::default()
        }
    }

    /// Request-count budget only.
    pub fn request_limit(max_requests: usize) -> Self {
        Self {
            max_requests: Some(max_requests),
            ..Self::default()
        }
    }

    /// Whether any dimension is actually bounded.
    pub fn is_limited(&self) -> bool {
        self.max_cost_usd.is_some() || self.max_requests.is_some() || self.max_tokens.is_some()
    }
}

/// A refused [`UsageLedger::try_charge`]: admitting the call would cross
/// the ledger's quota. Charging is all-or-nothing — a refused call bills
/// nothing (no request, no tokens, no dollars).
#[derive(Clone, Debug, PartialEq)]
pub struct QuotaExceeded {
    /// Which dimension ran out, human-readable (e.g. `cost $0.0500 +
    /// $0.0121 > budget $0.0600`).
    pub reason: String,
    /// Dollars left under the cost cap at refusal time, if one is set.
    pub remaining_cost_usd: Option<f64>,
    /// Requests left under the request cap at refusal time, if one is set.
    pub remaining_requests: Option<usize>,
}

impl std::fmt::Display for QuotaExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

#[derive(Debug, Default)]
struct LedgerInner {
    models: BTreeMap<ModelId, ModelUsage>,
    quota: Quota,
}

impl LedgerInner {
    fn charge(&mut self, model: &ModelId, usage: Usage, cost_usd: f64, latency_secs: f64) {
        let entry = self.models.entry(model.clone()).or_default();
        entry.requests += 1;
        entry.usage += usage;
        entry.cost_usd += cost_usd;
        entry.latency_secs += latency_secs;
    }
}

/// Thread-safe ledger of all model usage. Clones share state.
#[derive(Clone, Debug, Default)]
pub struct UsageLedger {
    inner: Arc<Mutex<LedgerInner>>,
}

impl UsageLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ledger with a hard quota installed from the start.
    pub fn with_quota(quota: Quota) -> Self {
        let ledger = Self::new();
        ledger.set_quota(quota);
        ledger
    }

    /// Install (or replace) the quota. Applies to subsequent
    /// [`Self::try_charge`] calls; already-recorded usage is kept.
    pub fn set_quota(&self, quota: Quota) {
        self.inner.lock().quota = quota;
    }

    /// The currently installed quota.
    pub fn quota(&self) -> Quota {
        self.inner.lock().quota
    }

    /// Record one request against `model`.
    pub fn record(&self, model: &ModelId, usage: Usage, cost_usd: f64, latency_secs: f64) {
        self.inner
            .lock()
            .charge(model, usage, cost_usd, latency_secs);
    }

    /// Atomically check the quota and bill one request against `model`.
    ///
    /// The check and the charge happen under one lock, so two sessions
    /// racing the last unit of budget cannot both slip past it: exactly one
    /// wins, the other is refused and bills *nothing*. With no quota
    /// installed this is identical to [`Self::record`].
    pub fn try_charge(
        &self,
        model: &ModelId,
        usage: Usage,
        cost_usd: f64,
        latency_secs: f64,
    ) -> Result<(), QuotaExceeded> {
        let mut inner = self.inner.lock();
        let quota = inner.quota;
        if quota.is_limited() {
            let spent_cost: f64 = inner.models.values().map(|m| m.cost_usd).sum();
            let spent_requests: usize = inner.models.values().map(|m| m.requests).sum();
            let spent_tokens: usize = inner.models.values().map(|m| m.usage.total_tokens()).sum();
            let refuse = |reason: String| QuotaExceeded {
                reason,
                remaining_cost_usd: quota.max_cost_usd.map(|c| (c - spent_cost).max(0.0)),
                remaining_requests: quota.max_requests.map(|r| r.saturating_sub(spent_requests)),
            };
            if let Some(cap) = quota.max_cost_usd {
                if spent_cost + cost_usd > cap + 1e-12 {
                    return Err(refuse(format!(
                        "cost ${spent_cost:.4} + ${cost_usd:.4} > budget ${cap:.4}"
                    )));
                }
            }
            if let Some(cap) = quota.max_requests {
                if spent_requests + 1 > cap {
                    return Err(refuse(format!(
                        "requests {spent_requests} + 1 > budget {cap}"
                    )));
                }
            }
            if let Some(cap) = quota.max_tokens {
                if spent_tokens + usage.total_tokens() > cap {
                    return Err(refuse(format!(
                        "tokens {spent_tokens} + {} > budget {cap}",
                        usage.total_tokens()
                    )));
                }
            }
        }
        inner.charge(model, usage, cost_usd, latency_secs);
        Ok(())
    }

    /// Record `n` cache hits against `model` (lookups served without a
    /// request).
    pub fn record_cache_hits(&self, model: &ModelId, n: usize) {
        if n > 0 {
            self.inner
                .lock()
                .models
                .entry(model.clone())
                .or_default()
                .cache_hits += n;
        }
    }

    /// Record `n` cache misses against `model` (lookups that became real
    /// requests).
    pub fn record_cache_misses(&self, model: &ModelId, n: usize) {
        if n > 0 {
            self.inner
                .lock()
                .models
                .entry(model.clone())
                .or_default()
                .cache_misses += n;
        }
    }

    /// Total cache hits across all models.
    pub fn total_cache_hits(&self) -> usize {
        self.inner
            .lock()
            .models
            .values()
            .map(|m| m.cache_hits)
            .sum()
    }

    /// Total cache misses across all models.
    pub fn total_cache_misses(&self) -> usize {
        self.inner
            .lock()
            .models
            .values()
            .map(|m| m.cache_misses)
            .sum()
    }

    /// Total dollar cost across all models.
    pub fn total_cost_usd(&self) -> f64 {
        self.inner.lock().models.values().map(|m| m.cost_usd).sum()
    }

    /// Total request count across all models.
    pub fn total_requests(&self) -> usize {
        self.inner.lock().models.values().map(|m| m.requests).sum()
    }

    /// Total token usage across all models.
    pub fn total_usage(&self) -> Usage {
        self.inner
            .lock()
            .models
            .values()
            .fold(Usage::default(), |acc, m| acc + m.usage)
    }

    /// Sum of modelled latencies (i.e. total model-time; an upper bound on
    /// pipeline runtime when calls are sequential).
    pub fn total_latency_secs(&self) -> f64 {
        self.inner
            .lock()
            .models
            .values()
            .map(|m| m.latency_secs)
            .sum()
    }

    /// Snapshot of the per-model breakdown (sorted by model id).
    pub fn by_model(&self) -> Vec<(ModelId, ModelUsage)> {
        self.inner
            .lock()
            .models
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Reset all counters. The quota is kept: between-experiment resets
    /// must not silently lift a tenant's budget.
    pub fn reset(&self) {
        self.inner.lock().models.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let l = UsageLedger::new();
        let m: ModelId = "gpt-4o".into();
        l.record(&m, Usage::new(100, 10), 0.001, 0.5);
        l.record(&m, Usage::new(200, 20), 0.002, 0.7);
        let by = l.by_model();
        assert_eq!(by.len(), 1);
        assert_eq!(by[0].1.requests, 2);
        assert_eq!(by[0].1.usage, Usage::new(300, 30));
        assert!((by[0].1.cost_usd - 0.003).abs() < 1e-12);
        assert!((l.total_latency_secs() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn totals_span_models() {
        let l = UsageLedger::new();
        l.record(&"a".into(), Usage::new(1, 2), 0.5, 0.1);
        l.record(&"b".into(), Usage::new(3, 4), 0.25, 0.2);
        assert_eq!(l.total_usage(), Usage::new(4, 6));
        assert!((l.total_cost_usd() - 0.75).abs() < 1e-12);
        assert_eq!(l.total_requests(), 2);
    }

    #[test]
    fn clones_share_state() {
        let l = UsageLedger::new();
        let l2 = l.clone();
        l.record(&"a".into(), Usage::new(5, 5), 0.1, 0.0);
        assert_eq!(l2.total_requests(), 1);
    }

    #[test]
    fn reset_clears() {
        let l = UsageLedger::new();
        l.record(&"a".into(), Usage::new(5, 5), 0.1, 0.0);
        l.reset();
        assert_eq!(l.total_requests(), 0);
        assert_eq!(l.total_cost_usd(), 0.0);
    }

    #[test]
    fn cache_counts_per_model() {
        let l = UsageLedger::new();
        let m: ModelId = "gpt-4o".into();
        l.record_cache_misses(&m, 2);
        l.record_cache_hits(&m, 6);
        l.record_cache_hits(&"gpt-4o-mini".into(), 1);
        let by = l.by_model();
        assert_eq!(by[0].1.cache_hits, 6);
        assert_eq!(by[0].1.cache_misses, 2);
        assert!((by[0].1.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(l.total_cache_hits(), 7);
        assert_eq!(l.total_cache_misses(), 2);
        // Cache bookkeeping never counts as a request.
        assert_eq!(l.total_requests(), 0);
        // Zero-count records are no-ops (no entry churn).
        l.record_cache_hits(&"untouched".into(), 0);
        assert_eq!(l.by_model().len(), 2);
    }

    #[test]
    fn usage_add() {
        assert_eq!(Usage::new(1, 2) + Usage::new(10, 20), Usage::new(11, 22));
        assert_eq!(Usage::new(3, 4).total_tokens(), 7);
    }

    #[test]
    fn try_charge_without_quota_is_record() {
        let l = UsageLedger::new();
        assert!(l
            .try_charge(&"m".into(), Usage::new(1, 1), 0.1, 0.2)
            .is_ok());
        assert_eq!(l.total_requests(), 1);
        assert!(!l.quota().is_limited());
    }

    #[test]
    fn quota_refusal_bills_nothing() {
        let l = UsageLedger::with_quota(Quota::cost_limit(0.05));
        l.try_charge(&"m".into(), Usage::new(10, 5), 0.04, 1.0)
            .unwrap();
        let err = l
            .try_charge(&"m".into(), Usage::new(10, 5), 0.04, 1.0)
            .unwrap_err();
        assert!(err.reason.contains("budget"), "{}", err.reason);
        assert!((err.remaining_cost_usd.unwrap() - 0.01).abs() < 1e-9);
        // The refused call left no trace: one request, $0.04, 15 tokens.
        assert_eq!(l.total_requests(), 1);
        assert!((l.total_cost_usd() - 0.04).abs() < 1e-12);
        assert_eq!(l.total_usage().total_tokens(), 15);
        // A smaller call that fits still goes through.
        assert!(l
            .try_charge(&"m".into(), Usage::new(1, 0), 0.005, 0.1)
            .is_ok());
    }

    #[test]
    fn quota_dimensions_requests_and_tokens() {
        let l = UsageLedger::with_quota(Quota::request_limit(1));
        assert!(l
            .try_charge(&"m".into(), Usage::new(1, 1), 0.0, 0.0)
            .is_ok());
        let err = l
            .try_charge(&"m".into(), Usage::new(1, 1), 0.0, 0.0)
            .unwrap_err();
        assert_eq!(err.remaining_requests, Some(0));

        let l = UsageLedger::with_quota(Quota {
            max_tokens: Some(10),
            ..Default::default()
        });
        assert!(l
            .try_charge(&"m".into(), Usage::new(6, 2), 0.0, 0.0)
            .is_ok());
        assert!(l
            .try_charge(&"m".into(), Usage::new(2, 1), 0.0, 0.0)
            .is_err());
    }

    #[test]
    fn reset_keeps_quota() {
        let l = UsageLedger::with_quota(Quota::request_limit(1));
        l.try_charge(&"m".into(), Usage::new(1, 1), 0.0, 0.0)
            .unwrap();
        l.reset();
        assert_eq!(l.quota(), Quota::request_limit(1));
        // Budget is re-usable after a reset (counters cleared)...
        l.try_charge(&"m".into(), Usage::new(1, 1), 0.0, 0.0)
            .unwrap();
        // ...but still enforced.
        assert!(l
            .try_charge(&"m".into(), Usage::new(1, 1), 0.0, 0.0)
            .is_err());
    }

    /// The satellite regression: two threads race a 1-call budget through
    /// the atomic check-and-bill; exactly one may win. A check-then-record
    /// API would let both observe "0 spent" and both bill.
    #[test]
    fn try_charge_race_exactly_one_wins() {
        for _ in 0..64 {
            let l = UsageLedger::with_quota(Quota::request_limit(1));
            let barrier = std::sync::Barrier::new(2);
            let wins: usize = std::thread::scope(|s| {
                let mut handles = Vec::new();
                for _ in 0..2 {
                    let l = l.clone();
                    let barrier = &barrier;
                    handles.push(s.spawn(move || {
                        barrier.wait();
                        l.try_charge(&"m".into(), Usage::new(1, 1), 0.01, 0.1)
                            .is_ok() as usize
                    }));
                }
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(wins, 1, "exactly one racer may pass the 1-call budget");
            assert_eq!(l.total_requests(), 1);
            assert!((l.total_cost_usd() - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn concurrent_records() {
        let l = UsageLedger::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = l.clone();
                s.spawn(move || {
                    for _ in 0..250 {
                        l.record(&"m".into(), Usage::new(1, 1), 0.001, 0.01);
                    }
                });
            }
        });
        assert_eq!(l.total_requests(), 1000);
        assert_eq!(l.total_usage(), Usage::new(1000, 1000));
    }
}
