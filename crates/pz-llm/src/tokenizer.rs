//! Deterministic token counting.
//!
//! Real systems use BPE tokenizers; for cost and latency accounting the
//! reproduction only needs a stable, monotone approximation. We use the
//! common heuristic that one token covers ~4 characters of English text,
//! refined to count word and punctuation boundaries so that token counts
//! respond to structure the way BPE counts do.

/// Count tokens in `text`.
///
/// The rule: every maximal alphanumeric run contributes
/// `ceil(len / 4)` tokens (long words split into multiple subword tokens),
/// every non-space punctuation character contributes one token, and
/// whitespace is free. The empty string is zero tokens.
///
/// Properties relied on elsewhere (and checked by property tests):
/// * `count_tokens("") == 0`
/// * monotone under concatenation: `count(a + b) >= max(count(a), count(b))`
/// * subadditive-ish: `count(a + b) <= count(a) + count(b) + 1`
pub fn count_tokens(text: &str) -> usize {
    let mut tokens = 0usize;
    let mut run_len = 0usize;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            run_len += 1;
        } else {
            if run_len > 0 {
                tokens += run_len.div_ceil(4);
                run_len = 0;
            }
            if !ch.is_whitespace() {
                tokens += 1;
            }
        }
    }
    if run_len > 0 {
        tokens += run_len.div_ceil(4);
    }
    tokens
}

/// Estimate the number of tokens a completion of `text` would produce.
/// Identical to [`count_tokens`] today; a distinct entry point so output
/// accounting can diverge from input accounting later without call-site
/// churn.
#[inline]
pub fn count_output_tokens(text: &str) -> usize {
    count_tokens(text)
}

/// Truncate `text` to at most `max_tokens`, keeping the head and the tail
/// (documents often carry key content — titles up front, data-availability
/// sections at the end — so head+tail beats plain prefix truncation).
/// Returns the input unchanged when it already fits.
pub fn truncate_to_tokens(text: &str, max_tokens: usize) -> String {
    if count_tokens(text) <= max_tokens {
        return text.to_string();
    }
    let words: Vec<&str> = text.split_inclusive(char::is_whitespace).collect();
    let half_budget = max_tokens.saturating_sub(4) / 2;
    let mut head = String::new();
    let mut used = 0usize;
    let mut head_end = 0usize;
    for (i, w) in words.iter().enumerate() {
        let t = count_tokens(w);
        if used + t > half_budget {
            head_end = i;
            break;
        }
        head.push_str(w);
        used += t;
        head_end = i + 1;
    }
    let mut tail = String::new();
    used = 0;
    let mut tail_start = words.len();
    for (i, w) in words.iter().enumerate().rev() {
        if i < head_end {
            break;
        }
        let t = count_tokens(w);
        if used + t > half_budget {
            break;
        }
        tail.insert_str(0, w);
        used += t;
        tail_start = i;
    }
    if tail_start <= head_end {
        format!("{head}{tail}")
    } else {
        format!("{head}\n…\n{tail}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(count_tokens(""), 0);
    }

    #[test]
    fn whitespace_is_free() {
        assert_eq!(count_tokens("   \n\t  "), 0);
    }

    #[test]
    fn short_words_are_one_token() {
        assert_eq!(count_tokens("the cat sat"), 3);
    }

    #[test]
    fn long_words_split() {
        // "internationalization" = 20 chars -> 5 tokens
        assert_eq!(count_tokens("internationalization"), 5);
    }

    #[test]
    fn punctuation_counts() {
        assert_eq!(count_tokens("a,b"), 3);
        assert_eq!(count_tokens("end."), 2);
    }

    #[test]
    fn url_costs_multiple_tokens() {
        let n = count_tokens("https://portal.gdc.cancer.gov/projects/TCGA-COAD");
        assert!(n >= 10, "urls should be token-expensive, got {n}");
    }

    #[test]
    fn truncate_noop_when_fits() {
        assert_eq!(truncate_to_tokens("short text", 100), "short text");
    }

    #[test]
    fn truncate_keeps_head_and_tail() {
        let text = format!(
            "Title: colorectal cancer study\n{}\nURL: https://portal.example.org/data\n",
            "filler words here ".repeat(500)
        );
        let cut = truncate_to_tokens(&text, 200);
        assert!(count_tokens(&cut) <= 210, "got {}", count_tokens(&cut));
        assert!(cut.contains("colorectal cancer"), "head lost");
        assert!(cut.contains("portal.example.org"), "tail lost");
        assert!(cut.contains('…'));
    }

    #[test]
    fn truncate_respects_budget_property() {
        for budget in [16, 64, 256] {
            let text = "word ".repeat(2000);
            let cut = truncate_to_tokens(&text, budget);
            assert!(count_tokens(&cut) <= budget + 8, "budget {budget}");
        }
    }

    proptest! {
        #[test]
        fn truncate_never_exceeds_budget_much(
            text in "[a-z ]{0,400}", budget in 8usize..64
        ) {
            let cut = truncate_to_tokens(&text, budget);
            prop_assert!(count_tokens(&cut) <= budget + 8);
        }

        #[test]
        fn monotone_under_concat(a in ".{0,64}", b in ".{0,64}") {
            let ab = format!("{a}{b}");
            prop_assert!(count_tokens(&ab) >= count_tokens(&a).max(count_tokens(&b)) ||
                // Concatenation can merge two short runs into one longer run,
                // which never *reduces* the count below either side by more
                // than the merge saving of one token.
                count_tokens(&ab) + 1 >= count_tokens(&a).max(count_tokens(&b)));
        }

        #[test]
        fn bounded_by_char_count(s in ".{0,256}") {
            prop_assert!(count_tokens(&s) <= s.chars().count());
        }

        #[test]
        fn concat_subadditive(a in "[a-z ]{0,64}", b in "[a-z ]{0,64}") {
            let ab = format!("{a}{b}");
            prop_assert!(count_tokens(&ab) <= count_tokens(&a) + count_tokens(&b) + 1);
        }
    }
}
