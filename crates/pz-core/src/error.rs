//! Error types for the Palimpzest core.

use pz_llm::LlmError;
use pz_vector::VectorStoreError;
use thiserror::Error;

/// Crate-wide error type.
#[derive(Clone, Debug, Error, PartialEq)]
pub enum PzError {
    #[error("schema error: {0}")]
    Schema(String),
    #[error("invalid plan: {0}")]
    Plan(String),
    #[error("unknown dataset: {0}")]
    UnknownDataset(String),
    #[error("unknown UDF: {0}")]
    UnknownUdf(String),
    #[error("execution error: {0}")]
    Execution(String),
    #[error("optimizer error: {0}")]
    Optimizer(String),
    #[error(transparent)]
    Llm(#[from] LlmError),
    #[error(transparent)]
    Vector(#[from] VectorStoreError),
}

/// Crate-wide result alias.
pub type PzResult<T> = Result<T, PzError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llm_error_converts() {
        let e: PzError = LlmError::Rejected("nope".into()).into();
        assert!(matches!(e, PzError::Llm(_)));
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn vector_error_converts() {
        let e: PzError = VectorStoreError::CollectionNotFound("c".into()).into();
        assert!(e.to_string().contains("collection not found"));
    }

    #[test]
    fn display_messages() {
        assert_eq!(
            PzError::Plan("no scan".into()).to_string(),
            "invalid plan: no scan"
        );
        assert_eq!(
            PzError::UnknownDataset("d".into()).to_string(),
            "unknown dataset: d"
        );
    }
}
