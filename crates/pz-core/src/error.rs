//! Error types for the Palimpzest core.

use pz_llm::LlmError;
use pz_vector::VectorStoreError;
use thiserror::Error;

/// Crate-wide error type.
#[derive(Clone, Debug, Error, PartialEq)]
pub enum PzError {
    #[error("schema error: {0}")]
    Schema(String),
    #[error("invalid plan: {0}")]
    Plan(String),
    #[error("unknown dataset: {0}")]
    UnknownDataset(String),
    #[error("unknown UDF: {0}")]
    UnknownUdf(String),
    #[error("execution error: {0}")]
    Execution(String),
    #[error("optimizer error: {0}")]
    Optimizer(String),
    /// The serving layer refused to admit this run: the host is at
    /// capacity (or the run's deadline cannot be met from the back of the
    /// queue). Structured so callers can distinguish load shedding from a
    /// pipeline failure and retry after `retry_after_secs` of backoff.
    #[error("overloaded: {reason} (retry after {retry_after_secs:.1}s)")]
    Overloaded {
        reason: String,
        retry_after_secs: f64,
    },
    #[error(transparent)]
    Llm(#[from] LlmError),
    #[error(transparent)]
    Vector(#[from] VectorStoreError),
}

impl PzError {
    /// True when this error is the serving layer shedding load rather than
    /// the pipeline itself failing — the canonical "try again later" signal.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, PzError::Overloaded { .. })
    }
}

/// Crate-wide result alias.
pub type PzResult<T> = Result<T, PzError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llm_error_converts() {
        let e: PzError = LlmError::Rejected("nope".into()).into();
        assert!(matches!(e, PzError::Llm(_)));
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn vector_error_converts() {
        let e: PzError = VectorStoreError::CollectionNotFound("c".into()).into();
        assert!(e.to_string().contains("collection not found"));
    }

    #[test]
    fn overloaded_is_structured_and_detectable() {
        let e = PzError::Overloaded {
            reason: "queue full (8 waiting)".into(),
            retry_after_secs: 2.5,
        };
        assert!(e.is_overloaded());
        assert_eq!(
            e.to_string(),
            "overloaded: queue full (8 waiting) (retry after 2.5s)"
        );
        assert!(!PzError::Plan("x".into()).is_overloaded());
    }

    #[test]
    fn display_messages() {
        assert_eq!(
            PzError::Plan("no scan".into()).to_string(),
            "invalid plan: no scan"
        );
        assert_eq!(
            PzError::UnknownDataset("d".into()).to_string(),
            "unknown dataset: d"
        );
    }
}
