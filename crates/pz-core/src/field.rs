//! Field definitions — the typed, described attributes that make up a
//! [`crate::schema::Schema`].
//!
//! The paper: "A schema consists of the attribute names, types, and
//! descriptions used to process the dataset." Descriptions matter: they are
//! handed to the LLM when a `Convert` has to compute a field that does not
//! exist in the input.

use serde::{Deserialize, Serialize};

/// Primitive types a field can hold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldType {
    /// Free text. The default for LLM-extracted attributes.
    #[default]
    Text,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// A list of text values.
    TextList,
}

impl FieldType {
    pub fn name(&self) -> &'static str {
        match self {
            FieldType::Text => "text",
            FieldType::Int => "int",
            FieldType::Float => "float",
            FieldType::Bool => "bool",
            FieldType::TextList => "text_list",
        }
    }
}

/// One attribute of a schema.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Machine name; validated by [`is_valid_field_name`].
    pub name: String,
    pub field_type: FieldType,
    /// Natural-language description used by LLM-based extraction.
    pub description: String,
    /// Whether downstream operators may rely on the field being non-null.
    pub required: bool,
}

impl FieldDef {
    /// A text field (the common case, mirroring `pz.Field(desc=...)`).
    pub fn text(name: impl Into<String>, description: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            field_type: FieldType::Text,
            description: description.into(),
            required: false,
        }
    }

    pub fn typed(
        name: impl Into<String>,
        field_type: FieldType,
        description: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            field_type,
            description: description.into(),
            required: false,
        }
    }

    pub fn required(mut self) -> Self {
        self.required = true;
        self
    }
}

/// Field-name rule from the paper's `create_schema` tool: "Field names
/// cannot have spaces or special characters." We allow `[a-zA-Z_][a-zA-Z0-9_]*`.
pub fn is_valid_field_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names() {
        for n in ["name", "dataset_name", "_x", "fieldA2"] {
            assert!(is_valid_field_name(n), "{n}");
        }
    }

    #[test]
    fn invalid_names() {
        for n in ["", "2name", "has space", "dash-ed", "dot.ted", "ünïcode"] {
            assert!(!is_valid_field_name(n), "{n}");
        }
    }

    #[test]
    fn text_builder_defaults() {
        let f = FieldDef::text("url", "The public URL");
        assert_eq!(f.field_type, FieldType::Text);
        assert!(!f.required);
        assert!(FieldDef::text("x", "").required().required);
    }

    #[test]
    fn type_names() {
        assert_eq!(FieldType::Int.name(), "int");
        assert_eq!(FieldType::TextList.name(), "text_list");
    }
}
