//! Data records — the dynamic tuples that flow through pipelines.
//!
//! A [`DataRecord`] is a bag of [`Value`]s keyed by field name, plus lineage
//! metadata (which source record(s) it derives from) so execution statistics
//! and provenance queries can trace outputs back to inputs.

use crate::error::{PzError, PzResult};
use crate::field::FieldType;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A dynamically-typed field value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    TextList(Vec<String>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Render for prompts / display. Lists join with `; `.
    pub fn as_display(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Text(s) => s.clone(),
            Value::TextList(v) => v.join("; "),
        }
    }

    /// Text content if the value is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse a raw string (e.g. an LLM extraction) into a typed value.
    /// Unparseable input degrades to `Null` for numerics/bools rather than
    /// erroring — extraction noise must not abort a pipeline.
    pub fn parse_as(raw: &str, ty: FieldType) -> Value {
        let t = raw.trim();
        if t.is_empty() {
            return Value::Null;
        }
        match ty {
            FieldType::Text => Value::Text(t.to_string()),
            FieldType::Int => t.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
            FieldType::Float => t.parse::<f64>().map(Value::Float).unwrap_or(Value::Null),
            FieldType::Bool => match t.to_ascii_lowercase().as_str() {
                "true" | "yes" | "1" => Value::Bool(true),
                "false" | "no" | "0" => Value::Bool(false),
                _ => Value::Null,
            },
            FieldType::TextList => {
                Value::TextList(t.split(';').map(|s| s.trim().to_string()).collect())
            }
        }
    }

    /// Does this value's runtime type satisfy the declared field type?
    /// `Null` satisfies everything (nullability is tracked by `required`).
    pub fn type_matches(&self, ty: FieldType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Text(_), FieldType::Text)
                | (Value::Int(_), FieldType::Int)
                | (Value::Float(_), FieldType::Float)
                | (Value::Int(_), FieldType::Float)
                | (Value::Bool(_), FieldType::Bool)
                | (Value::TextList(_), FieldType::TextList)
        )
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_display())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// One tuple flowing through a pipeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataRecord {
    /// Unique within one execution.
    pub id: u64,
    /// Id of the source record(s) this derives from (provenance).
    pub lineage: Vec<u64>,
    /// Field values.
    pub fields: BTreeMap<String, Value>,
}

impl DataRecord {
    pub fn new(id: u64) -> Self {
        Self {
            id,
            lineage: Vec::new(),
            fields: BTreeMap::new(),
        }
    }

    /// A derived record: fresh id, lineage extended with the parent.
    pub fn derive(&self, new_id: u64) -> Self {
        let mut lineage = self.lineage.clone();
        lineage.push(self.id);
        Self {
            id: new_id,
            lineage,
            fields: BTreeMap::new(),
        }
    }

    pub fn with_field(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.insert(name.into(), value.into());
        self
    }

    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.fields.insert(name.into(), value.into());
    }

    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.get(name)
    }

    /// The record's "text" for LLM prompts: the conventional content field
    /// if present, otherwise all fields rendered as `name: value` lines.
    pub fn prompt_text(&self) -> String {
        for key in ["contents", "content", "text", "body"] {
            if let Some(Value::Text(s)) = self.fields.get(key) {
                return s.clone();
            }
        }
        self.fields
            .iter()
            .filter(|(_, v)| !v.is_null())
            .map(|(k, v)| format!("{k}: {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Validate against a schema: required fields present and non-null,
    /// value types compatible. Extra fields are allowed (records may carry
    /// upstream attributes forward).
    pub fn validate(&self, schema: &Schema) -> PzResult<()> {
        for f in &schema.fields {
            match self.fields.get(&f.name) {
                Some(v) => {
                    if !v.type_matches(f.field_type) {
                        return Err(PzError::Schema(format!(
                            "field {:?}: value {:?} does not match type {}",
                            f.name,
                            v,
                            f.field_type.name()
                        )));
                    }
                    if f.required && v.is_null() {
                        return Err(PzError::Schema(format!(
                            "required field {:?} is null",
                            f.name
                        )));
                    }
                }
                None if f.required => {
                    return Err(PzError::Schema(format!(
                        "required field {:?} missing",
                        f.name
                    )))
                }
                None => {}
            }
        }
        Ok(())
    }

    /// Serialize to a JSON object (used by stats output and notebook export).
    pub fn to_json(&self) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        for (k, v) in &self.fields {
            let jv = match v {
                Value::Null => serde_json::Value::Null,
                Value::Bool(b) => serde_json::Value::Bool(*b),
                Value::Int(i) => serde_json::Value::from(*i),
                Value::Float(f) => serde_json::Value::from(*f),
                Value::Text(s) => serde_json::Value::String(s.clone()),
                Value::TextList(l) => {
                    serde_json::Value::Array(l.iter().map(|s| s.clone().into()).collect())
                }
            };
            map.insert(k.clone(), jv);
        }
        serde_json::Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldDef;
    use proptest::prelude::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Text("x".into()).as_int(), None);
    }

    #[test]
    fn parse_as_types() {
        assert_eq!(Value::parse_as("42", FieldType::Int), Value::Int(42));
        assert_eq!(Value::parse_as("4.5", FieldType::Float), Value::Float(4.5));
        assert_eq!(Value::parse_as("yes", FieldType::Bool), Value::Bool(true));
        assert_eq!(Value::parse_as("no", FieldType::Bool), Value::Bool(false));
        assert_eq!(
            Value::parse_as("a; b", FieldType::TextList),
            Value::TextList(vec!["a".into(), "b".into()])
        );
        // Noise degrades to null, not error.
        assert_eq!(Value::parse_as("not a number", FieldType::Int), Value::Null);
        assert_eq!(Value::parse_as("  ", FieldType::Text), Value::Null);
    }

    #[test]
    fn type_matching() {
        assert!(Value::Int(1).type_matches(FieldType::Float)); // widening ok
        assert!(!Value::Float(1.0).type_matches(FieldType::Int));
        assert!(Value::Null.type_matches(FieldType::Bool));
        assert!(!Value::Text("t".into()).type_matches(FieldType::Bool));
    }

    #[test]
    fn derive_tracks_lineage() {
        let a = DataRecord::new(1);
        let b = a.derive(7);
        let c = b.derive(9);
        assert_eq!(c.lineage, vec![1, 7]);
        assert_eq!(c.id, 9);
        assert!(c.fields.is_empty());
    }

    #[test]
    fn prompt_text_prefers_contents() {
        let r = DataRecord::new(0)
            .with_field("filename", "a.pdf")
            .with_field("contents", "the body");
        assert_eq!(r.prompt_text(), "the body");
        let r2 = DataRecord::new(0)
            .with_field("name", "x")
            .with_field("url", "https://a");
        let t = r2.prompt_text();
        assert!(t.contains("name: x") && t.contains("url: https://a"));
    }

    #[test]
    fn validation() {
        let schema = Schema::new(
            "S",
            "",
            vec![
                FieldDef::text("a", "").required(),
                FieldDef::typed("n", FieldType::Int, ""),
            ],
        )
        .unwrap();
        let good = DataRecord::new(0)
            .with_field("a", "x")
            .with_field("n", 3i64);
        assert!(good.validate(&schema).is_ok());
        let missing = DataRecord::new(0).with_field("n", 3i64);
        assert!(missing.validate(&schema).is_err());
        let null_required = DataRecord::new(0).with_field("a", Value::Null);
        assert!(null_required.validate(&schema).is_err());
        let wrong_type = DataRecord::new(0)
            .with_field("a", "x")
            .with_field("n", "NaN");
        assert!(wrong_type.validate(&schema).is_err());
        // Extra fields are fine.
        let extra = DataRecord::new(0)
            .with_field("a", "x")
            .with_field("z", "extra");
        assert!(extra.validate(&schema).is_ok());
    }

    #[test]
    fn to_json_round_trip_shape() {
        let r = DataRecord::new(0)
            .with_field("t", "text")
            .with_field("i", 3i64)
            .with_field("f", 1.5f64)
            .with_field("b", true)
            .with_field("n", Value::Null)
            .with_field("l", Value::TextList(vec!["x".into()]));
        let j = r.to_json();
        assert_eq!(j["t"], "text");
        assert_eq!(j["i"], 3);
        assert_eq!(j["f"], 1.5);
        assert_eq!(j["b"], true);
        assert!(j["n"].is_null());
        assert_eq!(j["l"][0], "x");
    }

    proptest! {
        #[test]
        fn parse_int_round_trips(i in any::<i64>()) {
            prop_assert_eq!(Value::parse_as(&i.to_string(), FieldType::Int), Value::Int(i));
        }

        #[test]
        fn display_never_panics(s in "(?s).{0,100}") {
            let v = Value::Text(s);
            let _ = v.as_display();
        }

        #[test]
        fn derive_lineage_grows_by_one(id in 0u64..1000, next in 0u64..1000) {
            let r = DataRecord::new(id);
            let d = r.derive(next);
            prop_assert_eq!(d.lineage.len(), r.lineage.len() + 1);
        }
    }
}
