//! Sentinel calibration.
//!
//! The coarse defaults of the cost model (selectivity 0.5, fan-out 1.3,
//! card quality factors) can badly misrank plans. Following the Palimpzest
//! optimizer's sample-based approach, calibration executes the semantic
//! operators over a small *sample* of the input with every candidate model,
//! using the champion (highest-quality) model's output as reference:
//!
//! * observed champion selectivity / fan-out replaces the defaults;
//! * per-model agreement with the champion replaces the card quality.
//!
//! The sample runs charge real (virtual) cost — calibration is an
//! investment the optimizer amortizes over the full run (experiment E9).

use crate::context::PzContext;
use crate::error::PzResult;
use crate::ops::logical::{FilterPredicate, LogicalOp, LogicalPlan};
use crate::ops::physical::{default_physical, PhysicalOp};
use crate::optimizer::cost::Calibration;
use crate::optimizer::enumerate::EMBEDDING_FILTER_THRESHOLD;
use crate::record::DataRecord;
use pz_llm::count_tokens;
use pz_llm::protocol::Effort;
use pz_llm::ModelId;
use pz_llm::ModelKind;

/// Run sentinel calibration for `plan` on a sample of `sample_size` source
/// records.
pub fn calibrate(ctx: &PzContext, plan: &LogicalPlan, sample_size: usize) -> PzResult<Calibration> {
    let mut calib = Calibration::default();
    let src = ctx.registry.get(plan.dataset())?;
    let base = ctx.next_ids(sample_size.max(1) as u64 * 4);
    let mut sample: Vec<DataRecord> = src
        .records(base)?
        .into_iter()
        .take(sample_size.max(1))
        .collect();
    if sample.is_empty() {
        return Ok(calib);
    }
    let toks: usize = sample.iter().map(|r| count_tokens(&r.prompt_text())).sum();
    calib.avg_record_tokens = Some(toks as f64 / sample.len() as f64);

    let champion: ModelId = ctx
        .catalog
        .chat_models_by_quality()
        .first()
        .map(|m| m.id.clone())
        .unwrap_or_else(|| "gpt-4o".into());
    let challengers: Vec<ModelId> = ctx
        .catalog
        .of_kind(ModelKind::Chat)
        .map(|m| m.id.clone())
        .filter(|m| *m != champion)
        .collect();

    for (idx, op) in plan.ops.iter().enumerate() {
        match op {
            LogicalOp::Scan { .. } => {}
            LogicalOp::Filter {
                predicate: FilterPredicate::NaturalLanguage(pred),
            } => {
                // Champion decisions = reference.
                let champ: Vec<bool> = decisions(ctx, &sample, pred, &champion)?;
                let kept = champ.iter().filter(|b| **b).count();
                calib
                    .selectivity
                    .insert(idx, kept as f64 / sample.len() as f64);
                calib.quality.insert(
                    (idx, champion.to_string()),
                    champion_self_quality(ctx, &champion),
                );
                for m in &challengers {
                    let d = decisions(ctx, &sample, pred, m)?;
                    let agree = d.iter().zip(&champ).filter(|(a, b)| a == b).count();
                    calib
                        .quality
                        .insert((idx, m.to_string()), agree as f64 / sample.len() as f64);
                }
                // Embedding strategy agreement.
                if let Some(em) = ctx.catalog.of_kind(ModelKind::Embedding).next() {
                    let kept_emb = crate::ops::filter::embedding_filter(
                        ctx,
                        sample.clone(),
                        pred,
                        &em.id,
                        EMBEDDING_FILTER_THRESHOLD,
                    )?;
                    let emb_ids: Vec<u64> = kept_emb.iter().map(|r| r.id).collect();
                    let agree = sample
                        .iter()
                        .zip(&champ)
                        .filter(|(r, c)| emb_ids.contains(&r.id) == **c)
                        .count();
                    calib
                        .quality
                        .insert((idx, em.id.to_string()), agree as f64 / sample.len() as f64);
                }
                // The sample continues with the champion-filtered subset.
                sample = sample
                    .into_iter()
                    .zip(champ)
                    .filter(|(_, keep)| *keep)
                    .map(|(r, _)| r)
                    .collect();
            }
            LogicalOp::Convert {
                target,
                cardinality,
                ..
            } => {
                if sample.is_empty() {
                    break;
                }
                let champ_out = crate::ops::convert::llm_convert(
                    ctx,
                    sample.clone(),
                    target,
                    *cardinality,
                    &champion,
                    Effort::Standard,
                )?;
                calib
                    .fanout
                    .insert(idx, champ_out.len() as f64 / sample.len() as f64);
                calib.quality.insert(
                    (idx, champion.to_string()),
                    champion_self_quality(ctx, &champion),
                );
                for m in &challengers {
                    let out = crate::ops::convert::llm_convert(
                        ctx,
                        sample.clone(),
                        target,
                        *cardinality,
                        m,
                        Effort::Standard,
                    )?;
                    calib
                        .quality
                        .insert((idx, m.to_string()), extraction_agreement(&champ_out, &out));
                }
                sample = champ_out;
            }
            other => {
                // Conventional ops: apply their default physical semantics
                // so downstream calibration sees realistic data.
                if let Some(phys) = default_physical(other) {
                    if !matches!(phys, PhysicalOp::Scan { .. }) {
                        sample = phys.execute(ctx, sample)?;
                    }
                }
                if let LogicalOp::Filter {
                    predicate: FilterPredicate::Udf(_),
                } = other
                {
                    // (UDF filters have no default_physical; run directly.)
                }
            }
        }
    }
    Ok(calib)
}

/// The champion has no external reference on the sample; its calibrated
/// quality stays at the card value.
fn champion_self_quality(ctx: &PzContext, champion: &ModelId) -> f64 {
    ctx.catalog.get(champion).map(|m| m.quality).unwrap_or(1.0)
}

/// Per-record boolean decisions for a filter.
fn decisions(
    ctx: &PzContext,
    sample: &[DataRecord],
    predicate: &str,
    model: &ModelId,
) -> PzResult<Vec<bool>> {
    let mut out = Vec::with_capacity(sample.len());
    for rec in sample {
        let kept = crate::ops::filter::llm_filter(
            ctx,
            vec![rec.clone()],
            predicate,
            model,
            Effort::Standard,
        )?;
        out.push(!kept.is_empty());
    }
    Ok(out)
}

/// Fraction of champion field values a challenger reproduced exactly.
fn extraction_agreement(champion: &[DataRecord], challenger: &[DataRecord]) -> f64 {
    let mut total = 0usize;
    let mut agree = 0usize;
    for c in champion {
        for (k, v) in &c.fields {
            if v.is_null() {
                continue;
            }
            total += 1;
            // Match on lineage (same parent record) and field value.
            if challenger.iter().any(|o| {
                o.lineage.last() == c.lineage.last() && o.get(k).map(|ov| ov == v).unwrap_or(false)
            }) {
                agree += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::datasource::MemorySource;
    use crate::field::FieldDef;
    use crate::ops::logical::Cardinality;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn science_ctx(n: usize) -> PzContext {
        let ctx = PzContext::simulated();
        let (docs, _) = pz_datagen::science::generate(pz_datagen::science::ScienceConfig {
            n_papers: n,
            ..Default::default()
        });
        let items = docs.into_iter().map(|d| (d.filename, d.content)).collect();
        ctx.registry.register(Arc::new(MemorySource::new(
            "sci",
            Schema::pdf_file(),
            items,
        )));
        ctx
    }

    fn demo_plan() -> LogicalPlan {
        let clinical = Schema::new(
            "ClinicalData",
            "",
            vec![
                FieldDef::text("name", "The dataset name"),
                FieldDef::text("url", "The public URL of the dataset"),
            ],
        )
        .unwrap();
        Dataset::source("sci")
            .filter("The papers are about colorectal cancer")
            .convert(clinical, Cardinality::OneToMany, "extract datasets")
            .build()
            .unwrap()
    }

    #[test]
    fn calibration_measures_selectivity_and_quality() {
        let ctx = science_ctx(30);
        let calib = calibrate(&ctx, &demo_plan(), 12).unwrap();
        // Filter selectivity observed (op index 1).
        let sel = calib.selectivity.get(&1).copied().unwrap();
        assert!((0.0..=1.0).contains(&sel));
        // Quality entries exist for challenger models.
        assert!(calib
            .quality
            .keys()
            .any(|(i, m)| *i == 1 && m == "llama-3-8b"));
        assert!(calib
            .quality
            .keys()
            .any(|(i, m)| *i == 2 && m == "gpt-4o-mini"));
        // Convert fan-out measured.
        assert!(calib.fanout.contains_key(&2));
        assert!(calib.avg_record_tokens.unwrap() > 50.0);
    }

    #[test]
    fn weak_models_calibrate_lower_than_strong() {
        let ctx = science_ctx(80);
        let calib = calibrate(&ctx, &demo_plan(), 32).unwrap();
        let strong = calib
            .quality
            .get(&(1, "llama-3-70b".to_string()))
            .copied()
            .unwrap();
        let weak = calib
            .quality
            .get(&(1, "llama-3-8b".to_string()))
            .copied()
            .unwrap();
        assert!(
            strong >= weak,
            "calibrated quality should rank strong >= weak ({strong} vs {weak})"
        );
    }

    #[test]
    fn calibration_charges_cost() {
        let ctx = science_ctx(20);
        calibrate(&ctx, &demo_plan(), 8).unwrap();
        assert!(
            ctx.ledger.total_cost_usd() > 0.0,
            "sentinel runs cost money"
        );
    }

    #[test]
    fn empty_sample_is_benign() {
        let ctx = PzContext::simulated();
        ctx.registry.register(Arc::new(MemorySource::new(
            "empty",
            Schema::pdf_file(),
            vec![],
        )));
        let plan = Dataset::source("empty").filter("anything").build().unwrap();
        let calib = calibrate(&ctx, &plan, 5).unwrap();
        assert!(calib.selectivity.is_empty());
    }
}
