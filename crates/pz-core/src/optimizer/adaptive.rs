//! Runtime adaptive re-optimization: re-cost the *remaining* plan suffix
//! while it executes and repair it in place when reality diverges from the
//! estimate.
//!
//! The optimizer prices plans once, up front, from catalog priors. The
//! [`AdaptiveController`] closes the loop at runtime: it accumulates
//! per-model observations (records processed, wall-clock seconds on the
//! virtual clock, ledger dollars) against the per-operator predictions the
//! optimizer would make for the same work, and consults the circuit-breaker
//! health tracker plus scripted fault-window pressure. When a model's
//! observed drift ratio or provider health crosses a configured threshold,
//! the controller re-runs costing over the unexecuted suffix with the
//! degraded model's observed slowdown priced in, and — when a healthy
//! substitute prices out cheaper — emits a plan repair: a
//! champion/challenger switch that swaps the stage onto the substitute.
//! This generalizes `exec/failover.rs` from "model died" to "model is
//! degraded or not worth its price".
//!
//! Actuation differs per executor:
//! - **streaming**: [`AdaptiveController::challenge`] runs before each
//!   batch; a repair sticky-swaps the stage's active operator mid-stream
//!   (earlier batches already streamed downstream on the old model).
//! - **materializing**: [`AdaptiveController::repair_suffix`] runs between
//!   operators; a repair rewrites not-yet-executed operators in the plan.
//!
//! Determinism: every decision is a pure function of virtual-clock time,
//! deterministic ledger/breaker/fault state, and the seeded plan — no
//! wall-clock or randomness — so adaptive runs replay byte-identically.
//! When disabled (the default) the controller is never constructed and
//! execution is byte-invisible relative to pre-adaptive builds
//! (differential-tested).
//!
//! Observed time is attributed by *clock delta minus other stages' billed
//! latency*: fault stalls and retry backoff advance the clock without ever
//! touching the ledger (failed calls bill nothing), so ledger latency alone
//! is blind to brownouts — the clock delta is the only signal that sees
//! them.

use crate::context::PzContext;
use crate::exec::failover::{self, FailoverRank};
use crate::ops::physical::{PhysicalOp, PhysicalPlan};
use crate::optimizer::cost::{estimate_plan_detailed, CostContext, OperatorEstimate};
use parking_lot::Mutex;
use pz_llm::ModelId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Ratio ceiling kept finite so reports survive JSON round-trips
/// (serde_json renders non-finite floats as `null`).
const RATIO_CAP: f64 = 1e6;

/// Thresholds and limits for the adaptive controller. Disabled by default;
/// `AdaptiveConfig::on()` enables it with stock thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Master switch. Off = controller never constructed, byte-invisible.
    pub enabled: bool,
    /// Repair when observed seconds per record exceed the estimate by this
    /// factor (accumulated per model, so stalls amortize over records).
    pub time_drift_threshold: f64,
    /// Repair when observed dollars per record exceed the estimate by this
    /// factor.
    pub cost_drift_threshold: f64,
    /// Repair when a model's sliding-window failure rate (or an active
    /// scripted fault window's intensity, corroborated by at least one
    /// observed failure) reaches this rate — deliberately below the
    /// breaker's trip rate, so adaptation fires on brownouts the breaker
    /// rides out.
    pub health_failure_rate: f64,
    /// Minimum records observed on a model before drift ratios count
    /// (health triggers are exempt — a dying provider needs no sample).
    pub min_records: usize,
    /// Ceiling on repairs per run, guarding against oscillation.
    pub max_repairs: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            time_drift_threshold: 3.0,
            cost_drift_threshold: 3.0,
            health_failure_rate: 0.34,
            min_records: 2,
            max_repairs: 4,
        }
    }
}

impl AdaptiveConfig {
    /// Enabled with default thresholds.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// One plan repair, recorded in `ExecutionStats::adaptive` and mirrored by
/// an `exec.replan` observability event.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// Index of the repaired operator in the physical plan.
    pub operator_index: usize,
    pub operator: String,
    pub from_model: String,
    pub to_model: String,
    /// Which threshold fired: `time drift`, `cost drift`, or
    /// `provider health`.
    pub trigger: String,
    /// The observed ratio/rate that crossed the threshold (capped finite).
    pub observed_ratio: f64,
    /// The threshold it crossed.
    pub threshold: f64,
    /// Re-costed suffix seconds if left on the degraded model (with its
    /// observed slowdown priced in).
    pub est_suffix_secs_before: f64,
    /// Re-costed suffix seconds on the repaired plan.
    pub est_suffix_secs_after: f64,
    /// Records the repair still applies to.
    pub records_remaining: usize,
    /// Virtual-clock time of the decision.
    pub at_secs: f64,
}

/// Per-model accumulator: observed work next to what the optimizer would
/// have predicted for exactly that many records.
#[derive(Clone, Copy, Default)]
struct ModelObs {
    records: usize,
    obs_secs: f64,
    obs_cost: f64,
    est_secs: f64,
    est_cost: f64,
}

#[derive(Default)]
struct AdaptiveState {
    models: BTreeMap<ModelId, ModelObs>,
    /// Records observed entering each operator (streaming uses this to
    /// size the remaining-work estimate).
    op_records: Vec<usize>,
    /// Models already demoted this run; never swapped back to (sticky).
    demoted: Vec<ModelId>,
    reports: Vec<AdaptiveReport>,
}

/// `obs/est` with zero guards: both ~0 → 1.0 (no evidence of drift), est ~0
/// with real obs → capped blow-up. Always finite.
fn capped_ratio(obs: f64, est: f64) -> f64 {
    const EPS: f64 = 1e-12;
    if obs.abs() < EPS && est.abs() < EPS {
        return 1.0;
    }
    if est.abs() < EPS {
        return RATIO_CAP;
    }
    (obs / est).min(RATIO_CAP)
}

/// The runtime adaptation layer. Constructed per run (only when enabled),
/// shared by all stage threads in streaming mode.
pub struct AdaptiveController {
    config: AdaptiveConfig,
    rank: FailoverRank,
    /// Baseline per-operator estimates for the plan as launched (serial,
    /// unpipelined: per-record terms the accumulators can scale).
    estimates: Vec<OperatorEstimate>,
    cost_ctx: CostContext,
    /// Scan dataset prepended to suffix plans so re-costing sees a
    /// cardinality.
    dataset: String,
    state: Mutex<AdaptiveState>,
}

impl AdaptiveController {
    /// Build a controller for `plan`, or `None` when disabled or the plan
    /// cannot be costed (no scan / unsampleable source) — adaptation then
    /// silently stands down rather than failing the run. Construction
    /// touches no clock, ledger, or trace state.
    pub fn from_plan(
        ctx: &PzContext,
        plan: &PhysicalPlan,
        config: AdaptiveConfig,
        rank: FailoverRank,
    ) -> Option<Self> {
        if !config.enabled {
            return None;
        }
        let dataset = plan.ops.iter().find_map(|op| match op {
            PhysicalOp::Scan { dataset } => Some(dataset.clone()),
            _ => None,
        })?;
        let cost_ctx = CostContext::from_physical_plan(ctx, plan).ok()?;
        let estimates = estimate_plan_detailed(plan, &cost_ctx, false).1;
        Some(Self {
            config,
            rank,
            estimates,
            cost_ctx,
            dataset,
            state: Mutex::new(AdaptiveState {
                op_records: vec![0; plan.ops.len()],
                ..AdaptiveState::default()
            }),
        })
    }

    /// Record one observation: operator `op_index` processed `records`
    /// input records on `model`, taking `elapsed_secs` of attributed
    /// virtual-clock time and `cost_usd` of ledger spend. The matching
    /// estimate (records × the operator's predicted per-record time/cost)
    /// accrues alongside, so drift is always observed-vs-predicted for the
    /// *same* work.
    pub fn observe(
        &self,
        op_index: usize,
        model: Option<&ModelId>,
        records: usize,
        elapsed_secs: f64,
        cost_usd: f64,
    ) {
        if records == 0 {
            return;
        }
        let mut st = self.state.lock();
        if let Some(slot) = st.op_records.get_mut(op_index) {
            *slot += records;
        }
        let Some(model) = model else { return };
        let Some(est) = self.estimates.get(op_index) else {
            return;
        };
        let per_rec = |total: f64| {
            if est.input_cardinality > 0.0 {
                total / est.input_cardinality
            } else {
                0.0
            }
        };
        let (per_secs, per_cost) = (per_rec(est.time_secs), per_rec(est.cost_usd));
        let m = st.models.entry(model.clone()).or_default();
        m.records += records;
        m.obs_secs += elapsed_secs;
        m.obs_cost += cost_usd;
        m.est_secs += records as f64 * per_secs;
        m.est_cost += records as f64 * per_cost;
    }

    /// Whether `model` is currently degraded: returns the trigger name, the
    /// observed ratio/rate, and the threshold it crossed.
    fn trigger(
        &self,
        st: &AdaptiveState,
        ctx: &PzContext,
        model: &ModelId,
        now: f64,
    ) -> Option<(&'static str, f64, f64)> {
        if let Some(obs) = st.models.get(model) {
            if obs.records >= self.config.min_records {
                let t = capped_ratio(obs.obs_secs, obs.est_secs);
                if t >= self.config.time_drift_threshold {
                    return Some(("time drift", t, self.config.time_drift_threshold));
                }
                let c = capped_ratio(obs.obs_cost, obs.est_cost);
                if c >= self.config.cost_drift_threshold {
                    return Some(("cost drift", c, self.config.cost_drift_threshold));
                }
            }
        }
        let threshold = self.config.health_failure_rate;
        if ctx.health.is_open(model, now) {
            return Some(("provider health", 1.0, threshold));
        }
        let snap = ctx.health.snapshot();
        let row = snap.iter().find(|s| &s.model == model);
        if let Some(r) = row {
            if r.failures_total >= 2 && r.window_failure_rate >= threshold {
                return Some(("provider health", r.window_failure_rate, threshold));
            }
        }
        // Scripted fault pressure: an active window hot enough to matter,
        // corroborated by at least one failure the breaker actually saw
        // (so a window that never bites never triggers).
        if row.is_some_and(|r| r.failures_total >= 1) {
            let plan = ctx.faults.plan();
            if let Some(w) = plan.windows.iter().find(|w| {
                &w.model == model
                    && now >= w.start_secs
                    && now < w.end_secs
                    && w.intensity >= threshold
            }) {
                return Some(("provider health", w.intensity, threshold));
            }
        }
        None
    }

    /// Multiplier applied to a model's estimated time when re-costing:
    /// its observed drift ratio (≥ 1), escalated to at least the time
    /// threshold while a health trigger is live (a browning-out provider
    /// will keep stalling even if the drift sample is still thin).
    fn eff_ratio(&self, st: &AdaptiveState, ctx: &PzContext, model: &ModelId, now: f64) -> f64 {
        let observed = st
            .models
            .get(model)
            .filter(|o| o.records > 0)
            .map_or(1.0, |o| capped_ratio(o.obs_secs, o.est_secs));
        if self.trigger(st, ctx, model, now).is_some() {
            observed.max(self.config.time_drift_threshold)
        } else {
            observed.max(1.0)
        }
    }

    /// Re-cost `suffix` as if fed `records` input records: a synthetic scan
    /// supplies the cardinality, then the optimizer's own estimator runs
    /// unchanged. Returns per-operator rows aligned with `suffix`.
    fn suffix_estimate(&self, suffix: &[PhysicalOp], records: usize) -> Vec<OperatorEstimate> {
        let mut ops = Vec::with_capacity(suffix.len() + 1);
        ops.push(PhysicalOp::Scan {
            dataset: self.dataset.clone(),
        });
        ops.extend(suffix.iter().cloned());
        let mut cctx = self.cost_ctx.clone();
        cctx.input_cardinality = records.max(1) as f64;
        let (_, rows) = estimate_plan_detailed(&PhysicalPlan { ops }, &cctx, false);
        rows.into_iter().skip(1).collect()
    }

    /// Total estimated seconds for `suffix`, each operator scaled by its
    /// model's effective slowdown.
    fn scored_secs(
        &self,
        st: &AdaptiveState,
        ctx: &PzContext,
        suffix: &[PhysicalOp],
        records: usize,
        now: f64,
    ) -> f64 {
        self.suffix_estimate(suffix, records)
            .iter()
            .zip(suffix)
            .map(|(row, op)| {
                let slow = op.model().map_or(1.0, |m| self.eff_ratio(st, ctx, m, now));
                row.time_secs * slow
            })
            .sum()
    }

    /// Pick the best healthy, not-yet-demoted, not-itself-degraded
    /// substitute for `op`.
    fn substitute(
        &self,
        st: &AdaptiveState,
        ctx: &PzContext,
        op: &PhysicalOp,
        now: f64,
    ) -> Option<ModelId> {
        failover::candidates(&ctx.catalog, &ctx.health, op, self.rank, now)
            .into_iter()
            .find(|c| !st.demoted.contains(c) && self.trigger(st, ctx, c, now).is_none())
    }

    /// Streaming actuation: called before each batch with the stage's
    /// active operator. When the operator's model is degraded and a
    /// substitute re-costs cheaper for the records still expected, records
    /// the repair and returns the substitute — the stage sticky-swaps onto
    /// it.
    pub fn challenge(&self, ctx: &PzContext, op: &PhysicalOp, op_index: usize) -> Option<ModelId> {
        if !failover::swappable(op) {
            return None;
        }
        let model = op.model().cloned()?;
        let mut st = self.state.lock();
        if st.reports.len() >= self.config.max_repairs {
            return None;
        }
        let now = ctx.clock.now_secs();
        let (trig, ratio, threshold) = self.trigger(&st, ctx, &model, now)?;
        let to = self.substitute(&st, ctx, op, now)?;
        let seen = st.op_records.get(op_index).copied().unwrap_or(0);
        let est_in = self
            .estimates
            .get(op_index)
            .map_or(0.0, |e| e.input_cardinality);
        let remaining = (est_in - seen as f64).ceil().max(1.0) as usize;
        let champion = [op.clone()];
        let challenger = [failover::with_model(op, to.clone()).expect("swappable operator")];
        let before = self.scored_secs(&st, ctx, &champion, remaining, now);
        let after = self.scored_secs(&st, ctx, &challenger, remaining, now);
        if after >= before {
            return None;
        }
        let entry = AdaptiveReport {
            operator_index: op_index,
            operator: op.describe(),
            from_model: model.to_string(),
            to_model: to.to_string(),
            trigger: trig.to_string(),
            observed_ratio: ratio,
            threshold,
            est_suffix_secs_before: before,
            est_suffix_secs_after: after,
            records_remaining: remaining,
            at_secs: now,
        };
        emit_replan(&ctx.tracer, &entry);
        st.demoted.push(model);
        st.reports.push(entry);
        Some(to)
    }

    /// Materializing actuation: called after operator `from - 1` completes
    /// with `records_now` records in flight. Re-costs the unexecuted suffix
    /// `ops[from..]`; any operator sitting on a degraded model is swapped
    /// to a substitute when the repaired suffix prices out cheaper than the
    /// degraded one (observed slowdowns included). Rewrites `ops` in place.
    pub fn repair_suffix(
        &self,
        ctx: &PzContext,
        ops: &mut [PhysicalOp],
        from: usize,
        records_now: usize,
    ) {
        if from >= ops.len() || records_now == 0 {
            return;
        }
        let mut st = self.state.lock();
        if st.reports.len() >= self.config.max_repairs {
            return;
        }
        let now = ctx.clock.now_secs();
        let budget = self.config.max_repairs - st.reports.len();
        let mut repaired = ops[from..].to_vec();
        let mut swaps: Vec<(usize, ModelId, ModelId, &'static str, f64, f64)> = Vec::new();
        for (k, op) in ops[from..].iter().enumerate() {
            if swaps.len() >= budget {
                break;
            }
            let Some(model) = op.model().cloned() else {
                continue;
            };
            if !failover::swappable(op) {
                continue;
            }
            let Some((trig, ratio, threshold)) = self.trigger(&st, ctx, &model, now) else {
                continue;
            };
            let Some(to) = self.substitute(&st, ctx, op, now) else {
                continue;
            };
            repaired[k] = failover::with_model(op, to.clone()).expect("swappable operator");
            swaps.push((k, model, to, trig, ratio, threshold));
        }
        if swaps.is_empty() {
            return;
        }
        let before = self.scored_secs(&st, ctx, &ops[from..], records_now, now);
        let after = self.scored_secs(&st, ctx, &repaired, records_now, now);
        if after >= before {
            return;
        }
        for (k, from_model, to, trig, ratio, threshold) in swaps {
            let entry = AdaptiveReport {
                operator_index: from + k,
                operator: ops[from + k].describe(),
                from_model: from_model.to_string(),
                to_model: to.to_string(),
                trigger: trig.to_string(),
                observed_ratio: ratio,
                threshold,
                est_suffix_secs_before: before,
                est_suffix_secs_after: after,
                records_remaining: records_now,
                at_secs: now,
            };
            emit_replan(&ctx.tracer, &entry);
            st.demoted.push(from_model);
            st.reports.push(entry);
            ops[from + k] = repaired[k].clone();
        }
    }

    /// Drain the recorded repairs (called once per run, into
    /// `ExecutionStats::adaptive`).
    pub fn take_reports(&self) -> Vec<AdaptiveReport> {
        std::mem::take(&mut self.state.lock().reports)
    }
}

/// Emit the observability record of one plan repair: a structured
/// executor-layer event plus the `exec.replan` counter (the mirror of
/// `failover::emit_event`).
pub(crate) fn emit_replan(tracer: &pz_obs::Tracer, entry: &AdaptiveReport) {
    tracer.event(
        pz_obs::Layer::Executor,
        "replan",
        &[
            ("operator", entry.operator.clone()),
            ("from", entry.from_model.clone()),
            ("to", entry.to_model.clone()),
            ("trigger", entry.trigger.clone()),
            ("ratio", format!("{:.3}", entry.observed_ratio)),
            ("records_remaining", entry.records_remaining.to_string()),
            ("at_secs", format!("{:.3}", entry.at_secs)),
        ],
    );
    tracer.incr("exec.replan", 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PzContext;
    use crate::datasource::MemorySource;
    use pz_llm::protocol::Effort;
    use std::sync::Arc;

    fn ctx() -> PzContext {
        let ctx = PzContext::simulated();
        let (docs, _) = pz_datagen::science::demo_corpus();
        let items: Vec<(String, String)> =
            docs.into_iter().map(|d| (d.filename, d.content)).collect();
        ctx.registry.register(Arc::new(MemorySource::new(
            "adaptive-test",
            crate::schema::Schema::pdf_file(),
            items,
        )));
        ctx
    }

    fn plan(model: &str) -> PhysicalPlan {
        PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "adaptive-test".into(),
                },
                PhysicalOp::LlmFilter {
                    predicate: "about cancer".into(),
                    model: model.into(),
                    effort: Effort::Standard,
                },
            ],
        }
    }

    #[test]
    fn disabled_config_builds_no_controller() {
        let ctx = ctx();
        assert!(AdaptiveController::from_plan(
            &ctx,
            &plan("gpt-4o"),
            AdaptiveConfig::default(),
            FailoverRank::Quality,
        )
        .is_none());
    }

    #[test]
    fn capped_ratio_is_always_finite() {
        assert_eq!(capped_ratio(0.0, 0.0), 1.0);
        assert_eq!(capped_ratio(5.0, 0.0), RATIO_CAP);
        assert_eq!(capped_ratio(6.0, 2.0), 3.0);
        assert!(capped_ratio(f64::MAX, 1e-300).is_finite());
    }

    #[test]
    fn healthy_model_never_triggers() {
        let ctx = ctx();
        let ctrl = AdaptiveController::from_plan(
            &ctx,
            &plan("gpt-4o"),
            AdaptiveConfig::on(),
            FailoverRank::Quality,
        )
        .unwrap();
        // Observations right on the estimate: no trigger, no challenge.
        let model: ModelId = "gpt-4o".into();
        let est = ctrl.estimates[1].clone();
        let per_rec = est.time_secs / est.input_cardinality;
        ctrl.observe(1, Some(&model), 4, 4.0 * per_rec, 0.0);
        let st = ctrl.state.lock();
        assert!(ctrl.trigger(&st, &ctx, &model, 0.0).is_none());
        drop(st);
        assert!(ctrl.challenge(&ctx, &plan("gpt-4o").ops[1], 1).is_none());
        assert!(ctrl.take_reports().is_empty());
    }

    #[test]
    fn time_drift_triggers_challenge_and_reports() {
        let ctx = ctx();
        let ctrl = AdaptiveController::from_plan(
            &ctx,
            &plan("gpt-4o"),
            AdaptiveConfig::on(),
            FailoverRank::Quality,
        )
        .unwrap();
        let model: ModelId = "gpt-4o".into();
        let est = ctrl.estimates[1].clone();
        let per_rec = est.time_secs / est.input_cardinality;
        // 10x slower than predicted over 4 records: well past the 3x gate.
        ctrl.observe(1, Some(&model), 4, 40.0 * per_rec, 0.0);
        let op = plan("gpt-4o").ops[1].clone();
        let to = ctrl.challenge(&ctx, &op, 1).expect("repair expected");
        assert_ne!(to, model);
        let reports = ctrl.take_reports();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.trigger, "time drift");
        assert_eq!(r.from_model, "gpt-4o");
        assert_eq!(r.to_model, to.to_string());
        assert!(r.observed_ratio >= r.threshold);
        assert!(r.est_suffix_secs_after < r.est_suffix_secs_before);
        assert!(r.observed_ratio.is_finite());
        // Sticky: the demoted model is never offered as a substitute again.
        let sub_op = failover::with_model(&op, to).unwrap();
        let st = ctrl.state.lock();
        assert!(st.demoted.contains(&model));
        let next = ctrl.substitute(&st, &ctx, &sub_op, 0.0);
        assert!(next.is_none_or(|m| m != model));
    }

    #[test]
    fn repair_suffix_swaps_later_op_sharing_drifted_model() {
        let ctx = ctx();
        let mut ops = vec![
            PhysicalOp::Scan {
                dataset: "adaptive-test".into(),
            },
            PhysicalOp::LlmFilter {
                predicate: "about cancer".into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            },
            PhysicalOp::LlmFilter {
                predicate: "mentions a trial".into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            },
        ];
        let plan = PhysicalPlan { ops: ops.clone() };
        let ctrl =
            AdaptiveController::from_plan(&ctx, &plan, AdaptiveConfig::on(), FailoverRank::Quality)
                .unwrap();
        let model: ModelId = "gpt-4o".into();
        let est = ctrl.estimates[1].clone();
        let per_rec = est.time_secs / est.input_cardinality;
        // Op 1 drifted 8x; the suffix repair should move op 2 off gpt-4o.
        ctrl.observe(1, Some(&model), 6, 48.0 * per_rec, 0.0);
        ctrl.repair_suffix(&ctx, &mut ops, 2, 6);
        assert_ne!(ops[2].model().unwrap(), &model, "suffix op not repaired");
        assert_eq!(ops[1].model().unwrap(), &model, "executed prefix rewritten");
        let reports = ctrl.take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].operator_index, 2);
        assert_eq!(reports[0].records_remaining, 6);
    }

    #[test]
    fn max_repairs_caps_switching() {
        let ctx = ctx();
        let mut cfg = AdaptiveConfig::on();
        cfg.max_repairs = 0;
        let ctrl = AdaptiveController::from_plan(&ctx, &plan("gpt-4o"), cfg, FailoverRank::Quality)
            .unwrap();
        let model: ModelId = "gpt-4o".into();
        ctrl.observe(1, Some(&model), 6, 1e6, 0.0);
        assert!(ctrl.challenge(&ctx, &plan("gpt-4o").ops[1], 1).is_none());
    }

    #[test]
    fn reports_round_trip_json_finite() {
        let r = AdaptiveReport {
            observed_ratio: capped_ratio(1.0, 0.0),
            ..AdaptiveReport::default()
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: AdaptiveReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.observed_ratio, RATIO_CAP);
    }
}
