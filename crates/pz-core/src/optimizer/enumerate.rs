//! Physical plan enumeration.
//!
//! For each logical operator, the catalog induces a set of physical
//! alternatives; the plan space is their cartesian product. This module
//! provides exhaustive enumeration (capped) and the space-size computation
//! used by experiment E4.

use crate::ops::logical::{FilterPredicate, JoinCondition, LogicalOp, LogicalPlan};
use crate::ops::physical::{default_physical, PhysicalOp, PhysicalPlan};
use pz_llm::protocol::Effort;
use pz_llm::{Catalog, ModelKind};

/// Threshold for the embedding-filter alternative.
pub const EMBEDDING_FILTER_THRESHOLD: f32 = 0.30;

/// All physical implementations of one logical operator.
pub fn alternatives(op: &LogicalOp, catalog: &Catalog) -> Vec<PhysicalOp> {
    match op {
        LogicalOp::Filter {
            predicate: FilterPredicate::NaturalLanguage(p),
        } => {
            let mut out = Vec::new();
            for m in catalog.of_kind(ModelKind::Chat) {
                for effort in [Effort::Standard, Effort::High] {
                    out.push(PhysicalOp::LlmFilter {
                        predicate: p.clone(),
                        model: m.id.clone(),
                        effort,
                    });
                }
            }
            if let Some(e) = catalog.of_kind(ModelKind::Embedding).next() {
                out.push(PhysicalOp::EmbeddingFilter {
                    predicate: p.clone(),
                    model: e.id.clone(),
                    threshold: EMBEDDING_FILTER_THRESHOLD,
                });
            }
            // Mixture-of-agents: the top-3 models vote. Quality above any
            // single member at the summed cost — a distinct frontier point.
            let top: Vec<_> = catalog
                .chat_models_by_quality()
                .into_iter()
                .take(3)
                .map(|m| m.id.clone())
                .collect();
            if top.len() == 3 {
                out.push(PhysicalOp::EnsembleFilter {
                    predicate: p.clone(),
                    models: top,
                    effort: Effort::Standard,
                });
            }
            out
        }
        LogicalOp::Filter {
            predicate: FilterPredicate::Udf(u),
        } => {
            vec![PhysicalOp::UdfFilter { udf: u.clone() }]
        }
        LogicalOp::Convert {
            target,
            cardinality,
            description,
        } => {
            let mut out = Vec::new();
            for m in catalog.of_kind(ModelKind::Chat) {
                for effort in [Effort::Standard, Effort::High] {
                    out.push(PhysicalOp::LlmConvert {
                        target: target.clone(),
                        cardinality: *cardinality,
                        description: description.clone(),
                        model: m.id.clone(),
                        effort,
                    });
                }
                // The "conventional" per-field strategy (standard effort
                // only: high effort on top of per-field calls is strictly
                // dominated in this cost model).
                out.push(PhysicalOp::FieldwiseConvert {
                    target: target.clone(),
                    cardinality: *cardinality,
                    description: description.clone(),
                    model: m.id.clone(),
                    effort: Effort::Standard,
                });
            }
            out
        }
        LogicalOp::Join {
            dataset,
            condition: JoinCondition::Semantic { criterion },
        } => {
            let mut out = Vec::new();
            for m in catalog.of_kind(ModelKind::Chat) {
                for effort in [Effort::Standard, Effort::High] {
                    out.push(PhysicalOp::LlmJoin {
                        dataset: dataset.clone(),
                        criterion: criterion.clone(),
                        model: m.id.clone(),
                        effort,
                    });
                }
            }
            out
        }
        LogicalOp::Classify {
            labels,
            output_field,
        } => {
            let mut out = Vec::new();
            for m in catalog.of_kind(ModelKind::Chat) {
                for effort in [Effort::Standard, Effort::High] {
                    out.push(PhysicalOp::LlmClassify {
                        labels: labels.clone(),
                        output_field: output_field.clone(),
                        model: m.id.clone(),
                        effort,
                    });
                }
            }
            out
        }
        LogicalOp::Retrieve { query, k } => catalog
            .of_kind(ModelKind::Embedding)
            .map(|m| PhysicalOp::Retrieve {
                query: query.clone(),
                k: *k,
                model: m.id.clone(),
            })
            .collect(),
        other => default_physical(other).into_iter().collect(),
    }
}

/// Exact size of the physical plan space (product of per-op alternative
/// counts), without materializing it.
pub fn plan_space_size(plan: &LogicalPlan, catalog: &Catalog) -> u128 {
    plan.ops
        .iter()
        .map(|op| alternatives(op, catalog).len() as u128)
        .product()
}

/// Materialize up to `cap` physical plans (cartesian product, depth-first,
/// deterministic order).
pub fn enumerate_plans(plan: &LogicalPlan, catalog: &Catalog, cap: usize) -> Vec<PhysicalPlan> {
    let per_op: Vec<Vec<PhysicalOp>> = plan
        .ops
        .iter()
        .map(|op| alternatives(op, catalog))
        .collect();
    let mut out = Vec::new();
    let mut current: Vec<PhysicalOp> = Vec::with_capacity(per_op.len());
    fn rec(
        per_op: &[Vec<PhysicalOp>],
        depth: usize,
        current: &mut Vec<PhysicalOp>,
        out: &mut Vec<PhysicalPlan>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if depth == per_op.len() {
            out.push(PhysicalPlan {
                ops: current.clone(),
            });
            return;
        }
        for alt in &per_op[depth] {
            current.push(alt.clone());
            rec(per_op, depth + 1, current, out, cap);
            current.pop();
            if out.len() >= cap {
                return;
            }
        }
    }
    rec(&per_op, 0, &mut current, &mut out, cap);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldDef;
    use crate::ops::logical::Cardinality;
    use crate::schema::Schema;

    fn catalog() -> Catalog {
        Catalog::builtin()
    }

    fn nl_filter() -> LogicalOp {
        LogicalOp::Filter {
            predicate: FilterPredicate::NaturalLanguage("about cancer".into()),
        }
    }

    fn convert() -> LogicalOp {
        LogicalOp::Convert {
            target: Schema::new("S", "", vec![FieldDef::text("a", "")]).unwrap(),
            cardinality: Cardinality::OneToOne,
            description: String::new(),
        }
    }

    #[test]
    fn filter_alternatives_cover_models_efforts_and_embedding() {
        let alts = alternatives(&nl_filter(), &catalog());
        let chat_models = catalog().of_kind(ModelKind::Chat).count();
        // models × efforts + embedding + 3-model ensemble
        assert_eq!(alts.len(), chat_models * 2 + 2);
        assert!(alts
            .iter()
            .any(|a| matches!(a, PhysicalOp::EmbeddingFilter { .. })));
        assert!(alts
            .iter()
            .any(|a| matches!(a, PhysicalOp::EnsembleFilter { .. })));
    }

    #[test]
    fn udf_filter_single_alternative() {
        let alts = alternatives(
            &LogicalOp::Filter {
                predicate: FilterPredicate::Udf("f".into()),
            },
            &catalog(),
        );
        assert_eq!(alts.len(), 1);
    }

    #[test]
    fn conventional_ops_single_alternative() {
        assert_eq!(
            alternatives(&LogicalOp::Limit { n: 3 }, &catalog()).len(),
            1
        );
        assert_eq!(
            alternatives(
                &LogicalOp::Scan {
                    dataset: "d".into()
                },
                &catalog()
            )
            .len(),
            1
        );
    }

    #[test]
    fn plan_space_is_product() {
        let plan = LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "d".into(),
            },
            nl_filter(),
            convert(),
        ])
        .unwrap();
        let cat = catalog();
        let filters = alternatives(&nl_filter(), &cat).len() as u128;
        let converts = alternatives(&convert(), &cat).len() as u128;
        assert_eq!(plan_space_size(&plan, &cat), filters * converts);
    }

    #[test]
    fn enumerate_matches_space_size() {
        let plan = LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "d".into(),
            },
            nl_filter(),
            convert(),
        ])
        .unwrap();
        let cat = catalog();
        let plans = enumerate_plans(&plan, &cat, 100_000);
        assert_eq!(plans.len() as u128, plan_space_size(&plan, &cat));
        // All plans implement the logical plan and are distinct.
        for p in &plans {
            assert!(p.implements(&plan));
        }
        let mut descs: Vec<String> = plans.iter().map(|p| p.describe()).collect();
        descs.sort();
        descs.dedup();
        assert_eq!(descs.len(), plans.len());
    }

    #[test]
    fn cap_limits_enumeration() {
        let plan = LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "d".into(),
            },
            nl_filter(),
            nl_filter(),
            nl_filter(),
        ])
        .unwrap();
        let plans = enumerate_plans(&plan, &catalog(), 50);
        assert_eq!(plans.len(), 50);
    }

    #[test]
    fn space_grows_exponentially_with_semantic_ops() {
        let cat = catalog();
        let mut ops = vec![LogicalOp::Scan {
            dataset: "d".into(),
        }];
        let mut sizes = Vec::new();
        for _ in 0..3 {
            ops.push(nl_filter());
            let plan = LogicalPlan::new(ops.clone()).unwrap();
            sizes.push(plan_space_size(&plan, &cat));
        }
        assert!(sizes[1] / sizes[0] >= 10);
        assert_eq!(sizes[1] / sizes[0], sizes[2] / sizes[1]);
    }
}
