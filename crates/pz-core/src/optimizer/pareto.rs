//! Pareto-frontier pruning.
//!
//! A plan is *dominated* when another plan is at least as good on all three
//! objectives (cost ↓, time ↓, quality ↑) and strictly better on one. No
//! policy can ever prefer a dominated plan, so they are pruned before
//! ranking. For large plan spaces, [`enumerate_pareto`] interleaves pruning
//! with enumeration: because all alternatives of an operator share the same
//! cardinality model, prefix-dominance is safe and the frontier stays small
//! while the full space grows exponentially (experiment E4).

use crate::ops::logical::LogicalPlan;
use crate::ops::physical::PhysicalPlan;
use crate::optimizer::cost::{estimate_plan_for, CostContext, PlanEstimate};
use crate::optimizer::enumerate::alternatives;
use pz_llm::Catalog;

/// Does `a` dominate `b`?
pub fn dominates(a: &PlanEstimate, b: &PlanEstimate) -> bool {
    let at_least_as_good =
        a.cost_usd <= b.cost_usd && a.time_secs <= b.time_secs && a.quality >= b.quality;
    let strictly_better =
        a.cost_usd < b.cost_usd || a.time_secs < b.time_secs || a.quality > b.quality;
    at_least_as_good && strictly_better
}

/// Keep only non-dominated entries (stable order).
pub fn pareto_front(items: Vec<(PhysicalPlan, PlanEstimate)>) -> Vec<(PhysicalPlan, PlanEstimate)> {
    let mut keep = vec![true; items.len()];
    for i in 0..items.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..items.len() {
            if i != j && keep[j] && dominates(&items[j].1, &items[i].1) {
                keep[i] = false;
                break;
            }
        }
    }
    items
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(it, _)| it)
        .collect()
}

/// Enumerate with prefix-level Pareto pruning: after extending every
/// frontier plan with every alternative of the next operator, dominated
/// prefixes are dropped. Sound because every completion adds identical
/// deltas to plans with equal prefix cardinality state.
pub fn enumerate_pareto(
    plan: &LogicalPlan,
    catalog: &Catalog,
    ctx: &CostContext,
) -> Vec<(PhysicalPlan, PlanEstimate)> {
    enumerate_pareto_for(plan, catalog, ctx, false)
}

/// [`enumerate_pareto`] with a choice of time model: `pipelined` estimates
/// plan time as the bottleneck stage (streaming executor) instead of the
/// sum of stages. Prefix pruning stays sound — the bottleneck of a prefix
/// only grows as operators are appended, monotonically for every
/// completion, just like the sum.
pub fn enumerate_pareto_for(
    plan: &LogicalPlan,
    catalog: &Catalog,
    ctx: &CostContext,
    pipelined: bool,
) -> Vec<(PhysicalPlan, PlanEstimate)> {
    let mut frontier: Vec<PhysicalPlan> = vec![PhysicalPlan { ops: Vec::new() }];
    for op in &plan.ops {
        let alts = alternatives(op, catalog);
        let mut extended: Vec<(PhysicalPlan, PlanEstimate)> = Vec::new();
        for prefix in &frontier {
            for alt in &alts {
                let mut ops = prefix.ops.clone();
                ops.push(alt.clone());
                let p = PhysicalPlan { ops };
                let est = estimate_plan_for(&p, ctx, pipelined);
                extended.push((p, est));
            }
        }
        frontier = pareto_front(extended).into_iter().map(|(p, _)| p).collect();
    }
    frontier
        .into_iter()
        .map(|p| {
            let est = estimate_plan_for(&p, ctx, pipelined);
            (p, est)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::logical::{FilterPredicate, LogicalOp};
    use crate::optimizer::cost::estimate_plan;
    use crate::optimizer::enumerate::enumerate_plans;
    use proptest::prelude::*;

    fn est(cost: f64, time: f64, quality: f64) -> PlanEstimate {
        PlanEstimate {
            cost_usd: cost,
            time_secs: time,
            quality,
            output_cardinality: 1.0,
        }
    }

    fn dummy_plan() -> PhysicalPlan {
        PhysicalPlan { ops: vec![] }
    }

    #[test]
    fn dominance_rules() {
        assert!(dominates(&est(1.0, 1.0, 0.9), &est(2.0, 1.0, 0.9)));
        assert!(dominates(&est(1.0, 1.0, 0.9), &est(1.0, 2.0, 0.8)));
        assert!(!dominates(&est(1.0, 1.0, 0.9), &est(1.0, 1.0, 0.9))); // equal
        assert!(!dominates(&est(1.0, 2.0, 0.9), &est(2.0, 1.0, 0.8))); // tradeoff
    }

    #[test]
    fn front_removes_dominated() {
        let items = vec![
            (dummy_plan(), est(1.0, 1.0, 0.9)),
            (dummy_plan(), est(2.0, 2.0, 0.8)), // dominated
            (dummy_plan(), est(0.5, 3.0, 0.7)), // tradeoff: cheaper
        ];
        let front = pareto_front(items);
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn front_keeps_duplicates_of_equal_points() {
        let items = vec![
            (dummy_plan(), est(1.0, 1.0, 0.9)),
            (dummy_plan(), est(1.0, 1.0, 0.9)),
        ];
        assert_eq!(pareto_front(items).len(), 2);
    }

    fn science_cost_ctx() -> CostContext {
        CostContext {
            catalog: Catalog::builtin(),
            input_cardinality: 100.0,
            avg_record_tokens: 500.0,
            build_cardinality: Default::default(),
            calibration: None,
            workers: 1,
        }
    }

    fn chain(n_filters: usize) -> LogicalPlan {
        let mut ops = vec![LogicalOp::Scan {
            dataset: "d".into(),
        }];
        for i in 0..n_filters {
            ops.push(LogicalOp::Filter {
                predicate: FilterPredicate::NaturalLanguage(format!("predicate {i}")),
            });
        }
        LogicalPlan::new(ops).unwrap()
    }

    #[test]
    fn pruned_enumeration_matches_exhaustive_frontier() {
        let plan = chain(2);
        let cat = Catalog::builtin();
        let ctx = science_cost_ctx();
        let exhaustive: Vec<(PhysicalPlan, PlanEstimate)> =
            enumerate_plans(&plan, &cat, usize::MAX)
                .into_iter()
                .map(|p| {
                    let e = estimate_plan(&p, &ctx);
                    (p, e)
                })
                .collect();
        let full_front = pareto_front(exhaustive);
        let pruned = enumerate_pareto(&plan, &cat, &ctx);
        // Same frontier *estimates* (plans may tie).
        let mut a: Vec<String> = full_front
            .iter()
            .map(|(_, e)| format!("{:.6}|{:.4}|{:.4}", e.cost_usd, e.time_secs, e.quality))
            .collect();
        let mut b: Vec<String> = pruned
            .iter()
            .map(|(_, e)| format!("{:.6}|{:.4}|{:.4}", e.cost_usd, e.time_secs, e.quality))
            .collect();
        a.sort();
        a.dedup();
        b.sort();
        b.dedup();
        assert_eq!(a, b);
    }

    #[test]
    fn frontier_stays_small_as_space_explodes() {
        let cat = Catalog::builtin();
        let ctx = science_cost_ctx();
        let f3 = enumerate_pareto(&chain(3), &cat, &ctx).len();
        let f5 = enumerate_pareto(&chain(5), &cat, &ctx).len();
        // Full spaces: 13^3 = 2197, 13^5 = 371293. Frontiers stay tiny.
        assert!(f3 < 200, "frontier {f3}");
        assert!(f5 < 2000, "frontier {f5}");
    }

    proptest! {
        #[test]
        fn front_never_contains_dominated_pair(
            points in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.1f64..1.0), 1..30)
        ) {
            let items: Vec<(PhysicalPlan, PlanEstimate)> = points
                .into_iter()
                .map(|(c, t, q)| (dummy_plan(), est(c, t, q)))
                .collect();
            let front = pareto_front(items);
            for i in 0..front.len() {
                for j in 0..front.len() {
                    if i != j {
                        prop_assert!(!dominates(&front[j].1, &front[i].1));
                    }
                }
            }
        }

        #[test]
        fn every_input_is_on_front_or_dominated(
            points in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.1f64..1.0), 1..20)
        ) {
            let items: Vec<(PhysicalPlan, PlanEstimate)> = points
                .iter()
                .map(|&(c, t, q)| (dummy_plan(), est(c, t, q)))
                .collect();
            let front = pareto_front(items.clone());
            for (_, e) in &items {
                let on_front = front.iter().any(|(_, f)| f == e);
                let dominated = front.iter().any(|(_, f)| dominates(f, e));
                prop_assert!(on_front || dominated);
            }
        }
    }
}
