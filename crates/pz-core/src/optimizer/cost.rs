//! Cost model: per-operator and per-plan estimates of dollar cost, virtual
//! runtime, and output quality.
//!
//! Estimates compose along the chain: each operator transforms the running
//! (cardinality, avg-tokens-per-record) state and contributes cost/time;
//! quality multiplies across semantic operators (an error anywhere corrupts
//! the output). Defaults are deliberately coarse — that is what sentinel
//! calibration (E9) is for.

use crate::context::PzContext;
use crate::error::{PzError, PzResult};
use crate::ops::logical::{Cardinality, LogicalPlan};
use crate::ops::physical::{PhysicalOp, PhysicalPlan};
use pz_llm::protocol::Effort;
use pz_llm::{count_tokens, Catalog};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default assumed selectivity of a semantic filter.
pub const DEFAULT_FILTER_SELECTIVITY: f64 = 0.5;
/// Default assumed fan-out of a one-to-many convert.
pub const DEFAULT_CONVERT_FANOUT: f64 = 1.3;
/// Assumed quality of the embedding-similarity filter strategy.
pub const EMBEDDING_FILTER_QUALITY: f64 = 0.72;
/// Default assumed match rate of a join per (left, right) pair.
pub const DEFAULT_JOIN_SELECTIVITY: f64 = 0.1;
/// Assumed build-side cardinality when the registry is unavailable to the
/// estimator (plans against a live context measure it instead).
pub const DEFAULT_BUILD_CARDINALITY: f64 = 20.0;
/// Output tokens produced per extracted field.
const TOKENS_PER_FIELD: f64 = 12.0;
/// Virtual CPU seconds per record for conventional operators (mirrors the
/// executor's charge).
const CPU_SECS_PER_RECORD: f64 = 0.000_05;

/// Measurements from sentinel calibration, overriding the defaults.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Observed selectivity per logical op index.
    pub selectivity: BTreeMap<usize, f64>,
    /// Observed fan-out per logical op index (converts).
    pub fanout: BTreeMap<usize, f64>,
    /// Observed agreement-with-champion per (op index, model id).
    pub quality: BTreeMap<(usize, String), f64>,
    /// Observed average record size in tokens at the source.
    pub avg_record_tokens: Option<f64>,
}

/// Inputs the cost model needs.
#[derive(Clone, Debug)]
pub struct CostContext {
    pub catalog: Catalog,
    /// Source cardinality.
    pub input_cardinality: f64,
    /// Average record size in tokens at the source.
    pub avg_record_tokens: f64,
    /// Cardinality of join build sides, keyed by dataset name (measured
    /// from the registry when built via [`CostContext::from_context`]).
    pub build_cardinality: BTreeMap<String, f64>,
    pub calibration: Option<Calibration>,
    /// Intra-operator worker-pool size the executor will use for
    /// streaming stages. With `pipelined` estimation, a per-record LLM
    /// stage's time divides by `min(workers, records)` clamped by the
    /// model's rate limit (`ModelCard::max_concurrency`). `1` = serial.
    pub workers: usize,
}

impl CostContext {
    /// Build from a runtime context: cardinality from the source hint,
    /// record size by sampling the first few records.
    pub fn from_context(ctx: &PzContext, plan: &LogicalPlan) -> PzResult<Self> {
        let src = ctx.registry.get(plan.dataset())?;
        let records = src
            .records(0)
            .map_err(|e| PzError::Optimizer(format!("cannot sample source for costing: {e}")))?;
        let n = records.len();
        let sample: Vec<usize> = records
            .iter()
            .take(5)
            .map(|r| count_tokens(&r.prompt_text()))
            .collect();
        let avg = if sample.is_empty() {
            200.0
        } else {
            sample.iter().sum::<usize>() as f64 / sample.len() as f64
        };
        // Measure build-side cardinalities for every join in the plan.
        let mut build_cardinality = BTreeMap::new();
        for op in &plan.ops {
            if let crate::ops::logical::LogicalOp::Join { dataset, .. }
            | crate::ops::logical::LogicalOp::Union { dataset } = op
            {
                if let Ok(src) = ctx.registry.get(dataset) {
                    let n = src
                        .cardinality_hint()
                        .or_else(|| src.records(0).ok().map(|r| r.len()))
                        .unwrap_or(DEFAULT_BUILD_CARDINALITY as usize);
                    build_cardinality.insert(dataset.clone(), n as f64);
                }
            }
        }
        Ok(Self {
            catalog: ctx.catalog.clone(),
            input_cardinality: n as f64,
            avg_record_tokens: avg,
            build_cardinality,
            calibration: None,
            workers: 1,
        })
    }

    /// Build from a runtime context and a *physical* plan: same sampling as
    /// [`CostContext::from_context`], reading the scan dataset and the
    /// join/union build sides off physical operators instead of logical
    /// ones. Used by the adaptive controller, which re-costs plan suffixes
    /// mid-execution where only the physical plan exists.
    pub fn from_physical_plan(ctx: &PzContext, plan: &PhysicalPlan) -> PzResult<Self> {
        let dataset = plan
            .ops
            .iter()
            .find_map(|op| match op {
                PhysicalOp::Scan { dataset } => Some(dataset.as_str()),
                _ => None,
            })
            .ok_or_else(|| PzError::Optimizer("plan has no scan to sample for costing".into()))?;
        let src = ctx.registry.get(dataset)?;
        let records = src
            .records(0)
            .map_err(|e| PzError::Optimizer(format!("cannot sample source for costing: {e}")))?;
        let n = records.len();
        let sample: Vec<usize> = records
            .iter()
            .take(5)
            .map(|r| count_tokens(&r.prompt_text()))
            .collect();
        let avg = if sample.is_empty() {
            200.0
        } else {
            sample.iter().sum::<usize>() as f64 / sample.len() as f64
        };
        let mut build_cardinality = BTreeMap::new();
        for op in &plan.ops {
            if let PhysicalOp::HashJoin { dataset, .. }
            | PhysicalOp::LlmJoin { dataset, .. }
            | PhysicalOp::UnionAll { dataset } = op
            {
                if let Ok(src) = ctx.registry.get(dataset) {
                    let n = src
                        .cardinality_hint()
                        .or_else(|| src.records(0).ok().map(|r| r.len()))
                        .unwrap_or(DEFAULT_BUILD_CARDINALITY as usize);
                    build_cardinality.insert(dataset.clone(), n as f64);
                }
            }
        }
        Ok(Self {
            catalog: ctx.catalog.clone(),
            input_cardinality: n as f64,
            avg_record_tokens: avg,
            build_cardinality,
            calibration: None,
            workers: 1,
        })
    }

    fn build_side(&self, dataset: &str) -> f64 {
        self.build_cardinality
            .get(dataset)
            .copied()
            .unwrap_or(DEFAULT_BUILD_CARDINALITY)
    }

    fn selectivity(&self, op_idx: usize) -> f64 {
        self.selectivity_or(op_idx, DEFAULT_FILTER_SELECTIVITY)
    }

    fn selectivity_or(&self, op_idx: usize, default: f64) -> f64 {
        self.calibration
            .as_ref()
            .and_then(|c| c.selectivity.get(&op_idx).copied())
            .unwrap_or(default)
    }

    fn fanout(&self, op_idx: usize) -> f64 {
        self.calibration
            .as_ref()
            .and_then(|c| c.fanout.get(&op_idx).copied())
            .unwrap_or(DEFAULT_CONVERT_FANOUT)
    }

    fn quality_override(&self, op_idx: usize, model: &str) -> Option<f64> {
        self.calibration
            .as_ref()
            .and_then(|c| c.quality.get(&(op_idx, model.to_string())).copied())
    }

    fn source_tokens(&self) -> f64 {
        self.calibration
            .as_ref()
            .and_then(|c| c.avg_record_tokens)
            .unwrap_or(self.avg_record_tokens)
    }
}

/// Estimated totals for one plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanEstimate {
    pub cost_usd: f64,
    pub time_secs: f64,
    /// Expected output quality in (0, 1]: product of semantic-op qualities.
    pub quality: f64,
    pub output_cardinality: f64,
}

/// The optimizer's per-operator predictions, retained from the chosen
/// plan's estimate so the drift report can compare them against observed
/// `OperatorStats` after execution.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OperatorEstimate {
    pub physical: String,
    pub model: Option<String>,
    pub input_cardinality: f64,
    pub output_cardinality: f64,
    pub cost_usd: f64,
    /// Predicted operator time (after any worker-pool divisor).
    pub time_secs: f64,
    /// Predicted provider calls (fractional: cardinalities are estimates).
    pub llm_calls: f64,
    /// Predicted total tokens (input + output) across those calls.
    pub tokens: f64,
}

impl OperatorEstimate {
    /// Predicted selectivity (output/input); 1.0 for a source operator.
    pub fn selectivity(&self) -> f64 {
        if self.input_cardinality <= 0.0 {
            1.0
        } else {
            self.output_cardinality / self.input_cardinality
        }
    }
}

/// Probability a strict-majority vote of *independent* judges with
/// per-judge accuracies `qs` is correct (ties count as wrong). Computed by
/// dynamic programming over the count of correct votes.
pub fn majority_quality(qs: &[f64]) -> f64 {
    if qs.is_empty() {
        return 0.0;
    }
    // dist[k] = probability exactly k judges are correct.
    let mut dist = vec![1.0f64];
    for &q in qs {
        let mut next = vec![0.0; dist.len() + 1];
        for (k, p) in dist.iter().enumerate() {
            next[k] += p * (1.0 - q);
            next[k + 1] += p * q;
        }
        dist = next;
    }
    dist.iter()
        .enumerate()
        .filter(|(k, _)| k * 2 > qs.len())
        .map(|(_, p)| p)
        .sum()
}

/// Majority-vote quality under the simulator's correlated-error model
/// (`pz_llm::sim::ERROR_CORRELATION`): each judge errs when a *shared*
/// record-difficulty draw falls inside its shared error budget
/// (`rho·(1-q)`) or an independent draw falls inside `(1-rho)·(1-q)`.
/// Weaker judges err on a superset of hard records, so voting helps much
/// less than independence predicts — exactly the published finding on
/// LLM ensembles.
pub fn ensemble_quality(qs: &[f64], rho: f64) -> f64 {
    if qs.is_empty() {
        return 0.0;
    }
    let shared: Vec<f64> = qs.iter().map(|q| rho * (1.0 - q)).collect();
    let indep: Vec<f64> = qs.iter().map(|q| (1.0 - rho) * (1.0 - q)).collect();
    // Integrate over the shared-difficulty draw: breakpoints at each
    // judge's shared budget. Within a segment, a fixed subset errs from
    // the shared draw; the rest err independently.
    let mut cuts: Vec<f64> = shared.clone();
    cuts.push(0.0);
    cuts.push(1.0);
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();
    let mut correct = 0.0;
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi <= lo {
            continue;
        }
        let mid = (lo + hi) / 2.0;
        // dist[k] = P(exactly k errors) given the shared draw is `mid`.
        let mut dist = vec![1.0f64];
        for (s, d) in shared.iter().zip(&indep) {
            let e = if mid < *s { 1.0 } else { *d };
            let mut next = vec![0.0; dist.len() + 1];
            for (k, p) in dist.iter().enumerate() {
                next[k] += p * (1.0 - e);
                next[k + 1] += p * e;
            }
            dist = next;
        }
        let p_correct: f64 = dist
            .iter()
            .enumerate()
            .filter(|(k, _)| k * 2 < qs.len()) // strict majority of *correct*
            .map(|(_, p)| p)
            .sum();
        correct += (hi - lo) * p_correct;
    }
    correct
}

/// Effort-adjusted quality, mirroring the simulator's boost.
pub fn effective_quality(base: f64, effort: Effort) -> f64 {
    match effort {
        Effort::Standard => base,
        Effort::High => base + (1.0 - base) * 0.5,
    }
}

fn effort_multiplier(effort: Effort) -> f64 {
    match effort {
        Effort::Standard => 1.0,
        Effort::High => 2.0,
    }
}

/// Estimate a full physical plan under materializing execution (plan time
/// is the sum of operator times).
pub fn estimate_plan(plan: &PhysicalPlan, ctx: &CostContext) -> PlanEstimate {
    estimate_plan_for(plan, ctx, false)
}

/// Estimate a full physical plan. With `pipelined`, plan time models the
/// streaming executor: stages overlap on the virtual clock, so total time
/// is driven by the bottleneck stage rather than the sum of stages. Cost,
/// quality, and cardinality are mode-independent.
pub fn estimate_plan_for(plan: &PhysicalPlan, ctx: &CostContext, pipelined: bool) -> PlanEstimate {
    estimate_plan_detailed(plan, ctx, pipelined).0
}

/// [`estimate_plan_for`] plus the per-operator breakdown — the totals are
/// produced by the same single pass, so they always agree.
pub fn estimate_plan_detailed(
    plan: &PhysicalPlan,
    ctx: &CostContext,
    pipelined: bool,
) -> (PlanEstimate, Vec<OperatorEstimate>) {
    let mut details: Vec<OperatorEstimate> = Vec::with_capacity(plan.ops.len());
    let mut card = 0.0f64;
    let mut tokens = ctx.source_tokens();
    let mut bottleneck = 0.0f64;
    let mut est = PlanEstimate {
        quality: 1.0,
        ..Default::default()
    };

    // Streaming worker pools divide a per-batch stage's time by the pool
    // size, clamped by how many records there are to overlap and by the
    // slowest member model's published rate limit
    // (`ModelCard::max_concurrency`). Cost and quality are unaffected:
    // the pool changes *when* calls overlap on the virtual clock, not how
    // many calls are made.
    let parallel_divisor = |model_ids: &[&pz_llm::ModelId], records: f64| -> f64 {
        if !pipelined || ctx.workers <= 1 {
            return 1.0;
        }
        let rate_cap = model_ids
            .iter()
            .filter_map(|id| ctx.catalog.get(id))
            .map(|m| m.concurrency_cap())
            .min()
            .unwrap_or(usize::MAX);
        let w = ctx.workers.min(rate_cap).max(1) as f64;
        w.min(records.ceil().max(1.0))
    };

    for (idx, op) in plan.ops.iter().enumerate() {
        let time_before = est.time_secs;
        let card_before = card;
        let cost_before = est.cost_usd;
        let mut op_calls = 0.0f64;
        let mut op_tokens = 0.0f64;
        match op {
            PhysicalOp::Scan { .. } => {
                card = ctx.input_cardinality;
                est.time_secs += card * CPU_SECS_PER_RECORD;
            }
            PhysicalOp::LlmFilter {
                predicate,
                model,
                effort,
            } => {
                if let Some(m) = ctx.catalog.get(model) {
                    let raw_tokens =
                        (tokens + count_tokens(predicate) as f64).min(m.context_window as f64);
                    let in_tokens = raw_tokens * effort_multiplier(*effort);
                    est.cost_usd += card * m.cost_usd(in_tokens as usize, 1);
                    est.time_secs +=
                        card * m.latency_secs(raw_tokens as usize, 1) * effort_multiplier(*effort);
                    op_calls = card;
                    op_tokens = card * (in_tokens + 1.0);
                    let q = ctx
                        .quality_override(idx, model.as_str())
                        .unwrap_or_else(|| effective_quality(m.quality, *effort));
                    est.quality *= q;
                }
                card *= ctx.selectivity(idx);
            }
            PhysicalOp::EnsembleFilter {
                predicate,
                models,
                effort,
            } => {
                let mut member_q = Vec::with_capacity(models.len());
                for model in models {
                    if let Some(m) = ctx.catalog.get(model) {
                        let raw_tokens =
                            (tokens + count_tokens(predicate) as f64).min(m.context_window as f64);
                        let in_tokens = raw_tokens * effort_multiplier(*effort);
                        est.cost_usd += card * m.cost_usd(in_tokens as usize, 1);
                        est.time_secs += card
                            * m.latency_secs(raw_tokens as usize, 1)
                            * effort_multiplier(*effort);
                        op_calls += card;
                        op_tokens += card * (in_tokens + 1.0);
                        member_q.push(
                            ctx.quality_override(idx, model.as_str())
                                .unwrap_or_else(|| effective_quality(m.quality, *effort)),
                        );
                    }
                }
                est.quality *= ensemble_quality(&member_q, pz_llm::sim::ERROR_CORRELATION);
                card *= ctx.selectivity(idx);
            }
            PhysicalOp::EmbeddingFilter { model, .. } => {
                if let Some(m) = ctx.catalog.get(model) {
                    est.cost_usd += card * m.cost_usd(tokens as usize, 0);
                    est.time_secs += card * m.latency_secs(tokens as usize, 0);
                    op_calls = card;
                    op_tokens = card * tokens;
                }
                est.quality *= ctx
                    .quality_override(idx, model.as_str())
                    .unwrap_or(EMBEDDING_FILTER_QUALITY);
                card *= ctx.selectivity(idx);
            }
            PhysicalOp::UdfFilter { .. } => {
                est.time_secs += card * CPU_SECS_PER_RECORD;
                card *= ctx.selectivity(idx);
            }
            PhysicalOp::LlmConvert {
                target,
                cardinality,
                model,
                effort,
                ..
            } => {
                let fanout = match cardinality {
                    Cardinality::OneToOne => 1.0,
                    Cardinality::OneToMany => ctx.fanout(idx),
                };
                let out_tokens = target.fields.len() as f64 * TOKENS_PER_FIELD * fanout;
                if let Some(m) = ctx.catalog.get(model) {
                    let raw_tokens = (tokens + 30.0).min(m.context_window as f64);
                    let in_tokens = raw_tokens * effort_multiplier(*effort);
                    est.cost_usd += card * m.cost_usd(in_tokens as usize, out_tokens as usize);
                    est.time_secs += card
                        * m.latency_secs(raw_tokens as usize, out_tokens as usize)
                        * effort_multiplier(*effort);
                    op_calls = card;
                    op_tokens = card * (in_tokens + out_tokens);
                    let q = ctx
                        .quality_override(idx, model.as_str())
                        .unwrap_or_else(|| effective_quality(m.quality, *effort));
                    est.quality *= q;
                }
                card *= fanout;
                tokens = target.fields.len() as f64 * TOKENS_PER_FIELD;
            }
            PhysicalOp::FieldwiseConvert {
                target,
                cardinality,
                model,
                effort,
                ..
            } => {
                let fanout = match cardinality {
                    Cardinality::OneToOne => 1.0,
                    Cardinality::OneToMany => ctx.fanout(idx),
                };
                let n_fields = target.fields.len().max(1) as f64;
                // One call per field: each pays the full input again but a
                // smaller output. Focused prompts raise per-field accuracy.
                let out_tokens = TOKENS_PER_FIELD * fanout;
                if let Some(m) = ctx.catalog.get(model) {
                    let raw_tokens = (tokens + 30.0).min(m.context_window as f64);
                    let in_tokens = raw_tokens * effort_multiplier(*effort);
                    est.cost_usd +=
                        card * n_fields * m.cost_usd(in_tokens as usize, out_tokens as usize);
                    est.time_secs += card
                        * n_fields
                        * m.latency_secs(raw_tokens as usize, out_tokens as usize)
                        * effort_multiplier(*effort);
                    op_calls = card * n_fields;
                    op_tokens = card * n_fields * (in_tokens + out_tokens);
                    let base_q = ctx
                        .quality_override(idx, model.as_str())
                        .unwrap_or_else(|| effective_quality(m.quality, *effort));
                    // Focused prompts: per-field error rate drops by a
                    // quarter — but one-to-many positional zipping loses
                    // alignment, costing quality back for multi-object
                    // outputs.
                    let focused = base_q + (1.0 - base_q) * 0.25;
                    let q = match cardinality {
                        Cardinality::OneToOne => focused,
                        Cardinality::OneToMany => focused * 0.92,
                    };
                    est.quality *= q;
                }
                card *= fanout;
                tokens = target.fields.len() as f64 * TOKENS_PER_FIELD;
            }
            PhysicalOp::LlmClassify {
                labels,
                model,
                effort,
                ..
            } => {
                if let Some(m) = ctx.catalog.get(model) {
                    let label_tokens: f64 = labels.iter().map(|l| count_tokens(l) as f64).sum();
                    let raw_tokens = (tokens + label_tokens).min(m.context_window as f64);
                    let in_tokens = raw_tokens * effort_multiplier(*effort);
                    est.cost_usd += card * m.cost_usd(in_tokens as usize, 4);
                    est.time_secs +=
                        card * m.latency_secs(raw_tokens as usize, 4) * effort_multiplier(*effort);
                    op_calls = card;
                    op_tokens = card * (in_tokens + 4.0);
                    let q = ctx
                        .quality_override(idx, model.as_str())
                        .unwrap_or_else(|| effective_quality(m.quality, *effort));
                    est.quality *= q;
                }
                // Classification drops nothing; records just gain a field.
            }
            PhysicalOp::Map { .. } | PhysicalOp::Sort { .. } => {
                est.time_secs += card * CPU_SECS_PER_RECORD;
            }
            PhysicalOp::Project { fields } => {
                est.time_secs += card * CPU_SECS_PER_RECORD;
                tokens = (tokens * 0.5).min(fields.len() as f64 * TOKENS_PER_FIELD * 2.0);
            }
            PhysicalOp::Limit { n } => {
                card = card.min(*n as f64);
            }
            PhysicalOp::Distinct { .. } => {
                est.time_secs += card * CPU_SECS_PER_RECORD;
                card *= 0.9;
            }
            PhysicalOp::Aggregate { group_by, .. } => {
                est.time_secs += card * CPU_SECS_PER_RECORD;
                card = if group_by.is_empty() {
                    1.0
                } else {
                    card.sqrt().max(1.0)
                };
                tokens = 24.0;
            }
            PhysicalOp::UnionAll { dataset } => {
                let other = ctx.build_side(dataset);
                est.time_secs += other * CPU_SECS_PER_RECORD;
                card += other;
            }
            PhysicalOp::HashJoin { dataset, .. } => {
                let right = ctx.build_side(dataset);
                est.time_secs += (card + right) * CPU_SECS_PER_RECORD;
                card *= right * DEFAULT_JOIN_SELECTIVITY;
                tokens *= 2.0;
            }
            PhysicalOp::LlmJoin {
                dataset,
                criterion,
                model,
                effort,
            } => {
                let right = ctx.build_side(dataset);
                let pairs = card * right;
                if let Some(m) = ctx.catalog.get(model) {
                    let raw_tokens = (2.0 * tokens + count_tokens(criterion) as f64)
                        .min(m.context_window as f64);
                    let in_tokens = raw_tokens * effort_multiplier(*effort);
                    est.cost_usd += pairs * m.cost_usd(in_tokens as usize, 1);
                    est.time_secs +=
                        pairs * m.latency_secs(raw_tokens as usize, 1) * effort_multiplier(*effort);
                    op_calls = pairs;
                    op_tokens = pairs * (in_tokens + 1.0);
                    let q = ctx
                        .quality_override(idx, model.as_str())
                        .unwrap_or_else(|| effective_quality(m.quality, *effort));
                    est.quality *= q;
                }
                card = pairs * ctx.selectivity_or(idx, DEFAULT_JOIN_SELECTIVITY);
                tokens *= 2.0;
            }
            PhysicalOp::Retrieve { k, model, .. } => {
                if let Some(m) = ctx.catalog.get(model) {
                    let total_tokens = card * tokens;
                    est.cost_usd += m.cost_usd(total_tokens as usize, 0);
                    est.time_secs += m.latency_secs(total_tokens as usize, 0);
                    op_calls = 1.0;
                    op_tokens = total_tokens;
                }
                est.quality *= 0.9;
                card = card.min(*k as f64);
            }
        }
        // Worker pools apply to per-batch stages only; blocking stages
        // (scan, sort, aggregate, retrieve) and limits run single-threaded.
        let divisor = match op {
            PhysicalOp::LlmFilter { model, .. }
            | PhysicalOp::EmbeddingFilter { model, .. }
            | PhysicalOp::LlmConvert { model, .. }
            | PhysicalOp::FieldwiseConvert { model, .. }
            | PhysicalOp::LlmClassify { model, .. }
            | PhysicalOp::LlmJoin { model, .. } => parallel_divisor(&[model], card_before),
            PhysicalOp::EnsembleFilter { models, .. } => {
                parallel_divisor(&models.iter().collect::<Vec<_>>(), card_before)
            }
            PhysicalOp::UdfFilter { .. }
            | PhysicalOp::Map { .. }
            | PhysicalOp::Project { .. }
            | PhysicalOp::HashJoin { .. } => parallel_divisor(&[], card_before),
            _ => 1.0,
        };
        if divisor > 1.0 {
            est.time_secs = time_before + (est.time_secs - time_before) / divisor;
        }
        bottleneck = bottleneck.max(est.time_secs - time_before);
        details.push(OperatorEstimate {
            physical: op.describe(),
            model: op.model().map(|m| m.to_string()),
            input_cardinality: card_before,
            output_cardinality: card,
            cost_usd: est.cost_usd - cost_before,
            time_secs: est.time_secs - time_before,
            llm_calls: op_calls,
            tokens: op_tokens,
        });
    }
    est.output_cardinality = card;
    if pipelined {
        est.time_secs = bottleneck;
    }
    (est, details)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldDef;
    use crate::schema::Schema;
    use proptest::prelude::*;

    fn ctx() -> CostContext {
        CostContext {
            catalog: Catalog::builtin(),
            input_cardinality: 100.0,
            avg_record_tokens: 500.0,
            build_cardinality: Default::default(),
            calibration: None,
            workers: 1,
        }
    }

    fn filter_plan(model: &str, effort: Effort) -> PhysicalPlan {
        PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "d".into(),
                },
                PhysicalOp::LlmFilter {
                    predicate: "about cancer".into(),
                    model: model.into(),
                    effort,
                },
            ],
        }
    }

    #[test]
    fn premium_model_estimated_costlier_and_better() {
        let c = ctx();
        let big = estimate_plan(&filter_plan("gpt-4o", Effort::Standard), &c);
        let small = estimate_plan(&filter_plan("gpt-4o-mini", Effort::Standard), &c);
        assert!(big.cost_usd > small.cost_usd);
        assert!(big.quality > small.quality);
    }

    #[test]
    fn high_effort_costs_double_and_boosts_quality() {
        let c = ctx();
        let std = estimate_plan(&filter_plan("gpt-4o", Effort::Standard), &c);
        let high = estimate_plan(&filter_plan("gpt-4o", Effort::High), &c);
        assert!(high.cost_usd > std.cost_usd * 1.8);
        assert!(high.quality > std.quality);
    }

    #[test]
    fn embedding_filter_cheapest_worst() {
        let c = ctx();
        let emb = estimate_plan(
            &PhysicalPlan {
                ops: vec![
                    PhysicalOp::Scan {
                        dataset: "d".into(),
                    },
                    PhysicalOp::EmbeddingFilter {
                        predicate: "p".into(),
                        model: "text-embedding-3-small".into(),
                        threshold: 0.3,
                    },
                ],
            },
            &c,
        );
        let llm = estimate_plan(&filter_plan("llama-3-8b", Effort::Standard), &c);
        assert!(emb.cost_usd < llm.cost_usd / 3.0);
        assert!(emb.quality <= llm.quality);
    }

    #[test]
    fn selectivity_compounds_cardinality() {
        let c = ctx();
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "d".into(),
                },
                PhysicalOp::UdfFilter { udf: "a".into() },
                PhysicalOp::UdfFilter { udf: "b".into() },
            ],
        };
        let est = estimate_plan(&plan, &c);
        assert!((est.output_cardinality - 25.0).abs() < 1e-9);
    }

    #[test]
    fn second_filter_cheaper_than_first() {
        // Cost of an LLM filter after another filter reflects the reduced
        // cardinality.
        let c = ctx();
        let single = estimate_plan(&filter_plan("gpt-4o", Effort::Standard), &c);
        let double = estimate_plan(
            &PhysicalPlan {
                ops: vec![
                    PhysicalOp::Scan {
                        dataset: "d".into(),
                    },
                    PhysicalOp::UdfFilter {
                        udf: "cheap".into(),
                    },
                    PhysicalOp::LlmFilter {
                        predicate: "about cancer".into(),
                        model: "gpt-4o".into(),
                        effort: Effort::Standard,
                    },
                ],
            },
            &c,
        );
        assert!(double.cost_usd < single.cost_usd * 0.6);
    }

    #[test]
    fn pipelined_estimate_is_bottleneck_not_sum() {
        let c = ctx();
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "d".into(),
                },
                PhysicalOp::LlmFilter {
                    predicate: "about cancer".into(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
                PhysicalOp::LlmFilter {
                    predicate: "uses public data".into(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
            ],
        };
        let mat = estimate_plan_for(&plan, &c, false);
        let pipe = estimate_plan_for(&plan, &c, true);
        // Overlap: strictly less than the sum, at least the largest stage.
        assert!(pipe.time_secs < mat.time_secs);
        assert!(pipe.time_secs > 0.0);
        // Everything but time is mode-independent.
        assert_eq!(pipe.cost_usd, mat.cost_usd);
        assert_eq!(pipe.quality, mat.quality);
        assert_eq!(pipe.output_cardinality, mat.output_cardinality);
    }

    #[test]
    fn parallel_workers_divide_pipelined_llm_time() {
        let serial = ctx();
        let mut pooled = ctx();
        pooled.workers = 4;
        let plan = filter_plan("gpt-4o", Effort::Standard);
        let base = estimate_plan_for(&plan, &serial, true);
        let par = estimate_plan_for(&plan, &pooled, true);
        // 100 input records, 4 workers, gpt-4o rate cap 8: full 4x on the
        // LLM bottleneck stage.
        assert!((par.time_secs - base.time_secs / 4.0).abs() < base.time_secs * 1e-9);
        // Pools change when calls overlap, not how many are made.
        assert_eq!(par.cost_usd, base.cost_usd);
        assert_eq!(par.quality, base.quality);
        assert_eq!(par.output_cardinality, base.output_cardinality);
        // Materializing estimates ignore workers entirely.
        assert_eq!(
            estimate_plan_for(&plan, &pooled, false).time_secs,
            estimate_plan_for(&plan, &serial, false).time_secs
        );
    }

    #[test]
    fn parallel_workers_clamped_by_rate_limit_and_records() {
        let plan = filter_plan("gpt-4o", Effort::Standard);
        // gpt-4o publishes max_concurrency 8: 32 requested workers clamp to 8.
        let mut want8 = ctx();
        want8.workers = 32;
        let mut at8 = ctx();
        at8.workers = 8;
        assert_eq!(
            estimate_plan_for(&plan, &want8, true).time_secs,
            estimate_plan_for(&plan, &at8, true).time_secs
        );
        // Two records can overlap at most two ways, however many workers.
        let mut tiny = ctx();
        tiny.input_cardinality = 2.0;
        let mut tiny_pool = tiny.clone();
        tiny_pool.workers = 8;
        let base = estimate_plan_for(&plan, &tiny, true);
        let par = estimate_plan_for(&plan, &tiny_pool, true);
        assert!((par.time_secs - base.time_secs / 2.0).abs() < base.time_secs * 1e-9);
    }

    #[test]
    fn convert_fanout_and_tokens() {
        let c = ctx();
        let schema = Schema::new(
            "S",
            "",
            vec![FieldDef::text("a", ""), FieldDef::text("b", "")],
        )
        .unwrap();
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "d".into(),
                },
                PhysicalOp::LlmConvert {
                    target: schema,
                    cardinality: Cardinality::OneToMany,
                    description: String::new(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
            ],
        };
        let est = estimate_plan(&plan, &c);
        assert!((est.output_cardinality - 130.0).abs() < 1e-6);
        assert!(est.cost_usd > 0.0);
        assert!(est.quality < 1.0);
    }

    #[test]
    fn limit_caps_cardinality() {
        let c = ctx();
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "d".into(),
                },
                PhysicalOp::Limit { n: 7 },
            ],
        };
        assert_eq!(estimate_plan(&plan, &c).output_cardinality, 7.0);
    }

    #[test]
    fn calibration_overrides_defaults() {
        let mut c = ctx();
        let mut calib = Calibration::default();
        calib.selectivity.insert(1, 0.1);
        calib.quality.insert((1, "gpt-4o".to_string()), 0.5);
        c.calibration = Some(calib);
        let est = estimate_plan(&filter_plan("gpt-4o", Effort::Standard), &c);
        assert!((est.output_cardinality - 10.0).abs() < 1e-9);
        assert!((est.quality - 0.5).abs() < 1e-9);
    }

    #[test]
    fn quality_multiplies_across_ops() {
        let c = ctx();
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "d".into(),
                },
                PhysicalOp::LlmFilter {
                    predicate: "p".into(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
                PhysicalOp::LlmFilter {
                    predicate: "q".into(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
            ],
        };
        let est = estimate_plan(&plan, &c);
        let single = estimate_plan(&filter_plan("gpt-4o", Effort::Standard), &c);
        assert!((est.quality - single.quality * single.quality).abs() < 1e-9);
    }

    #[test]
    fn ensemble_quality_correlation_effects() {
        // rho = 0: reduces to the independent majority.
        let qs = [0.8, 0.8, 0.8];
        assert!((ensemble_quality(&qs, 0.0) - majority_quality(&qs)).abs() < 1e-9);
        // rho = 1: fully nested difficulty — the vote errs whenever the
        // second-weakest judge errs, so quality equals the 2nd-best q.
        assert!((ensemble_quality(&[0.9, 0.8, 0.7], 1.0) - 0.8).abs() < 1e-9);
        // Monotone: more correlation, less benefit.
        let lo = ensemble_quality(&qs, 0.2);
        let hi = ensemble_quality(&qs, 0.8);
        assert!(lo > hi, "{lo} vs {hi}");
        assert_eq!(ensemble_quality(&[], 0.5), 0.0);
    }

    #[test]
    fn majority_quality_math() {
        // Unanimous perfection.
        assert!((majority_quality(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // Single judge: majority = that judge.
        assert!((majority_quality(&[0.8]) - 0.8).abs() < 1e-12);
        // Three independent 0.8 judges: 0.8^3 + 3·0.8²·0.2 = 0.896.
        assert!((majority_quality(&[0.8, 0.8, 0.8]) - 0.896).abs() < 1e-12);
        // Majority of equals beats the individual.
        assert!(majority_quality(&[0.8, 0.8, 0.8]) > 0.8);
        // Even panel: a 1-1 tie counts as wrong, so two 0.8 judges are
        // worse than one (0.64 < 0.8).
        assert!((majority_quality(&[0.8, 0.8]) - 0.64).abs() < 1e-12);
        assert_eq!(majority_quality(&[]), 0.0);
    }

    #[test]
    fn ensemble_estimate_sums_cost_and_boosts_quality() {
        let c = ctx();
        let single = estimate_plan(&filter_plan("gpt-4o", Effort::Standard), &c);
        let ens = estimate_plan(
            &PhysicalPlan {
                ops: vec![
                    PhysicalOp::Scan {
                        dataset: "d".into(),
                    },
                    PhysicalOp::EnsembleFilter {
                        predicate: "about cancer".into(),
                        models: vec!["gpt-4o".into(), "llama-3-70b".into(), "gpt-4o-mini".into()],
                        effort: Effort::Standard,
                    },
                ],
            },
            &c,
        );
        assert!(ens.cost_usd > single.cost_usd, "ensemble must cost more");
        // Under the correlated-error model the 3-way vote edges out the
        // best *standard-effort* member but stays below the high-effort
        // champion — a mid-frontier point, matching published findings on
        // LLM ensembles.
        assert!(
            ens.quality > single.quality,
            "vote must beat best standard member"
        );
        let high = estimate_plan(&filter_plan("gpt-4o", Effort::High), &c);
        assert!(
            ens.quality < high.quality,
            "vote must not beat the high-effort champion"
        );
    }

    proptest! {
        #[test]
        fn estimates_are_nonnegative_and_quality_bounded(
            card in 0.0f64..10_000.0,
            tokens in 1.0f64..20_000.0,
        ) {
            let c = CostContext {
                catalog: Catalog::builtin(),
                input_cardinality: card,
                avg_record_tokens: tokens,
                build_cardinality: Default::default(),
                calibration: None,
                workers: 1,
            };
            let est = estimate_plan(&filter_plan("gpt-4o", Effort::High), &c);
            prop_assert!(est.cost_usd >= 0.0);
            prop_assert!(est.time_secs >= 0.0);
            prop_assert!(est.output_cardinality >= 0.0);
            prop_assert!((0.0..=1.0).contains(&est.quality));
        }

        #[test]
        fn cost_monotone_in_cardinality(a in 1.0f64..1_000.0, delta in 0.0f64..1_000.0) {
            let mk = |card: f64| CostContext {
                catalog: Catalog::builtin(),
                input_cardinality: card,
                avg_record_tokens: 2_000.0,
                build_cardinality: Default::default(),
                calibration: None,
                workers: 1,
            };
            let small = estimate_plan(&filter_plan("gpt-4o", Effort::Standard), &mk(a));
            let big = estimate_plan(&filter_plan("gpt-4o", Effort::Standard), &mk(a + delta));
            prop_assert!(big.cost_usd >= small.cost_usd);
            prop_assert!(big.time_secs >= small.time_secs);
        }

        #[test]
        fn majority_quality_in_unit_interval(
            qs in proptest::collection::vec(0.0f64..=1.0, 1..7),
            rho in 0.0f64..=1.0,
        ) {
            let m = majority_quality(&qs);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m));
            let e = ensemble_quality(&qs, rho);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&e));
        }
    }

    #[test]
    fn effective_quality_bounds() {
        assert_eq!(effective_quality(0.8, Effort::Standard), 0.8);
        assert!((effective_quality(0.8, Effort::High) - 0.9).abs() < 1e-12);
        assert!(effective_quality(1.0, Effort::High) <= 1.0);
    }
}
