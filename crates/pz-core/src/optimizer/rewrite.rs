//! Logical plan rewrites.
//!
//! Before physical enumeration, the optimizer normalizes the logical plan
//! with semantics-preserving rewrites:
//!
//! * **R1 — cheap filters first.** Consecutive filters commute (set
//!   semantics), and a UDF filter costs nothing while an LLM filter pays
//!   per record — so within every maximal run of consecutive `Filter`
//!   operators, UDF predicates are moved (stably) in front of
//!   natural-language predicates. Every record a free filter drops is a
//!   model call the expensive filter never makes.
//! * **R2 — duplicate filter elimination.** Identical predicates inside
//!   one filter run fire at most once.
//!
//! Rewrites only reorder/merge operators whose commutation is
//! unconditional; nothing here depends on cost estimates, so the pass is
//! safe to run always.

use crate::ops::logical::{FilterPredicate, LogicalOp, LogicalPlan};

/// What the rewriter did (for the optimizer report and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteReport {
    /// Filters moved in front of more expensive ones (R1).
    pub filters_reordered: usize,
    /// Duplicate filters removed (R2).
    pub filters_deduped: usize,
}

impl RewriteReport {
    pub fn changed(&self) -> bool {
        self.filters_reordered > 0 || self.filters_deduped > 0
    }
}

/// Rough cost class of a filter for ordering: lower runs earlier.
fn filter_cost_class(op: &LogicalOp) -> u8 {
    match op {
        LogicalOp::Filter {
            predicate: FilterPredicate::Udf(_),
        } => 0,
        LogicalOp::Filter {
            predicate: FilterPredicate::NaturalLanguage(_),
        } => 1,
        _ => u8::MAX,
    }
}

/// Apply all rewrite rules, returning the normalized plan and a report.
pub fn rewrite(plan: &LogicalPlan) -> (LogicalPlan, RewriteReport) {
    let mut report = RewriteReport::default();
    let mut ops: Vec<LogicalOp> = Vec::with_capacity(plan.ops.len());
    let mut run: Vec<LogicalOp> = Vec::new();

    let flush = |run: &mut Vec<LogicalOp>, ops: &mut Vec<LogicalOp>, report: &mut RewriteReport| {
        if run.is_empty() {
            return;
        }
        // R2: dedup identical predicates within the run (keep first).
        let mut seen: Vec<&LogicalOp> = Vec::new();
        let mut deduped: Vec<LogicalOp> = Vec::new();
        for op in run.iter() {
            if seen.iter().any(|s| **s == *op) {
                report.filters_deduped += 1;
            } else {
                seen.push(op);
                deduped.push(op.clone());
            }
        }
        // R1: stable sort by cost class; count crossings.
        let before: Vec<u8> = deduped.iter().map(filter_cost_class).collect();
        let mut indexed: Vec<(usize, LogicalOp)> = deduped.into_iter().enumerate().collect();
        indexed.sort_by_key(|(i, op)| (filter_cost_class(op), *i));
        let after: Vec<u8> = indexed
            .iter()
            .map(|(_, op)| filter_cost_class(op))
            .collect();
        if before != after {
            report.filters_reordered += 1;
        }
        ops.extend(indexed.into_iter().map(|(_, op)| op));
        run.clear();
    };

    for op in &plan.ops {
        if matches!(op, LogicalOp::Filter { .. }) {
            run.push(op.clone());
        } else {
            flush(&mut run, &mut ops, &mut report);
            ops.push(op.clone());
        }
    }
    flush(&mut run, &mut ops, &mut report);

    let rewritten = LogicalPlan::new(ops).expect("rewrites preserve structural validity");
    (rewritten, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn kinds(plan: &LogicalPlan) -> Vec<String> {
        plan.ops
            .iter()
            .map(|op| match op {
                LogicalOp::Filter { predicate } => predicate.describe(),
                other => other.kind().to_string(),
            })
            .collect()
    }

    #[test]
    fn udf_filters_move_before_llm_filters() {
        let plan = Dataset::source("d")
            .filter("about cancer")
            .filter_udf("cheap")
            .build()
            .unwrap();
        let (rw, report) = rewrite(&plan);
        assert_eq!(kinds(&rw), vec!["scan", "udf:cheap", "nl:\"about cancer\""]);
        assert_eq!(report.filters_reordered, 1);
    }

    #[test]
    fn reorder_is_stable_within_classes() {
        let plan = Dataset::source("d")
            .filter("first nl")
            .filter_udf("u1")
            .filter("second nl")
            .filter_udf("u2")
            .build()
            .unwrap();
        let (rw, _) = rewrite(&plan);
        assert_eq!(
            kinds(&rw),
            vec![
                "scan",
                "udf:u1",
                "udf:u2",
                "nl:\"first nl\"",
                "nl:\"second nl\""
            ]
        );
    }

    #[test]
    fn filters_do_not_cross_other_operators() {
        // A filter after a convert references the *converted* schema; it
        // must never move before the convert.
        let plan = Dataset::source("d")
            .filter("about cancer")
            .convert(
                crate::schema::Schema::pdf_file(),
                crate::ops::logical::Cardinality::OneToOne,
                "c",
            )
            .filter_udf("cheap")
            .build()
            .unwrap();
        let (rw, report) = rewrite(&plan);
        assert_eq!(
            kinds(&rw),
            vec!["scan", "nl:\"about cancer\"", "convert", "udf:cheap"]
        );
        assert!(!report.changed());
    }

    #[test]
    fn duplicate_filters_removed() {
        let plan = Dataset::source("d")
            .filter("about cancer")
            .filter("about cancer")
            .filter_udf("u")
            .filter_udf("u")
            .build()
            .unwrap();
        let (rw, report) = rewrite(&plan);
        assert_eq!(rw.ops.len(), 3); // scan + one of each
        assert_eq!(report.filters_deduped, 2);
    }

    #[test]
    fn already_normalized_plans_unchanged() {
        let plan = Dataset::source("d")
            .filter_udf("u")
            .filter("nl")
            .limit(3)
            .build()
            .unwrap();
        let (rw, report) = rewrite(&plan);
        assert_eq!(rw, plan);
        assert!(!report.changed());
    }

    #[test]
    fn plans_without_filters_untouched() {
        let plan = Dataset::source("d")
            .limit(5)
            .sort("a", false)
            .build()
            .unwrap();
        let (rw, report) = rewrite(&plan);
        assert_eq!(rw, plan);
        assert!(!report.changed());
    }
}
