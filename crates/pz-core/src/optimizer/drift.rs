//! Estimate-vs-observed drift: how far the optimizer's per-operator
//! predictions landed from what the executor actually measured.
//!
//! The optimizer keeps its per-operator predictions for the chosen plan
//! in [`OptimizerReport::op_estimates`](super::OptimizerReport); the
//! executor produces [`OperatorStats`] rows. Zipping them gives a
//! per-stage drift row: predicted vs observed time, cost, selectivity,
//! calls, and tokens. Large ratios point at stale calibration (run
//! sentinels), bad selectivity priors, or operators whose token model
//! diverges from the real prompts.

use super::cost::OperatorEstimate;
use crate::exec::stats::ExecutionStats;
use serde::{Deserialize, Serialize};

/// One operator's predicted-vs-observed comparison.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageDrift {
    /// Operator index in the physical plan.
    pub index: usize,
    /// Physical description, e.g. `LLMFilter[gpt-4o]`.
    pub physical: String,
    /// Model used, if any (LLM / embedding stages).
    pub model: Option<String>,
    pub est_time_secs: f64,
    pub obs_time_secs: f64,
    pub est_cost_usd: f64,
    pub obs_cost_usd: f64,
    pub est_selectivity: f64,
    pub obs_selectivity: f64,
    pub est_llm_calls: f64,
    pub obs_llm_calls: f64,
    pub est_tokens: f64,
    pub obs_tokens: f64,
}

/// Observed / estimated with zero-guards: both ~zero → 1.0 (no drift),
/// estimate ~zero but observation not → infinity (the estimate missed
/// the phenomenon entirely).
fn ratio(obs: f64, est: f64) -> f64 {
    const EPS: f64 = 1e-12;
    if est.abs() <= EPS {
        if obs.abs() <= EPS {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        obs / est
    }
}

impl StageDrift {
    pub fn time_ratio(&self) -> f64 {
        ratio(self.obs_time_secs, self.est_time_secs)
    }

    pub fn cost_ratio(&self) -> f64 {
        ratio(self.obs_cost_usd, self.est_cost_usd)
    }

    pub fn selectivity_ratio(&self) -> f64 {
        ratio(self.obs_selectivity, self.est_selectivity)
    }

    pub fn calls_ratio(&self) -> f64 {
        ratio(self.obs_llm_calls, self.est_llm_calls)
    }

    pub fn tokens_ratio(&self) -> f64 {
        ratio(self.obs_tokens, self.est_tokens)
    }

    /// Whether this stage issued (or was predicted to issue) model calls.
    pub fn is_llm(&self) -> bool {
        self.model.is_some()
    }
}

/// Drift rows for a whole plan, plus the totals.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    pub stages: Vec<StageDrift>,
    pub est_total_cost_usd: f64,
    pub obs_total_cost_usd: f64,
    /// Sum of per-stage estimated times (materializing view; the
    /// pipelined plan estimate is the bottleneck stage, not this sum).
    pub est_total_time_secs: f64,
    pub obs_total_time_secs: f64,
}

impl DriftReport {
    /// Zip per-operator estimates against observed stats. Returns `None`
    /// when the shapes disagree (different plan, or no estimates kept) —
    /// a drift row computed against the wrong operator is worse than no
    /// row at all.
    pub fn new(estimates: &[OperatorEstimate], stats: &ExecutionStats) -> Option<Self> {
        if estimates.is_empty() || estimates.len() != stats.operators.len() {
            return None;
        }
        let stages: Vec<StageDrift> = estimates
            .iter()
            .zip(&stats.operators)
            .enumerate()
            .map(|(index, (e, o))| StageDrift {
                index,
                physical: o.physical.clone(),
                model: o.model.clone().or_else(|| e.model.clone()),
                est_time_secs: e.time_secs,
                obs_time_secs: o.time_secs,
                est_cost_usd: e.cost_usd,
                obs_cost_usd: o.cost_usd,
                est_selectivity: e.selectivity(),
                obs_selectivity: o.selectivity(),
                est_llm_calls: e.llm_calls,
                obs_llm_calls: o.llm_calls as f64,
                est_tokens: e.tokens,
                obs_tokens: (o.input_tokens + o.output_tokens) as f64,
            })
            .collect();
        Some(Self {
            est_total_cost_usd: stages.iter().map(|s| s.est_cost_usd).sum(),
            obs_total_cost_usd: stats.total_cost_usd,
            est_total_time_secs: stages.iter().map(|s| s.est_time_secs).sum(),
            obs_total_time_secs: stats.total_time_secs,
            stages,
        })
    }

    /// Index of the LLM stage whose time drifted furthest from 1.0 (in
    /// log space, so 0.25x and 4x are equally bad). `None` if no stage
    /// touched a model.
    pub fn worst_time_drift(&self) -> Option<usize> {
        self.stages
            .iter()
            .filter(|s| s.is_llm())
            .max_by(|a, b| {
                let da = a.time_ratio().ln().abs();
                let db = b.time_ratio().ln().abs();
                da.total_cmp(&db)
            })
            .map(|s| s.index)
    }

    /// Human-readable drift table (ratios are observed/estimated).
    pub fn render_table(&self) -> String {
        fn fmt_ratio(r: f64) -> String {
            if r.is_infinite() {
                "inf".to_string()
            } else {
                format!("{r:.2}x")
            }
        }
        let mut out = String::new();
        out.push_str(
            "stage  operator                          time(est/obs)        cost(est/obs)        sel(est/obs)    ratio(t)\n",
        );
        for s in &self.stages {
            out.push_str(&format!(
                "{:>5}  {:<32}  {:>8.3}s/{:<8.3}s  ${:>7.4}/${:<7.4}  {:>5.2}/{:<5.2}  {:>7}\n",
                s.index,
                truncate(&s.physical, 32),
                s.est_time_secs,
                s.obs_time_secs,
                s.est_cost_usd,
                s.obs_cost_usd,
                s.est_selectivity,
                s.obs_selectivity,
                fmt_ratio(s.time_ratio()),
            ));
        }
        out.push_str(&format!(
            "total  cost ${:.4} est / ${:.4} obs ({}); stage-time sum {:.3}s est / {:.3}s obs\n",
            self.est_total_cost_usd,
            self.obs_total_cost_usd,
            fmt_ratio(ratio(self.obs_total_cost_usd, self.est_total_cost_usd)),
            self.est_total_time_secs,
            self.obs_total_time_secs,
        ));
        if let Some(w) = self.worst_time_drift() {
            let s = &self.stages[w];
            out.push_str(&format!(
                "worst time drift: stage {} ({}) at {}\n",
                w,
                s.physical,
                fmt_ratio(s.time_ratio())
            ));
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::stats::OperatorStats;
    use proptest::prelude::*;

    fn est(time: f64, cost: f64, inp: f64, out: f64, calls: f64, tokens: f64) -> OperatorEstimate {
        OperatorEstimate {
            physical: "LLMFilter[gpt-4o]".into(),
            model: Some("gpt-4o".into()),
            input_cardinality: inp,
            output_cardinality: out,
            cost_usd: cost,
            time_secs: time,
            llm_calls: calls,
            tokens,
        }
    }

    fn obs(time: f64, cost: f64, inp: usize, out: usize, calls: usize) -> OperatorStats {
        OperatorStats {
            logical: "filter".into(),
            physical: "LLMFilter[gpt-4o]".into(),
            model: Some("gpt-4o".into()),
            input_records: inp,
            output_records: out,
            llm_calls: calls,
            input_tokens: 1000,
            output_tokens: 10,
            cost_usd: cost,
            time_secs: time,
        }
    }

    fn stats(ops: Vec<OperatorStats>) -> ExecutionStats {
        let mut s = ExecutionStats {
            operators: ops,
            ..Default::default()
        };
        s.finalize();
        s
    }

    #[test]
    fn ratios_have_zero_guards() {
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert!(ratio(1.0, 0.0).is_infinite());
        assert!((ratio(2.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zips_estimates_against_observed_rows() {
        let estimates = vec![est(10.0, 0.5, 100.0, 50.0, 100.0, 50_000.0)];
        let s = stats(vec![obs(20.0, 0.25, 100, 40, 100)]);
        let report = DriftReport::new(&estimates, &s).expect("shapes match");
        assert_eq!(report.stages.len(), 1);
        let row = &report.stages[0];
        assert!((row.time_ratio() - 2.0).abs() < 1e-9);
        assert!((row.cost_ratio() - 0.5).abs() < 1e-9);
        assert!((row.obs_selectivity - 0.4).abs() < 1e-9);
        assert_eq!(report.worst_time_drift(), Some(0));
    }

    #[test]
    fn shape_mismatch_returns_none() {
        let estimates = vec![est(1.0, 0.1, 10.0, 5.0, 10.0, 100.0)];
        let s = stats(vec![obs(1.0, 0.1, 10, 5, 10), obs(1.0, 0.1, 5, 5, 5)]);
        assert!(DriftReport::new(&estimates, &s).is_none());
        assert!(DriftReport::new(&[], &s).is_none());
    }

    #[test]
    fn worst_drift_is_symmetric_in_log_space() {
        // 0.25x under-run and 3x over-run: 0.25 is further from 1.0 in
        // log space than 3.0, so it wins.
        let estimates = vec![
            est(4.0, 0.1, 10.0, 5.0, 10.0, 100.0),
            est(1.0, 0.1, 5.0, 5.0, 5.0, 50.0),
        ];
        let s = stats(vec![obs(1.0, 0.1, 10, 5, 10), obs(3.0, 0.1, 5, 5, 5)]);
        let report = DriftReport::new(&estimates, &s).unwrap();
        assert_eq!(report.worst_time_drift(), Some(0));
    }

    #[test]
    fn render_table_mentions_every_stage_and_totals() {
        let estimates = vec![est(10.0, 0.5, 100.0, 50.0, 100.0, 50_000.0)];
        let s = stats(vec![obs(20.0, 0.25, 100, 40, 100)]);
        let report = DriftReport::new(&estimates, &s).unwrap();
        let table = report.render_table();
        assert!(table.contains("LLMFilter[gpt-4o]"));
        assert!(table.contains("2.00x"));
        assert!(table.contains("worst time drift: stage 0"));
    }

    #[test]
    fn zero_record_stage_yields_neutral_ratios() {
        // A stage the deadline starved (0 in, 0 out, 0 calls, 0 time)
        // against a real estimate: everything divides by something, no
        // panic, and the time/cost ratios read as "no evidence" (0/est=0)
        // rather than blowing up.
        let estimates = vec![est(10.0, 0.5, 100.0, 50.0, 100.0, 50_000.0)];
        let s = stats(vec![obs(0.0, 0.0, 0, 0, 0)]);
        let report = DriftReport::new(&estimates, &s).expect("shapes match");
        let row = &report.stages[0];
        assert_eq!(row.time_ratio(), 0.0);
        assert_eq!(row.cost_ratio(), 0.0);
        assert!(row.selectivity_ratio().is_finite() || row.selectivity_ratio() == 0.0);
        assert!(report.worst_time_drift().is_some());
        // Rendering a zero-record report must not panic either.
        let _ = report.render_table();
    }

    #[test]
    fn zero_estimate_rows_never_panic() {
        // An estimate of literally nothing (0 time, 0 cost, 0 cardinality)
        // zipped against real observations: ratios hit the by-design
        // infinity guard, never NaN, and rendering still works.
        let estimates = vec![est(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)];
        let s = stats(vec![obs(20.0, 0.25, 100, 40, 100)]);
        let report = DriftReport::new(&estimates, &s).expect("shapes match");
        let row = &report.stages[0];
        assert!(row.time_ratio().is_infinite());
        assert!(row.cost_ratio().is_infinite());
        assert!(!row.time_ratio().is_nan());
        assert!(!row.selectivity_ratio().is_nan());
        assert!(!row.calls_ratio().is_nan());
        assert!(!row.tokens_ratio().is_nan());
        let _ = report.render_table();
    }

    proptest! {
        /// Adversarial stats never panic the drift math and never produce
        /// NaN. Infinity is allowed — `ratio(obs, 0)` is documented to
        /// saturate to infinity (see `ratios_have_zero_guards`) — but a
        /// NaN would poison every downstream comparison silently.
        #[test]
        fn drift_ratios_never_panic_or_go_nan(
            est_time in 0.0f64..1e12,
            est_cost in 0.0f64..1e9,
            est_card in 0.0f64..1e9,
            obs_time in 0.0f64..1e12,
            obs_cost in 0.0f64..1e9,
            obs_n in 0usize..1_000_000,
        ) {
            // Cardinality-shaped fields derive from one adversarial knob
            // each (the vendored proptest stub caps tuple arity at 6);
            // zero is inside every range, so all divide-by-zero corners
            // are exercised.
            let estimates = vec![est(
                est_time,
                est_cost,
                est_card,
                est_card * 0.5,
                est_card,
                est_card * 100.0,
            )];
            let s = stats(vec![obs(obs_time, obs_cost, obs_n, obs_n / 2, obs_n)]);
            let report = DriftReport::new(&estimates, &s).expect("shapes match");
            let row = &report.stages[0];
            for r in [
                row.time_ratio(),
                row.cost_ratio(),
                row.selectivity_ratio(),
                row.calls_ratio(),
                row.tokens_ratio(),
            ] {
                prop_assert!(!r.is_nan(), "NaN ratio from adversarial stats");
                prop_assert!(r >= 0.0, "negative ratio from nonnegative inputs");
            }
            // worst-drift selection and rendering must also survive.
            let _ = report.worst_time_drift();
            let _ = report.render_table();
        }
    }
}
