//! Optimization policies.
//!
//! §2.1: "Users can specify whether they are interested in quality,
//! runtime, or cost of executing their pipelines. They may instruct the
//! system to narrow its optimization on one of these dimensions (e.g., to
//! minimize the cost no matter the quality), or specify a meaningful
//! combination of them (e.g., maximize the output quality while being
//! under a certain latency)."

use crate::ops::physical::PhysicalPlan;
use crate::optimizer::cost::PlanEstimate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A user optimization preference.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Best quality; ties broken by lower cost, then lower time.
    MaxQuality,
    /// Lowest cost; ties broken by higher quality, then lower time.
    MinCost,
    /// Lowest runtime; ties broken by higher quality, then lower cost.
    MinTime,
    /// Best quality among plans with cost ≤ budget (falls back to the
    /// cheapest plan when none qualifies).
    MaxQualityAtCost(f64),
    /// Best quality among plans with time ≤ budget (falls back to the
    /// fastest plan when none qualifies).
    MaxQualityAtTime(f64),
    /// Cheapest among plans with quality ≥ floor (falls back to the
    /// highest-quality plan when none qualifies).
    MinCostAtQuality(f64),
}

impl Policy {
    pub fn name(&self) -> String {
        match self {
            Policy::MaxQuality => "MaxQuality".into(),
            Policy::MinCost => "MinCost".into(),
            Policy::MinTime => "MinTime".into(),
            Policy::MaxQualityAtCost(c) => format!("MaxQuality@Cost<=${c}"),
            Policy::MaxQualityAtTime(t) => format!("MaxQuality@Time<={t}s"),
            Policy::MinCostAtQuality(q) => format!("MinCost@Quality>={q}"),
        }
    }

    /// Index of the chosen plan among `candidates`; `None` when empty.
    /// Deterministic: total ordering with fixed tie-breaks, first winner.
    pub fn choose(&self, candidates: &[(PhysicalPlan, PlanEstimate)]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        // Constrained policies: restrict to the feasible set, falling back
        // to "least infeasible" when the set is empty.
        let feasible: Vec<usize> = match self {
            Policy::MaxQualityAtCost(budget) => {
                let f: Vec<usize> = (0..candidates.len())
                    .filter(|&i| candidates[i].1.cost_usd <= *budget)
                    .collect();
                if f.is_empty() {
                    return self.fallback(candidates);
                }
                f
            }
            Policy::MaxQualityAtTime(budget) => {
                let f: Vec<usize> = (0..candidates.len())
                    .filter(|&i| candidates[i].1.time_secs <= *budget)
                    .collect();
                if f.is_empty() {
                    return self.fallback(candidates);
                }
                f
            }
            Policy::MinCostAtQuality(floor) => {
                let f: Vec<usize> = (0..candidates.len())
                    .filter(|&i| candidates[i].1.quality >= *floor)
                    .collect();
                if f.is_empty() {
                    return self.fallback(candidates);
                }
                f
            }
            _ => (0..candidates.len()).collect(),
        };
        feasible
            .into_iter()
            .min_by(|&a, &b| self.cmp_key(&candidates[a].1, &candidates[b].1))
    }

    /// Least-infeasible fallback for constrained policies.
    fn fallback(&self, candidates: &[(PhysicalPlan, PlanEstimate)]) -> Option<usize> {
        match self {
            Policy::MaxQualityAtCost(_) => Policy::MinCost.choose(candidates),
            Policy::MaxQualityAtTime(_) => Policy::MinTime.choose(candidates),
            Policy::MinCostAtQuality(_) => Policy::MaxQuality.choose(candidates),
            _ => unreachable!("fallback only for constrained policies"),
        }
    }

    /// Primary-then-secondary comparison ("less" wins).
    fn cmp_key(&self, a: &PlanEstimate, b: &PlanEstimate) -> std::cmp::Ordering {
        let quality_desc = |x: &PlanEstimate, y: &PlanEstimate| y.quality.total_cmp(&x.quality);
        let cost_asc = |x: &PlanEstimate, y: &PlanEstimate| x.cost_usd.total_cmp(&y.cost_usd);
        let time_asc = |x: &PlanEstimate, y: &PlanEstimate| x.time_secs.total_cmp(&y.time_secs);
        match self {
            Policy::MaxQuality | Policy::MaxQualityAtCost(_) | Policy::MaxQualityAtTime(_) => {
                quality_desc(a, b).then(cost_asc(a, b)).then(time_asc(a, b))
            }
            Policy::MinCost => cost_asc(a, b).then(quality_desc(a, b)).then(time_asc(a, b)),
            Policy::MinTime => time_asc(a, b).then(quality_desc(a, b)).then(cost_asc(a, b)),
            Policy::MinCostAtQuality(_) => {
                cost_asc(a, b).then(quality_desc(a, b)).then(time_asc(a, b))
            }
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cand(cost: f64, time: f64, quality: f64) -> (PhysicalPlan, PlanEstimate) {
        (
            PhysicalPlan { ops: vec![] },
            PlanEstimate {
                cost_usd: cost,
                time_secs: time,
                quality,
                output_cardinality: 1.0,
            },
        )
    }

    fn sample() -> Vec<(PhysicalPlan, PlanEstimate)> {
        vec![
            cand(1.00, 100.0, 0.95), // premium
            cand(0.10, 40.0, 0.80),  // balanced
            cand(0.01, 10.0, 0.60),  // cheap & fast
        ]
    }

    #[test]
    fn pure_policies_pick_extremes() {
        let c = sample();
        assert_eq!(Policy::MaxQuality.choose(&c), Some(0));
        assert_eq!(Policy::MinCost.choose(&c), Some(2));
        assert_eq!(Policy::MinTime.choose(&c), Some(2));
    }

    #[test]
    fn constrained_quality_under_cost() {
        let c = sample();
        assert_eq!(Policy::MaxQualityAtCost(0.5).choose(&c), Some(1));
        assert_eq!(Policy::MaxQualityAtCost(2.0).choose(&c), Some(0));
        // Infeasible budget falls back to cheapest.
        assert_eq!(Policy::MaxQualityAtCost(0.001).choose(&c), Some(2));
    }

    #[test]
    fn constrained_quality_under_time() {
        let c = sample();
        assert_eq!(Policy::MaxQualityAtTime(50.0).choose(&c), Some(1));
        assert_eq!(Policy::MaxQualityAtTime(5.0).choose(&c), Some(2)); // fallback
    }

    #[test]
    fn constrained_cost_over_quality_floor() {
        let c = sample();
        assert_eq!(Policy::MinCostAtQuality(0.75).choose(&c), Some(1));
        assert_eq!(Policy::MinCostAtQuality(0.99).choose(&c), Some(0)); // fallback
    }

    #[test]
    fn ties_break_deterministically() {
        let c = vec![cand(1.0, 10.0, 0.9), cand(0.5, 10.0, 0.9)];
        // Same quality: MaxQuality prefers the cheaper one.
        assert_eq!(Policy::MaxQuality.choose(&c), Some(1));
    }

    #[test]
    fn empty_candidates() {
        assert_eq!(Policy::MaxQuality.choose(&[]), None);
        assert_eq!(Policy::MaxQualityAtCost(1.0).choose(&[]), None);
    }

    #[test]
    fn names_render() {
        assert_eq!(Policy::MaxQuality.name(), "MaxQuality");
        assert!(Policy::MaxQualityAtCost(0.5).name().contains("0.5"));
        assert_eq!(format!("{}", Policy::MinTime), "MinTime");
    }

    proptest! {
        #[test]
        fn chosen_plan_is_never_dominated(
            points in proptest::collection::vec((0.01f64..10.0, 0.1f64..100.0, 0.1f64..1.0), 1..20)
        ) {
            use crate::optimizer::pareto::dominates;
            let cands: Vec<_> = points.iter().map(|&(c, t, q)| cand(c, t, q)).collect();
            for policy in [Policy::MaxQuality, Policy::MinCost, Policy::MinTime] {
                let i = policy.choose(&cands).unwrap();
                for (j, other) in cands.iter().enumerate() {
                    if i != j {
                        prop_assert!(
                            !dominates(&other.1, &cands[i].1),
                            "{policy:?} picked a dominated plan"
                        );
                    }
                }
            }
        }

        #[test]
        fn max_quality_at_cost_respects_budget_when_feasible(
            points in proptest::collection::vec((0.01f64..10.0, 0.1f64..100.0, 0.1f64..1.0), 1..20),
            budget in 0.01f64..10.0,
        ) {
            let cands: Vec<_> = points.iter().map(|&(c, t, q)| cand(c, t, q)).collect();
            let feasible_exists = cands.iter().any(|(_, e)| e.cost_usd <= budget);
            let i = Policy::MaxQualityAtCost(budget).choose(&cands).unwrap();
            if feasible_exists {
                prop_assert!(cands[i].1.cost_usd <= budget);
            }
        }
    }
}
