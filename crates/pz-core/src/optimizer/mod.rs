//! The Palimpzest optimizer.
//!
//! §2.1: "Palimpzest creates a search space of all possible physical plans
//! [...] which are effectively logically equivalent but may yield outputs
//! of different quality, with a different cost, or with a different
//! runtime. In a subsequent optimization phase, Palimpzest automatically
//! ranks physical plans and selects the most optimal one that meets
//! user-defined preferences."
//!
//! Pipeline: [`rewrite`] normalizes the logical plan (cheap filters first,
//! duplicate elimination), [`enumerate`] builds the physical plan space,
//! [`cost`] estimates each plan's (cost, time, quality), [`pareto`] prunes
//! dominated plans, [`policy`] picks the winner, and [`sentinel`]
//! optionally calibrates the estimates by running candidates on a data
//! sample first.

pub mod adaptive;
pub mod cost;
pub mod drift;
pub mod enumerate;
pub mod pareto;
pub mod policy;
pub mod rewrite;
pub mod sentinel;

use crate::context::PzContext;
use crate::error::{PzError, PzResult};
use crate::ops::logical::LogicalPlan;
use crate::ops::physical::PhysicalPlan;
use cost::{CostContext, PlanEstimate};
use policy::Policy;

/// What the optimizer did, for reporting and the E4 experiment.
#[derive(Clone, Debug, Default)]
pub struct OptimizerReport {
    /// Full physical plan space size (before any pruning).
    pub plan_space_size: u128,
    /// Plans actually estimated.
    pub plans_considered: usize,
    /// Plans surviving Pareto pruning.
    pub pareto_size: usize,
    /// Whether sentinel calibration ran.
    pub calibrated: bool,
    /// What the logical rewriter changed.
    pub rewrites: rewrite::RewriteReport,
    /// Per-operator predictions for the *chosen* plan (final calibrated
    /// cost model), kept so execution can be compared back against the
    /// estimate ([`drift::DriftReport`]).
    pub op_estimates: Vec<cost::OperatorEstimate>,
}

/// The optimizer facade.
#[derive(Clone, Debug)]
pub struct Optimizer {
    /// Cap on fully-enumerated plans; beyond it the Pareto DP is used.
    pub enumeration_cap: usize,
    /// Run sentinel calibration on a sample before estimating.
    pub sentinel_sample: Option<usize>,
    /// Estimate plan time for the streaming pipelined executor: total time
    /// is the bottleneck stage, not the sum of stages. Cost and quality
    /// estimates are unaffected.
    pub pipelined_time: bool,
    /// Intra-operator worker-pool size the executor will run with. An LLM
    /// stage's effective time divides by `min(workers, records)`, clamped
    /// by the model's rate limit — so plan choice can shift when
    /// parallelism is on. `0`/`1` means serial.
    pub parallel_workers: usize,
}

impl Default for Optimizer {
    fn default() -> Self {
        Self {
            enumeration_cap: 20_000,
            sentinel_sample: None,
            pipelined_time: false,
            parallel_workers: 1,
        }
    }
}

impl Optimizer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_sentinel(mut self, sample: usize) -> Self {
        self.sentinel_sample = Some(sample);
        self
    }

    /// Cost plan time for the streaming pipelined executor.
    pub fn with_pipelined_time(mut self) -> Self {
        self.pipelined_time = true;
        self
    }

    /// Cost LLM-stage time for intra-operator worker pools of this size.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallel_workers = workers.max(1);
        self
    }

    /// Choose the best physical plan for `plan` under `policy`.
    pub fn optimize(
        &self,
        ctx: &PzContext,
        plan: &LogicalPlan,
        policy: &Policy,
    ) -> PzResult<(PhysicalPlan, PlanEstimate, OptimizerReport)> {
        // Validate schemas eagerly so bad plans fail before any model call.
        plan.schemas(&ctx.registry)?;

        let span = ctx.tracer.span(pz_obs::Layer::Optimizer, "optimize");
        span.set_attr("policy", policy.name());

        // Logical normalization: semantics-preserving, always beneficial.
        let (plan, rewrites) = rewrite::rewrite(plan);
        let plan = &plan;

        let mut cost_ctx = CostContext::from_context(ctx, plan)?;
        cost_ctx.workers = self.parallel_workers.max(1);
        let mut report = OptimizerReport {
            plan_space_size: enumerate::plan_space_size(plan, &ctx.catalog),
            rewrites,
            ..Default::default()
        };
        if let Some(sample) = self.sentinel_sample {
            let calib = sentinel::calibrate(ctx, plan, sample)?;
            ctx.tracer.event(
                pz_obs::Layer::Optimizer,
                "sentinel_calibrated",
                &[
                    ("sample", sample.to_string()),
                    ("selectivities", calib.selectivity.len().to_string()),
                    ("quality_points", calib.quality.len().to_string()),
                ],
            );
            cost_ctx.calibration = Some(calib);
            report.calibrated = true;
        }

        let candidates = if report.plan_space_size <= self.enumeration_cap as u128 {
            let plans = enumerate::enumerate_plans(plan, &ctx.catalog, self.enumeration_cap);
            report.plans_considered = plans.len();
            plans
                .into_iter()
                .map(|p| {
                    let est = cost::estimate_plan_for(&p, &cost_ctx, self.pipelined_time);
                    (p, est)
                })
                .collect()
        } else {
            let frontier =
                pareto::enumerate_pareto_for(plan, &ctx.catalog, &cost_ctx, self.pipelined_time);
            report.plans_considered = frontier.len();
            frontier
        };

        let frontier = pareto::pareto_front(candidates);
        report.pareto_size = frontier.len();
        ctx.tracer
            .incr("optimizer.plans_considered", report.plans_considered as u64);
        ctx.tracer.incr(
            "optimizer.pareto_pruned",
            report.plans_considered.saturating_sub(report.pareto_size) as u64,
        );
        let idx = policy
            .choose(&frontier)
            .ok_or_else(|| PzError::Optimizer("no candidate plans".into()))?;
        let (chosen, est) = frontier.into_iter().nth(idx).expect("index from choose");
        // Re-estimate the winner once more for the per-operator breakdown;
        // same cost context, so totals match `est` exactly.
        report.op_estimates =
            cost::estimate_plan_detailed(&chosen, &cost_ctx, self.pipelined_time).1;
        span.set_attr("plan_space", report.plan_space_size.to_string());
        span.set_attr("considered", report.plans_considered.to_string());
        span.set_attr("pareto", report.pareto_size.to_string());
        span.set_attr("chosen", chosen.describe());
        Ok((chosen, est, report))
    }
}
