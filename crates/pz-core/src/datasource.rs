//! Data sources and the dataset registry.
//!
//! Paper §3: "The first step when building a pipeline is to define an input
//! dataset — this could either be a local folder, for which every file will
//! constitute an individual record; or an iterable object in memory, for
//! which every item will be a record. Additionally, more experienced users
//! can define any custom logic to marshal arbitrary objects or paths into
//! input datasets."
//!
//! * [`MemorySource`] — iterable-in-memory mode;
//! * [`DirectorySource`] — local-folder mode (one record per file; the
//!   `PDFFile` schema's "text extraction" is substitution S4);
//! * any `impl DataSource` — the custom-marshalling mode;
//! * [`DataRegistry`] — named registration, what the chat tool
//!   `register_dataset` talks to.

use crate::error::{PzError, PzResult};
use crate::record::{DataRecord, Value};
use crate::schema::Schema;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A stream of record batches from a source. Each item is one chunk of at
/// most the requested size; errors surface per-batch so a failure halfway
/// through an out-of-core scan doesn't silently truncate the corpus.
pub type RecordBatchIter = Box<dyn Iterator<Item = PzResult<Vec<DataRecord>>> + Send>;

/// A registered input dataset.
pub trait DataSource: Send + Sync {
    /// Registry name.
    fn name(&self) -> &str;
    /// Schema of the records this source yields.
    fn schema(&self) -> Schema;
    /// Materialize all records. Record ids are assigned by the caller's
    /// id space via the `base_id` offset.
    fn records(&self, base_id: u64) -> PzResult<Vec<DataRecord>>;
    /// Stream records in chunks of at most `chunk_size` (0 = one batch
    /// holding everything). The default materializes [`records`] and then
    /// chunks it — correct for every source, out-of-core for none; sources
    /// that can generate records on demand (e.g. [`GeneratedSource`])
    /// override this so at most O(chunk) records are ever resident.
    ///
    /// Contract: concatenating the batches in order must equal
    /// `records(base_id)` byte-for-byte, at every chunk size — the chunked
    /// differential suite holds every executor path to this.
    fn batches(&self, base_id: u64, chunk_size: usize) -> PzResult<RecordBatchIter> {
        Ok(chunk_records(self.records(base_id)?, chunk_size))
    }
    /// Number of records, if cheaply known (used by the cost model).
    fn cardinality_hint(&self) -> Option<usize> {
        None
    }
    /// Downcast hook for sources that accept live edits (the REPL's
    /// `:append` finds the change-stream interface through this).
    fn as_versioned(&self) -> Option<&VersionedSource> {
        None
    }
}

/// Split an already-materialized record vector into a batch stream.
pub fn chunk_records(all: Vec<DataRecord>, chunk_size: usize) -> RecordBatchIter {
    if chunk_size == 0 || all.len() <= chunk_size {
        return Box::new(std::iter::once(Ok(all)));
    }
    struct Chunks {
        rest: std::vec::IntoIter<DataRecord>,
        chunk: usize,
    }
    impl Iterator for Chunks {
        type Item = PzResult<Vec<DataRecord>>;
        fn next(&mut self) -> Option<Self::Item> {
            let batch: Vec<DataRecord> = self.rest.by_ref().take(self.chunk).collect();
            if batch.is_empty() {
                None
            } else {
                Some(Ok(batch))
            }
        }
    }
    Box::new(Chunks {
        rest: all.into_iter(),
        chunk: chunk_size,
    })
}

/// Generator signature for [`GeneratedSource`]: index → `(filename,
/// content)`. Must be pure per index (same index, same output) — the
/// executor may call it more than once for the same record (e.g. a legacy
/// full materialization and a chunked re-scan must agree).
pub type RecordGenerator = Arc<dyn Fn(usize) -> (String, String) + Send + Sync>;

/// A source whose records are *computed*, not stored: each record is a
/// pure function of its index. `records()` still materializes everything
/// (legacy paths — mid-plan scans, join build sides — need that), but
/// `batches()` generates each chunk on demand, so an out-of-core scan over
/// a million-record corpus holds at most `chunk_size` records at a time.
/// This is the registry-side mate of `pz-datagen`'s streamed corpora.
pub struct GeneratedSource {
    name: String,
    schema: Schema,
    len: usize,
    generator: RecordGenerator,
}

impl GeneratedSource {
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        len: usize,
        generator: impl Fn(usize) -> (String, String) + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            schema,
            len,
            generator: Arc::new(generator),
        }
    }

    fn record_at(&self, base_id: u64, index: usize) -> DataRecord {
        let (filename, content) = (self.generator)(index);
        DataRecord::new(base_id + index as u64)
            .with_field("filename", filename.as_str())
            .with_field("contents", parse_content(&filename, &content))
    }
}

impl DataSource for GeneratedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> Schema {
        self.schema.clone()
    }

    fn records(&self, base_id: u64) -> PzResult<Vec<DataRecord>> {
        Ok((0..self.len).map(|i| self.record_at(base_id, i)).collect())
    }

    fn batches(&self, base_id: u64, chunk_size: usize) -> PzResult<RecordBatchIter> {
        let chunk = if chunk_size == 0 {
            self.len.max(1)
        } else {
            chunk_size
        };
        let generator = Arc::clone(&self.generator);
        let len = self.len;
        if len == 0 {
            return Ok(Box::new(std::iter::once(Ok(Vec::new()))));
        }
        let iter = (0..len).step_by(chunk).map(move |start| {
            let end = (start + chunk).min(len);
            let mut out = Vec::with_capacity(end - start);
            for i in start..end {
                let (filename, content) = generator(i);
                out.push(
                    DataRecord::new(base_id + i as u64)
                        .with_field("filename", filename.as_str())
                        .with_field("contents", parse_content(&filename, &content)),
                );
            }
            Ok(out)
        });
        Ok(Box::new(iter))
    }

    fn cardinality_hint(&self) -> Option<usize> {
        Some(self.len)
    }
}

/// Version stamp of a [`VersionedSource`]: bumped once per applied change
/// batch, with the record count after the batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DatasetVersion {
    /// Monotone change-batch counter (0 = the base corpus).
    pub version: u64,
    /// Records in the dataset at this version.
    pub records: usize,
}

/// One edit to a versioned dataset, keyed by `filename` — the stable
/// record identity the incremental executor's memo store hashes over.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DatasetChange {
    /// Add a new record at the end of the dataset.
    Append { filename: String, content: String },
    /// Replace the content of an existing record (no-op if absent).
    Update { filename: String, content: String },
    /// Remove a record (no-op if absent).
    Delete { filename: String },
}

/// A [`MemorySource`] that accepts append/update/delete change batches
/// between runs: the change-stream view of a dataset the incremental
/// executor re-runs against. Register once; edits apply in place through
/// interior mutability, so no re-registration is needed and every clone of
/// the owning context observes the new version on its next `records()`.
pub struct VersionedSource {
    name: String,
    schema: Schema,
    items: RwLock<Vec<(String, String)>>,
    version: std::sync::atomic::AtomicU64,
}

impl VersionedSource {
    pub fn new(name: impl Into<String>, schema: Schema, items: Vec<(String, String)>) -> Self {
        Self {
            name: name.into(),
            schema,
            items: RwLock::new(items),
            version: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Apply one batch of changes atomically and bump the version.
    pub fn apply(&self, changes: &[DatasetChange]) -> DatasetVersion {
        let mut items = self.items.write();
        for change in changes {
            match change {
                DatasetChange::Append { filename, content } => {
                    items.push((filename.clone(), content.clone()));
                }
                DatasetChange::Update { filename, content } => {
                    if let Some(slot) = items.iter_mut().find(|(f, _)| f == filename) {
                        slot.1 = content.clone();
                    }
                }
                DatasetChange::Delete { filename } => {
                    items.retain(|(f, _)| f != filename);
                }
            }
        }
        let version = self
            .version
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        DatasetVersion {
            version,
            records: items.len(),
        }
    }

    /// Append a single record (one-change batch).
    pub fn append(
        &self,
        filename: impl Into<String>,
        content: impl Into<String>,
    ) -> DatasetVersion {
        self.apply(&[DatasetChange::Append {
            filename: filename.into(),
            content: content.into(),
        }])
    }

    /// Replace one record's content (one-change batch).
    pub fn update(
        &self,
        filename: impl Into<String>,
        content: impl Into<String>,
    ) -> DatasetVersion {
        self.apply(&[DatasetChange::Update {
            filename: filename.into(),
            content: content.into(),
        }])
    }

    /// Delete one record (one-change batch).
    pub fn delete(&self, filename: impl Into<String>) -> DatasetVersion {
        self.apply(&[DatasetChange::Delete {
            filename: filename.into(),
        }])
    }

    /// Current version stamp.
    pub fn version(&self) -> DatasetVersion {
        DatasetVersion {
            version: self.version.load(std::sync::atomic::Ordering::Relaxed),
            records: self.items.read().len(),
        }
    }
}

impl DataSource for VersionedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> Schema {
        self.schema.clone()
    }

    fn records(&self, base_id: u64) -> PzResult<Vec<DataRecord>> {
        Ok(self
            .items
            .read()
            .iter()
            .enumerate()
            .map(|(i, (filename, content))| {
                DataRecord::new(base_id + i as u64)
                    .with_field("filename", filename.as_str())
                    .with_field("contents", parse_content(filename, content))
            })
            .collect())
    }

    fn cardinality_hint(&self) -> Option<usize> {
        Some(self.items.read().len())
    }

    fn as_versioned(&self) -> Option<&VersionedSource> {
        Some(self)
    }
}

/// In-memory source: each `(filename, content)` item becomes one record.
pub struct MemorySource {
    name: String,
    schema: Schema,
    items: Vec<(String, String)>,
}

impl MemorySource {
    pub fn new(name: impl Into<String>, schema: Schema, items: Vec<(String, String)>) -> Self {
        Self {
            name: name.into(),
            schema,
            items,
        }
    }

    /// Convenience: wrap plain strings with synthesized filenames.
    pub fn from_texts(name: impl Into<String>, schema: Schema, texts: Vec<String>) -> Self {
        let items = texts
            .into_iter()
            .enumerate()
            .map(|(i, t)| (format!("item-{i:04}.txt"), t))
            .collect();
        Self::new(name, schema, items)
    }
}

impl DataSource for MemorySource {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> Schema {
        self.schema.clone()
    }

    fn records(&self, base_id: u64) -> PzResult<Vec<DataRecord>> {
        Ok(self
            .items
            .iter()
            .enumerate()
            .map(|(i, (filename, content))| {
                DataRecord::new(base_id + i as u64)
                    .with_field("filename", filename.as_str())
                    .with_field("contents", parse_content(filename, content))
            })
            .collect())
    }

    fn cardinality_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }
}

/// Local-folder source: one record per file (sorted by name for
/// determinism).
pub struct DirectorySource {
    name: String,
    schema: Schema,
    dir: PathBuf,
}

impl DirectorySource {
    pub fn new(name: impl Into<String>, schema: Schema, dir: impl AsRef<Path>) -> Self {
        Self {
            name: name.into(),
            schema,
            dir: dir.as_ref().to_path_buf(),
        }
    }
}

impl DataSource for DirectorySource {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> Schema {
        self.schema.clone()
    }

    fn records(&self, base_id: u64) -> PzResult<Vec<DataRecord>> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)
            .map_err(|e| PzError::Execution(format!("read_dir {}: {e}", self.dir.display())))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        paths.sort();
        let mut out = Vec::with_capacity(paths.len());
        for (i, p) in paths.iter().enumerate() {
            let filename = p
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_default();
            let raw = std::fs::read_to_string(p)
                .map_err(|e| PzError::Execution(format!("read {}: {e}", p.display())))?;
            out.push(
                DataRecord::new(base_id + i as u64)
                    .with_field("filename", filename.as_str())
                    .with_field("contents", parse_content(&filename, &raw)),
            );
        }
        Ok(out)
    }
}

/// "Parse" file contents per extension. Substitution S4: synthetic "PDFs"
/// are text wrapped in a trivial envelope, and parsing strips it — the
/// downstream code paths are identical to real PDF text extraction.
fn parse_content(filename: &str, raw: &str) -> Value {
    let text = if filename.ends_with(".pdf") {
        raw.strip_prefix("%PDF-SIM\n")
            .map(|s| s.strip_suffix("\n%%EOF").unwrap_or(s))
            .unwrap_or(raw)
            .to_string()
    } else {
        raw.to_string()
    };
    Value::Text(text)
}

/// Wrap plain text in the simulated-PDF envelope (used by tests and the
/// datagen-to-disk helpers).
pub fn wrap_pdf(text: &str) -> String {
    format!("%PDF-SIM\n{text}\n%%EOF")
}

/// Thread-safe registry of named datasets. Clones share state.
#[derive(Clone, Default)]
pub struct DataRegistry {
    sources: Arc<RwLock<BTreeMap<String, Arc<dyn DataSource>>>>,
}

impl DataRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a source under its own name.
    pub fn register(&self, source: Arc<dyn DataSource>) {
        self.sources
            .write()
            .insert(source.name().to_string(), source);
    }

    pub fn get(&self, name: &str) -> PzResult<Arc<dyn DataSource>> {
        self.sources
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PzError::UnknownDataset(name.to_string()))
    }

    pub fn names(&self) -> Vec<String> {
        self.sources.read().keys().cloned().collect()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.sources.read().contains_key(name)
    }
}

/// Signature of a user-defined filter predicate.
pub type FilterUdf = Arc<dyn Fn(&DataRecord) -> bool + Send + Sync>;
/// Signature of a user-defined record transform.
pub type MapUdf = Arc<dyn Fn(&DataRecord) -> DataRecord + Send + Sync>;

/// Registry of user-defined functions usable in plans ("a natural language
/// predicate *or UDF*", paper §2.1). Clones share state.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    filters: Arc<RwLock<BTreeMap<String, FilterUdf>>>,
    maps: Arc<RwLock<BTreeMap<String, MapUdf>>>,
}

impl UdfRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register_filter(
        &self,
        name: impl Into<String>,
        f: impl Fn(&DataRecord) -> bool + Send + Sync + 'static,
    ) {
        self.filters.write().insert(name.into(), Arc::new(f));
    }

    pub fn register_map(
        &self,
        name: impl Into<String>,
        f: impl Fn(&DataRecord) -> DataRecord + Send + Sync + 'static,
    ) {
        self.maps.write().insert(name.into(), Arc::new(f));
    }

    pub fn filter(&self, name: &str) -> PzResult<FilterUdf> {
        self.filters
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PzError::UnknownUdf(name.to_string()))
    }

    pub fn map(&self, name: &str) -> PzResult<MapUdf> {
        self.maps
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PzError::UnknownUdf(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_source_yields_records() {
        let src = MemorySource::new(
            "m",
            Schema::text_file(),
            vec![
                ("a.txt".into(), "alpha".into()),
                ("b.txt".into(), "beta".into()),
            ],
        );
        let recs = src.records(10).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, 10);
        assert_eq!(recs[1].id, 11);
        assert_eq!(recs[0].get("filename").unwrap().as_text(), Some("a.txt"));
        assert_eq!(recs[1].get("contents").unwrap().as_text(), Some("beta"));
        assert_eq!(src.cardinality_hint(), Some(2));
    }

    #[test]
    fn from_texts_synthesizes_filenames() {
        let src = MemorySource::from_texts("m", Schema::text_file(), vec!["x".into()]);
        let recs = src.records(0).unwrap();
        assert_eq!(
            recs[0].get("filename").unwrap().as_text(),
            Some("item-0000.txt")
        );
    }

    #[test]
    fn pdf_envelope_stripped() {
        let src = MemorySource::new(
            "m",
            Schema::pdf_file(),
            vec![("doc.pdf".into(), wrap_pdf("inner text"))],
        );
        let recs = src.records(0).unwrap();
        assert_eq!(
            recs[0].get("contents").unwrap().as_text(),
            Some("inner text")
        );
    }

    #[test]
    fn pdf_without_envelope_passes_through() {
        let src = MemorySource::new(
            "m",
            Schema::pdf_file(),
            vec![("doc.pdf".into(), "already text".into())],
        );
        let recs = src.records(0).unwrap();
        assert_eq!(
            recs[0].get("contents").unwrap().as_text(),
            Some("already text")
        );
    }

    #[test]
    fn directory_source_reads_files_sorted() {
        let dir = std::env::temp_dir().join(format!("pz-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.txt"), "bee").unwrap();
        std::fs::write(dir.join("a.txt"), "ay").unwrap();
        let src = DirectorySource::new("d", Schema::text_file(), &dir);
        let recs = src.records(0).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].get("filename").unwrap().as_text(), Some("a.txt"));
        assert_eq!(recs[1].get("contents").unwrap().as_text(), Some("bee"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directory_source_missing_dir_errors() {
        let src = DirectorySource::new("d", Schema::text_file(), "/nonexistent/pz/path");
        assert!(matches!(src.records(0), Err(PzError::Execution(_))));
    }

    #[test]
    fn registry_register_get() {
        let reg = DataRegistry::new();
        reg.register(Arc::new(MemorySource::from_texts(
            "demo",
            Schema::text_file(),
            vec!["x".into()],
        )));
        assert!(reg.contains("demo"));
        assert_eq!(reg.get("demo").unwrap().name(), "demo");
        assert!(matches!(reg.get("nope"), Err(PzError::UnknownDataset(_))));
        assert_eq!(reg.names(), vec!["demo".to_string()]);
    }

    #[test]
    fn registry_clones_share() {
        let reg = DataRegistry::new();
        let reg2 = reg.clone();
        reg.register(Arc::new(MemorySource::from_texts(
            "a",
            Schema::text_file(),
            vec![],
        )));
        assert!(reg2.contains("a"));
    }

    fn collect_batches(src: &dyn DataSource, base: u64, chunk: usize) -> Vec<Vec<DataRecord>> {
        src.batches(base, chunk)
            .unwrap()
            .map(|b| b.unwrap())
            .collect()
    }

    #[test]
    fn default_batches_concatenate_to_records() {
        let src = MemorySource::from_texts(
            "m",
            Schema::text_file(),
            (0..10).map(|i| format!("text {i}")).collect(),
        );
        let whole = src.records(100).unwrap();
        for chunk in [0usize, 1, 3, 10, 99] {
            let batches = collect_batches(&src, 100, chunk);
            let flat: Vec<DataRecord> = batches.iter().flatten().cloned().collect();
            assert_eq!(flat, whole, "chunk {chunk}");
            if chunk > 0 {
                assert!(
                    batches.iter().all(|b| b.len() <= chunk),
                    "chunk {chunk} produced an oversized batch"
                );
            }
        }
    }

    #[test]
    fn generated_source_batches_match_records() {
        let src = GeneratedSource::new("g", Schema::text_file(), 25, |i| {
            (format!("gen-{i:04}.txt"), format!("generated body {i}"))
        });
        assert_eq!(src.cardinality_hint(), Some(25));
        let whole = src.records(7).unwrap();
        assert_eq!(whole.len(), 25);
        assert_eq!(whole[0].id, 7);
        assert_eq!(
            whole[24].get("contents").unwrap().as_text(),
            Some("generated body 24")
        );
        for chunk in [0usize, 1, 4, 25, 1000] {
            let flat: Vec<DataRecord> = collect_batches(&src, 7, chunk).concat();
            assert_eq!(flat, whole, "chunk {chunk}");
        }
    }

    #[test]
    fn generated_source_empty_and_pdf_paths() {
        let empty = GeneratedSource::new("e", Schema::text_file(), 0, |_| unreachable!());
        assert!(empty.records(0).unwrap().is_empty());
        let flat: Vec<DataRecord> = collect_batches(&empty, 0, 4).concat();
        assert!(flat.is_empty());
        let pdf = GeneratedSource::new("p", Schema::pdf_file(), 1, |i| {
            (format!("doc-{i}.pdf"), wrap_pdf("inner"))
        });
        let recs = pdf.records(0).unwrap();
        assert_eq!(recs[0].get("contents").unwrap().as_text(), Some("inner"));
    }

    #[test]
    fn chunk_records_boundaries() {
        let recs: Vec<DataRecord> = (0..5).map(DataRecord::new).collect();
        let batches: Vec<Vec<DataRecord>> =
            chunk_records(recs.clone(), 2).map(|b| b.unwrap()).collect();
        assert_eq!(
            batches.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        let whole: Vec<Vec<DataRecord>> = chunk_records(recs, 0).map(|b| b.unwrap()).collect();
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].len(), 5);
    }

    #[test]
    fn udf_registry() {
        let udfs = UdfRegistry::new();
        udfs.register_filter("nonempty", |r: &DataRecord| {
            r.get("contents")
                .and_then(|v| v.as_text())
                .is_some_and(|t| !t.is_empty())
        });
        udfs.register_map("upper", |r: &DataRecord| {
            let mut out = r.clone();
            if let Some(t) = r.get("contents").and_then(|v| v.as_text()) {
                out.set("contents", t.to_uppercase());
            }
            out
        });
        let f = udfs.filter("nonempty").unwrap();
        let rec = DataRecord::new(0).with_field("contents", "x");
        assert!(f(&rec));
        let m = udfs.map("upper").unwrap();
        assert_eq!(m(&rec).get("contents").unwrap().as_text(), Some("X"));
        assert!(matches!(udfs.filter("nope"), Err(PzError::UnknownUdf(_))));
        assert!(matches!(udfs.map("nope"), Err(PzError::UnknownUdf(_))));
    }
}
