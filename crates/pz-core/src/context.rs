//! Runtime context shared by optimizer and executors.
//!
//! Bundles every service a pipeline touches: the LLM client, the model
//! catalog (for cost estimation), the dataset and UDF registries, the
//! vector store, the virtual clock and usage ledger, and the record-id
//! allocator. Clones share all state, so one context can be handed to
//! parallel workers.

use crate::datasource::{DataRegistry, UdfRegistry};
use crate::error::PzResult;
use pz_llm::{
    CachingClient, Catalog, FaultInjector, HealthTracker, LlmClient, ModelId, RetryContext,
    RetryPolicy, SimConfig, SimulatedLlm, TracedClient, UsageLedger, VirtualClock,
};
use pz_obs::Tracer;
use pz_vector::VectorStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Admission control consulted by the executor at the top of every run.
///
/// Implemented by serving hosts (`pz-serve`): `begin` either admits the run
/// (possibly after queueing on the virtual clock) and returns a ticket, or
/// refuses with [`crate::PzError::Overloaded`]. The executor calls `end`
/// with the same ticket when the run finishes, success or failure, so the
/// host can release the slot. A context without a gate admits everything.
pub trait AdmissionGate: Send + Sync {
    /// Request admission for a run starting at `now_secs` with an optional
    /// absolute deadline. Returns an opaque ticket on admission.
    fn begin(&self, now_secs: f64, deadline_at_secs: Option<f64>) -> PzResult<u64>;

    /// Release the slot held by `ticket`. Must be infallible: it runs on
    /// every exit path, including failures.
    fn end(&self, ticket: u64, now_secs: f64);
}

/// Shared execution environment.
#[derive(Clone)]
pub struct PzContext {
    /// The model client (the deterministic simulator in this reproduction,
    /// optionally wrapped in a response cache).
    pub llm: Arc<dyn LlmClient>,
    /// Handle onto the response cache, when enabled via [`Self::with_cache`].
    pub cache: Option<CachingClient>,
    /// Model cards for cost estimation and plan enumeration.
    pub catalog: Catalog,
    /// Registered input datasets.
    pub registry: DataRegistry,
    /// Registered user-defined functions.
    pub udfs: UdfRegistry,
    /// Vector store backing the Retrieve operator.
    pub vectors: VectorStore,
    /// Shared virtual clock (latency accounting).
    pub clock: VirtualClock,
    /// Shared usage ledger (token / dollar accounting).
    pub ledger: UsageLedger,
    /// Shared tracer: spans and metrics from every layer, timestamped on
    /// [`Self::clock`] so traces reconcile with the ledger and stats.
    pub tracer: Tracer,
    /// Retry policy for transient model failures.
    pub retry: RetryPolicy,
    /// Per-model health tracker / circuit breakers, consulted by the retry
    /// layer and both executors.
    pub health: HealthTracker,
    /// Handle on the simulator's scripted fault plan (REPL `:faults`,
    /// `repro --fault-plan`). A no-op injector for non-simulated clients.
    pub faults: FaultInjector,
    /// Absolute execution deadline on the virtual clock, if any. Set by the
    /// executor on its cloned context from `ExecutionConfig::deadline_secs`;
    /// retries and backoff refuse to sleep past it.
    pub deadline_at_secs: Option<f64>,
    /// Memory budget (in records) for blocking operators. Set by the
    /// executor on its cloned context from
    /// `ExecutionConfig::spill_budget_records`; past it, `Sort` spills
    /// sorted runs to temp files and merges them back, and `HashJoin`
    /// streams its build side in budget-sized batches instead of
    /// materializing it. `None` (the default) keeps every operator fully
    /// in-memory and byte-identical to pre-spill builds.
    pub spill_budget_records: Option<usize>,
    /// Default embedding model.
    pub embed_model: ModelId,
    /// How plans are driven by default (the REPL's `:exec` switch and the
    /// pipeline tool read this; explicit `ExecutionConfig`s override it).
    pub exec_mode: crate::exec::ExecMode,
    /// Default intra-operator worker-pool size for streaming stages (the
    /// REPL's `:parallelism` switch and the pipeline tool read this;
    /// explicit `ExecutionConfig`s override it). `1` = serial.
    pub parallelism: usize,
    /// Default adaptive re-optimization configuration (the REPL's
    /// `:adaptive` switch and the pipeline tool read this; explicit
    /// `ExecutionConfig`s override it). Disabled by default.
    pub adaptive: crate::optimizer::adaptive::AdaptiveConfig,
    /// Profiler sink for retry-backoff time (virtual µs). The executor
    /// points this at a per-stage accumulator on its cloned stage
    /// contexts when profiling is enabled; `None` records nothing.
    pub retry_wait_us: Option<Arc<AtomicU64>>,
    /// Per-operator memo store for incremental re-execution, installed via
    /// [`Self::with_incremental`] (the REPL's `:watch` switch and the
    /// pipeline tool read this). Clones share it, so it persists across
    /// runs — the first run populates it, later runs replay unchanged
    /// records from it. `None` (the default) leaves every executor
    /// byte-identical to a snapshot-less run; the memo path additionally
    /// requires `ExecutionConfig::with_incremental`.
    pub incremental: Option<crate::exec::ExecutionSnapshot>,
    /// Admission gate consulted at the top of every executed plan. `None`
    /// (the default) admits everything; serving hosts install their gate so
    /// per-run capacity and load shedding apply uniformly to REPL, tool and
    /// API traffic running through this context.
    pub admission: Option<Arc<dyn AdmissionGate>>,
    ids: Arc<AtomicU64>,
}

impl PzContext {
    /// Context over the builtin catalog with a fresh simulator (seed 42, no
    /// transient failures).
    pub fn simulated() -> Self {
        Self::simulated_with(SimConfig::default())
    }

    /// Context with explicit simulator configuration.
    pub fn simulated_with(config: SimConfig) -> Self {
        Self::simulated_shared(config, VirtualClock::new(), UsageLedger::new())
    }

    /// Context with explicit simulator configuration over a *caller-owned*
    /// clock and ledger. This is the multi-tenant constructor: a serving
    /// host gives every tenant its own ledger (and fault plan, via
    /// `config.fault_plan`) while all tenants share one virtual clock, so
    /// cross-tenant latency measurements are on a common timebase but
    /// billing and fault state never mix.
    pub fn simulated_shared(config: SimConfig, clock: VirtualClock, ledger: UsageLedger) -> Self {
        let catalog = Catalog::builtin();
        let tracer = Tracer::new(Arc::new(clock.clone()));
        let sim = SimulatedLlm::new(catalog.clone(), config, clock.clone(), ledger.clone());
        // Keep a handle on the injector so faults can be scripted live.
        let faults = sim.faults().clone();
        let sim: Arc<dyn LlmClient> = Arc::new(sim);
        // Every call that reaches the provider gets a leaf span; a cache
        // added later wraps *outside* this, so hits never record LLM spans.
        let llm: Arc<dyn LlmClient> = Arc::new(TracedClient::new(sim, tracer.clone()));
        Self {
            llm,
            cache: None,
            catalog,
            registry: DataRegistry::new(),
            udfs: UdfRegistry::new(),
            vectors: VectorStore::new().with_tracer(tracer.clone()),
            clock,
            ledger,
            retry: RetryPolicy::default(),
            health: HealthTracker::default().with_tracer(tracer.clone()),
            faults,
            deadline_at_secs: None,
            spill_budget_records: None,
            tracer,
            embed_model: "text-embedding-3-small".into(),
            exec_mode: crate::exec::ExecMode::Materializing,
            parallelism: 1,
            adaptive: crate::optimizer::adaptive::AdaptiveConfig::default(),
            retry_wait_us: None,
            incremental: None,
            admission: None,
            ids: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Replace the model client (e.g. with a serving layer's scheduled +
    /// shared-cache stack). The caller is responsible for any tracing
    /// wrapper it wants; `self.cache` is cleared because the old handle no
    /// longer fronts the installed client.
    pub fn with_client(mut self, llm: Arc<dyn LlmClient>) -> Self {
        self.llm = llm;
        self.cache = None;
        self
    }

    /// Install an admission gate consulted at the top of every executed
    /// plan (see [`AdmissionGate`]).
    pub fn with_admission(mut self, gate: Arc<dyn AdmissionGate>) -> Self {
        self.admission = Some(gate);
        self
    }

    /// Set the default execution mode for plans run through this context.
    pub fn with_exec_mode(mut self, mode: crate::exec::ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Set the default streaming worker-pool size. `0` means one worker per
    /// available core ([`crate::exec::available_cores`]).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = if workers == 0 {
            crate::exec::available_cores()
        } else {
            workers
        };
        self
    }

    /// Set the default adaptive re-optimization configuration for plans
    /// run through this context.
    pub fn with_adaptive(mut self, adaptive: crate::optimizer::adaptive::AdaptiveConfig) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Wrap the model client in an exact-match response cache: repeated
    /// prompts (sentinel + execution, retried calls, re-runs over unchanged
    /// data) are served for free. Returns the modified context; cache
    /// statistics are available via `self.cache`. Cache hits and misses
    /// land on the tracer (events) and the ledger (per-model counts).
    pub fn with_cache(mut self) -> Self {
        let cache = CachingClient::new(self.llm.clone())
            .with_tracer(self.tracer.clone())
            .with_ledger(self.ledger.clone());
        self.cache = Some(cache.clone());
        self.llm = Arc::new(cache);
        self
    }

    /// Install a fresh incremental memo snapshot: executions configured
    /// with `ExecutionConfig::with_incremental` memoize every operator
    /// verdict into it and replay unchanged records on re-runs, re-billing
    /// only the delta. The snapshot is shared by clones and persists
    /// across runs until replaced (or cleared via
    /// [`crate::exec::ExecutionSnapshot::clear`]).
    pub fn with_incremental(mut self) -> Self {
        self.incremental = Some(crate::exec::ExecutionSnapshot::new());
        self
    }

    /// Allocate a fresh record id.
    pub fn next_id(&self) -> u64 {
        self.ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate a contiguous block of `n` ids, returning the first.
    pub fn next_ids(&self, n: u64) -> u64 {
        self.ids.fetch_add(n, Ordering::Relaxed)
    }

    /// Reset accounting (clock + ledger + trace + breaker state) between
    /// experiments. Record ids keep increasing — they only need uniqueness.
    pub fn reset_accounting(&self) {
        self.clock.reset();
        self.ledger.reset();
        self.tracer.reset();
        // Breaker cooldowns are timestamps on the clock just reset; stale
        // state would pin models open (or closed) across experiments.
        self.health.reset();
    }

    /// The retry context operators should pass to
    /// [`RetryPolicy::complete_with`] / [`RetryPolicy::embed_with`]: the
    /// shared clock, the breaker tracker, and any active deadline.
    pub fn retry_ctx(&self) -> RetryContext<'_> {
        RetryContext::new(&self.clock)
            .with_health(&self.health)
            .with_deadline(self.deadline_at_secs)
            .with_wait_sink(self.retry_wait_us.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_increasing() {
        let ctx = PzContext::simulated();
        let a = ctx.next_id();
        let b = ctx.next_id();
        assert!(b > a);
        let base = ctx.next_ids(10);
        let after = ctx.next_id();
        assert!(after >= base + 10);
    }

    #[test]
    fn clones_share_ids_and_accounting() {
        let ctx = PzContext::simulated();
        let ctx2 = ctx.clone();
        let a = ctx.next_id();
        let b = ctx2.next_id();
        assert_ne!(a, b);
        ctx.clock.advance_secs(1.0);
        assert!(ctx2.clock.now_secs() >= 1.0);
    }

    #[test]
    fn reset_accounting_clears_clock_and_ledger() {
        let ctx = PzContext::simulated();
        ctx.clock.advance_secs(5.0);
        ctx.ledger
            .record(&"gpt-4o".into(), pz_llm::Usage::new(1, 1), 0.1, 0.1);
        ctx.reset_accounting();
        assert_eq!(ctx.clock.now_secs(), 0.0);
        assert_eq!(ctx.ledger.total_requests(), 0);
    }

    #[test]
    fn tracer_shares_the_virtual_clock() {
        let ctx = PzContext::simulated();
        ctx.clock.advance_secs(2.0);
        let span = ctx.tracer.span(pz_obs::Layer::Executor, "op");
        assert_eq!(ctx.tracer.now_micros(), 2_000_000);
        span.finish();
        let snap = ctx.tracer.snapshot();
        assert_eq!(snap.spans[0].start_us, 2_000_000);
    }

    #[test]
    fn default_embed_model_exists_in_catalog() {
        let ctx = PzContext::simulated();
        assert!(ctx.catalog.get(&ctx.embed_model).is_some());
    }
}
