//! Schemas — named collections of described fields.
//!
//! Mirrors the Python-side dynamic schema creation from Figure 2 / Figure 6
//! (`type(class_name, (pz.Schema,), attributes)`): schemas are runtime
//! values, built by users, by the chat agent's `create_schema` tool, or
//! taken from the built-in library ([`Schema::file`], [`Schema::text_file`],
//! [`Schema::pdf_file`]).

use crate::error::{PzError, PzResult};
use crate::field::{is_valid_field_name, FieldDef, FieldType};
use serde::{Deserialize, Serialize};

/// A named, described set of fields.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    pub name: String,
    /// Natural-language description (the `__doc__` of Figure 6).
    pub description: String,
    pub fields: Vec<FieldDef>,
}

impl Schema {
    /// Build a schema, validating the name and every field name.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        fields: Vec<FieldDef>,
    ) -> PzResult<Self> {
        let name = name.into();
        if name.is_empty() {
            return Err(PzError::Schema("schema name must be non-empty".into()));
        }
        let mut seen: Vec<&str> = Vec::with_capacity(fields.len());
        for f in &fields {
            if !is_valid_field_name(&f.name) {
                return Err(PzError::Schema(format!(
                    "invalid field name {:?}: no spaces or special characters",
                    f.name
                )));
            }
            if seen.contains(&f.name.as_str()) {
                return Err(PzError::Schema(format!(
                    "duplicate field name {:?}",
                    f.name
                )));
            }
            seen.push(&f.name);
        }
        Ok(Self {
            name,
            description: description.into(),
            fields,
        })
    }

    /// The built-in `File` schema: every file in a directory becomes one
    /// record with its filename and raw bytes rendered as text.
    pub fn file() -> Self {
        Self::new(
            "File",
            "A file on disk",
            vec![
                FieldDef::text("filename", "The name of the file").required(),
                FieldDef::text("contents", "The raw contents of the file").required(),
            ],
        )
        .expect("builtin schema is valid")
    }

    /// Built-in `TextFile`: filename plus decoded text contents.
    pub fn text_file() -> Self {
        Self::new(
            "TextFile",
            "A plain text file",
            vec![
                FieldDef::text("filename", "The name of the file").required(),
                FieldDef::text("contents", "The text contents of the file").required(),
            ],
        )
        .expect("builtin schema is valid")
    }

    /// Built-in `PDFFile` (paper §3): "this schema only represents the
    /// filename and the raw textual content extracted for a given paper."
    pub fn pdf_file() -> Self {
        Self::new(
            "PDFFile",
            "A PDF document with its extracted text",
            vec![
                FieldDef::text("filename", "The name of the PDF file").required(),
                FieldDef::text("contents", "The textual content extracted from the PDF").required(),
            ],
        )
        .expect("builtin schema is valid")
    }

    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    pub fn has_field(&self, name: &str) -> bool {
        self.field(name).is_some()
    }

    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Restrict to a subset of fields (projection). Unknown names error.
    pub fn project(&self, names: &[String]) -> PzResult<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            let f = self
                .field(n)
                .ok_or_else(|| PzError::Schema(format!("unknown field {n:?} in {}", self.name)))?;
            fields.push(f.clone());
        }
        Schema::new(
            format!("{}Projected", self.name),
            self.description.clone(),
            fields,
        )
    }

    /// Schema of a grouped aggregation output: the group-by keys followed by
    /// one numeric field per aggregate.
    pub fn for_aggregation(&self, group_by: &[String], agg_names: &[String]) -> PzResult<Schema> {
        let mut fields = Vec::new();
        for g in group_by {
            let f = self
                .field(g)
                .ok_or_else(|| PzError::Schema(format!("unknown group-by field {g:?}")))?;
            fields.push(f.clone());
        }
        for a in agg_names {
            fields.push(FieldDef::typed(
                a.clone(),
                FieldType::Float,
                "aggregate value",
            ));
        }
        Schema::new(format!("{}Agg", self.name), "aggregation output", fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_schemas() {
        for s in [Schema::file(), Schema::text_file(), Schema::pdf_file()] {
            assert!(s.has_field("filename"));
            assert!(s.has_field("contents"));
        }
        assert_eq!(Schema::pdf_file().name, "PDFFile");
    }

    #[test]
    fn invalid_field_name_rejected() {
        let err = Schema::new("S", "", vec![FieldDef::text("bad name", "")]).unwrap_err();
        assert!(matches!(err, PzError::Schema(_)));
    }

    #[test]
    fn duplicate_field_rejected() {
        let err = Schema::new(
            "S",
            "",
            vec![FieldDef::text("a", ""), FieldDef::text("a", "")],
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn empty_name_rejected() {
        assert!(Schema::new("", "", vec![]).is_err());
    }

    #[test]
    fn projection() {
        let s = Schema::pdf_file();
        let p = s.project(&["filename".to_string()]).unwrap();
        assert_eq!(p.field_names(), vec!["filename"]);
        assert!(s.project(&["nope".to_string()]).is_err());
    }

    #[test]
    fn aggregation_schema() {
        let s = Schema::new(
            "L",
            "",
            vec![
                FieldDef::text("city", ""),
                FieldDef::typed("price", FieldType::Int, ""),
            ],
        )
        .unwrap();
        let a = s
            .for_aggregation(&["city".to_string()], &["avg_price".to_string()])
            .unwrap();
        assert_eq!(a.field_names(), vec!["city", "avg_price"]);
        assert!(s.for_aggregation(&["nope".to_string()], &[]).is_err());
    }

    #[test]
    fn clinical_data_schema_from_figure6() {
        // The exact schema the demo builds.
        let s = Schema::new(
            "ClinicalData",
            "A schema for extracting clinical data datasets from papers.",
            vec![
                FieldDef::text("name", "The name of the clinical data dataset"),
                FieldDef::text(
                    "description",
                    "A short description of the content of the dataset",
                ),
                FieldDef::text("url", "The public URL where the dataset can be accessed"),
            ],
        )
        .unwrap();
        assert_eq!(s.fields.len(), 3);
    }
}
