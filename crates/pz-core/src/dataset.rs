//! Fluent logical-plan builder — the Rust rendering of the Figure 6 API:
//!
//! ```text
//! dataset = pz.Dataset(source="sigmod-demo", schema=PDFFile)
//! dataset = dataset.filter("The papers are about colorectal cancer")
//! dataset = dataset.convert(ClinicalData, cardinality=ONE_TO_MANY)
//! records, stats = Execute(dataset, policy=pz.MaxQuality())
//! ```
//!
//! ```
//! use pz_core::dataset::Dataset;
//! use pz_core::ops::logical::Cardinality;
//! use pz_core::schema::Schema;
//!
//! let plan = Dataset::source("sigmod-demo")
//!     .filter("The papers are about colorectal cancer")
//!     .convert(Schema::pdf_file(), Cardinality::OneToMany, "extract datasets")
//!     .limit(10)
//!     .build()
//!     .unwrap();
//! assert_eq!(plan.ops.len(), 4);
//! ```

use crate::error::PzResult;
use crate::ops::logical::{
    AggExpr, Cardinality, FilterPredicate, JoinCondition, LogicalOp, LogicalPlan,
};
use crate::schema::Schema;

/// Builder for a [`LogicalPlan`]. Methods append operators; [`Self::build`]
/// validates.
#[derive(Clone, Debug)]
pub struct Dataset {
    ops: Vec<LogicalOp>,
}

impl Dataset {
    /// Start from a registered dataset.
    pub fn source(name: impl Into<String>) -> Self {
        Self {
            ops: vec![LogicalOp::Scan {
                dataset: name.into(),
            }],
        }
    }

    /// Natural-language filter (`filter()` in Figure 6).
    pub fn filter(mut self, predicate: impl Into<String>) -> Self {
        self.ops.push(LogicalOp::Filter {
            predicate: FilterPredicate::NaturalLanguage(predicate.into()),
        });
        self
    }

    /// UDF filter.
    pub fn filter_udf(mut self, udf: impl Into<String>) -> Self {
        self.ops.push(LogicalOp::Filter {
            predicate: FilterPredicate::Udf(udf.into()),
        });
        self
    }

    /// Schema conversion (`convert()` in Figure 6).
    pub fn convert(
        mut self,
        target: Schema,
        cardinality: Cardinality,
        description: impl Into<String>,
    ) -> Self {
        self.ops.push(LogicalOp::Convert {
            target,
            cardinality,
            description: description.into(),
        });
        self
    }

    pub fn map(mut self, udf: impl Into<String>) -> Self {
        self.ops.push(LogicalOp::Map { udf: udf.into() });
        self
    }

    pub fn project(mut self, fields: &[&str]) -> Self {
        self.ops.push(LogicalOp::Project {
            fields: fields.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    pub fn limit(mut self, n: usize) -> Self {
        self.ops.push(LogicalOp::Limit { n });
        self
    }

    pub fn sort(mut self, field: impl Into<String>, descending: bool) -> Self {
        self.ops.push(LogicalOp::Sort {
            field: field.into(),
            descending,
        });
        self
    }

    pub fn distinct(mut self, fields: &[&str]) -> Self {
        self.ops.push(LogicalOp::Distinct {
            fields: fields.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    pub fn aggregate(mut self, group_by: &[&str], aggs: Vec<AggExpr>) -> Self {
        self.ops.push(LogicalOp::Aggregate {
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggs,
        });
        self
    }

    /// Semantic top-k narrowing.
    pub fn retrieve(mut self, query: impl Into<String>, k: usize) -> Self {
        self.ops.push(LogicalOp::Retrieve {
            query: query.into(),
            k,
        });
        self
    }

    /// Equi-join against another registered dataset.
    pub fn join_eq(
        mut self,
        dataset: impl Into<String>,
        left_field: impl Into<String>,
        right_field: impl Into<String>,
    ) -> Self {
        self.ops.push(LogicalOp::Join {
            dataset: dataset.into(),
            condition: JoinCondition::FieldEq {
                left: left_field.into(),
                right: right_field.into(),
            },
        });
        self
    }

    /// Semantic join: an LLM judges every pair against the criterion.
    pub fn join_semantic(
        mut self,
        dataset: impl Into<String>,
        criterion: impl Into<String>,
    ) -> Self {
        self.ops.push(LogicalOp::Join {
            dataset: dataset.into(),
            condition: JoinCondition::Semantic {
                criterion: criterion.into(),
            },
        });
        self
    }

    /// UNION ALL with another registered dataset.
    pub fn union(mut self, dataset: impl Into<String>) -> Self {
        self.ops.push(LogicalOp::Union {
            dataset: dataset.into(),
        });
        self
    }

    /// Semantic categorization into one of `labels`, written to
    /// `output_field`.
    pub fn classify(mut self, labels: &[&str], output_field: impl Into<String>) -> Self {
        self.ops.push(LogicalOp::Classify {
            labels: labels.iter().map(|s| s.to_string()).collect(),
            output_field: output_field.into(),
        });
        self
    }

    /// Validate and produce the logical plan.
    pub fn build(self) -> PzResult<LogicalPlan> {
        LogicalPlan::new(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldDef;
    use crate::ops::logical::AggFunc;

    #[test]
    fn figure6_pipeline_builds() {
        let clinical = Schema::new(
            "ClinicalData",
            "A schema for extracting clinical data datasets from papers.",
            vec![
                FieldDef::text("name", "The name of the clinical data dataset"),
                FieldDef::text(
                    "description",
                    "A short description of the content of the dataset",
                ),
                FieldDef::text("url", "The public URL where the dataset can be accessed"),
            ],
        )
        .unwrap();
        let plan = Dataset::source("sigmod-demo")
            .filter("The papers are about colorectal cancer")
            .convert(clinical, Cardinality::OneToMany, "extract datasets")
            .build()
            .unwrap();
        assert_eq!(plan.ops.len(), 3);
        assert_eq!(plan.dataset(), "sigmod-demo");
        assert_eq!(plan.semantic_op_count(), 2);
    }

    #[test]
    fn all_builder_methods_chain() {
        let plan = Dataset::source("s")
            .filter_udf("f")
            .map("m")
            .project(&["a"])
            .sort("a", true)
            .distinct(&["a"])
            .retrieve("q", 3)
            .aggregate(&[], vec![AggExpr::new(AggFunc::Count, "", "n")])
            .limit(1)
            .build()
            .unwrap();
        assert_eq!(plan.ops.len(), 9);
    }

    #[test]
    fn build_validates() {
        // Limit 0 still caught at build time.
        assert!(Dataset::source("s").limit(0).build().is_err());
    }
}
