//! Bounded SPSC channel for the streaming executor.
//!
//! The vendored `crossbeam` shim only provides scoped threads, so the
//! pipeline's stage links are built here on `std::sync::{Mutex, Condvar}`.
//! Semantics are chosen for pipeline control flow:
//!
//! - `send` blocks while the buffer is full (backpressure) and fails once
//!   the receiver is gone — that failure is the *cancellation* signal that
//!   propagates early termination (e.g. a satisfied `Limit`) upstream.
//! - `recv` blocks while the buffer is empty and returns `None` once every
//!   sender is gone — the end-of-stream signal that drains the pipeline.
//!
//! Worker pools share one `Receiver` behind a mutex (the pool's intake,
//! which also assigns sequence numbers). That is safe precisely because
//! `recv` only blocks when the buffer is empty: a worker holding the
//! intake lock can never be waiting on a sender that is itself blocked on
//! a full buffer.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    buf: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when space frees up or the receiver disconnects.
    not_full: Condvar,
    /// Signalled when an item arrives or the last sender disconnects.
    not_empty: Condvar,
}

/// Create a bounded channel with room for `capacity` in-flight items.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
            receiver_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Sending half. Dropping it (the only clone, here: SPSC) ends the stream.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiver disconnected before this item could be delivered; the
/// item comes back so the caller can account for it if needed.
pub struct Disconnected<T>(pub T);

impl<T> Sender<T> {
    /// Block until there is room, then enqueue. `Err` means the receiver
    /// is gone — downstream cancelled — and carries the item back.
    pub fn send(&self, item: T) -> Result<(), Disconnected<T>> {
        let mut st = self.shared.state.lock().expect("channel lock");
        loop {
            if !st.receiver_alive {
                return Err(Disconnected(item));
            }
            if st.buf.len() < st.capacity {
                st.buf.push_back(item);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self.shared.not_full.wait(st).expect("channel lock");
        }
    }

    /// Current queue depth (in-flight items). A point-in-time probe for
    /// the profiler's queue-depth gauge.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel lock").buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("channel lock");
        st.senders -= 1;
        if st.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

/// Receiving half. Dropping it wakes and fails all pending/future sends.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Block until an item arrives (`Some`) or every sender is gone and
    /// the buffer is drained (`None`).
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock().expect("channel lock");
        loop {
            if let Some(item) = st.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if st.senders == 0 {
                return None;
            }
            st = self.shared.not_empty.wait(st).expect("channel lock");
        }
    }

    /// Current queue depth (items buffered but not yet received).
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel lock").buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("channel lock");
        st.receiver_alive = false;
        st.buf.clear();
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn items_flow_in_order() {
        let (tx, rx) = bounded(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..10 {
                    tx.send(i).ok().expect("receiver alive");
                }
            });
            for i in 0..10 {
                assert_eq!(rx.recv(), Some(i));
            }
            assert_eq!(rx.recv(), None);
        });
    }

    #[test]
    fn capacity_applies_backpressure() {
        let (tx, rx) = bounded(1);
        let sent = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..5 {
                    tx.send(i).ok().expect("receiver alive");
                    sent.fetch_add(1, Ordering::SeqCst);
                }
            });
            // The producer cannot run ahead by more than capacity + the
            // one item it may be blocked on.
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(sent.load(Ordering::SeqCst) <= 2);
            for i in 0..5 {
                assert_eq!(rx.recv(), Some(i));
            }
        });
    }

    #[test]
    fn dropped_receiver_fails_send_and_returns_item() {
        let (tx, rx) = bounded(1);
        drop(rx);
        match tx.send(41) {
            Err(Disconnected(item)) => assert_eq!(item, 41),
            Ok(()) => panic!("send must fail after receiver drop"),
        }
    }

    #[test]
    fn dropped_receiver_unblocks_waiting_sender() {
        let (tx, rx) = bounded(1);
        tx.send(0).ok().expect("room");
        std::thread::scope(|s| {
            let h = s.spawn(move || tx.send(1).is_err());
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(rx);
            assert!(h.join().expect("no panic"), "blocked send must fail");
        });
    }

    #[test]
    fn len_tracks_in_flight_items() {
        let (tx, rx) = bounded(4);
        assert_eq!(rx.len(), 0);
        assert!(rx.is_empty());
        tx.send(1).ok().expect("room");
        tx.send(2).ok().expect("room");
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.recv();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn dropped_sender_ends_stream() {
        let (tx, rx) = bounded(4);
        tx.send(7).ok().expect("room");
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
    }
}
