//! Incremental (delta-driven) re-execution.
//!
//! PalimpChat sessions iterate on evolving datasets: a user appends a few
//! records, tweaks one document, re-runs the same pipeline. A from-scratch
//! executor re-bills every LLM call for records whose answers cannot have
//! changed. This module generalizes the exact-match LLM response cache
//! (`pz_llm::CachingClient`, keyed per request) from the leaf case to
//! whole physical operators: an [`ExecutionSnapshot`] memo store keyed by
//! `(record identity, operator fingerprint, prompt hash)` — all three
//! computed with the same [`pz_llm::stable_hash`] the leaf cache uses —
//! records each operator's verdict per input record, and a re-run replays
//! memoized verdicts for unchanged records while routing only the dirty
//! delta through the real operator (and only the delta through the
//! `UsageLedger`).
//!
//! # Delta rules
//!
//! Every memoizable operator reconstructs its **full** output from its
//! full current input — memoized records replay, dirty records execute —
//! so appends, updates, and deletes are all handled by one mechanism:
//!
//! - **Filters** (`LlmFilter`, `EmbeddingFilter`, `EnsembleFilter`) memoize
//!   the keep/drop verdict per record; the dirty subset runs as one batch.
//! - **`LlmClassify`** memoizes the chosen label and replays it via `set`.
//! - **Converts** (`LlmConvert`, `FieldwiseConvert`) memoize the list of
//!   output field maps per input record and replay them by deriving fresh
//!   records (new ids, correct lineage).
//! - **`LlmJoin`** memoizes the joined output rows per *left* record; its
//!   fingerprint folds in a content hash of the right dataset, so editing
//!   the build side invalidates every probe.
//!
//! Operators without a delta rule (`Scan`, relational operators, `Retrieve`,
//! `HashJoin`, `UnionAll`, UDFs) transparently fall back to a full re-run
//! of just that operator — correctness never depends on memo coverage.
//! Relational fallbacks are LLM-free, so the re-run bills nothing;
//! `Retrieve` re-bills its (batched) embedding call. Because each operator
//! executes on a subset of the input a from-scratch run would see, the
//! incremental ledger cost is always `<=` the from-scratch cost.
//!
//! Both switches default off, and the memo path is not entered unless
//! `ExecutionConfig::with_incremental` *and* a `PzContext` snapshot
//! (`PzContext::with_incremental`) are armed — disabled runs stay
//! byte-identical to the non-incremental executors.

use crate::context::PzContext;
use crate::error::PzResult;
use crate::ops::physical::PhysicalOp;
use crate::record::{DataRecord, Value};
use parking_lot::RwLock;
use pz_llm::stable_hash;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Memo key: `(record identity, operator fingerprint, prompt hash)`.
type MemoKey = (u64, u64, u64);

/// One memoized operator verdict for one input record.
#[derive(Clone, Debug)]
enum MemoEntry {
    /// Filter-family verdict: was the record kept?
    Kept(bool),
    /// Classify verdict: the label written to the output field.
    Label { field: String, label: Value },
    /// Convert/join outputs: the field map of every record this input
    /// produced, in emission order. Replayed by deriving fresh records.
    Outputs(Vec<BTreeMap<String, Value>>),
}

/// The persistent memo store a run leaves behind and a re-run consumes.
///
/// Clones share state (like every other `PzContext` handle), so the
/// snapshot installed by [`PzContext::with_incremental`] accumulates
/// across runs: the first execution populates it, later executions replay
/// from it. Entries for deleted or superseded records are simply never
/// looked up again; the store is append-only within a session.
#[derive(Clone, Default)]
pub struct ExecutionSnapshot {
    entries: Arc<RwLock<HashMap<MemoKey, MemoEntry>>>,
    hits: Arc<AtomicUsize>,
}

impl ExecutionSnapshot {
    /// An empty snapshot: the first run through it executes everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized operator verdicts.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Cumulative memo replays across every run through this snapshot.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Drop all memoized verdicts (replay counters are kept).
    pub fn clear(&self) {
        self.entries.write().clear();
    }
}

impl std::fmt::Debug for ExecutionSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionSnapshot")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .finish()
    }
}

/// Stable identity of a record: a content hash over its fields-only JSON
/// (`BTreeMap` field order makes it deterministic). Executor-assigned ids
/// and lineage are excluded — they depend on allocation order, not
/// content, and must not dirty a record across runs.
pub fn record_identity(rec: &DataRecord) -> u64 {
    let json = serde_json::to_string(&rec.to_json()).unwrap_or_default();
    stable_hash(&[&json])
}

/// Hash of the text an LLM operator would prompt with for this record.
/// Folded into the memo key so two records that serialize differently but
/// prompt identically still get distinct entries via their identity, and
/// prompt-affecting drift is caught even if serialization misses it.
fn prompt_hash(rec: &DataRecord) -> u64 {
    stable_hash(&["prompt", &rec.prompt_text()])
}

/// Fingerprint of an operator's full configuration (its serde JSON covers
/// predicate/schema/model/effort — any change invalidates its memo
/// entries). `LlmJoin` additionally folds in a content hash of the right
/// dataset's current records so build-side edits invalidate probe results.
/// Returns `None` for operators without a delta rule.
pub fn op_fingerprint(ctx: &PzContext, op: &PhysicalOp) -> Option<u64> {
    if !memoizable(op) {
        return None;
    }
    let desc = serde_json::to_string(op).unwrap_or_default();
    let mut parts: Vec<String> = vec![desc];
    if let PhysicalOp::LlmJoin { dataset, .. } = op {
        let right = ctx
            .registry
            .get(dataset)
            .ok()
            .and_then(|src| src.records(0).ok())
            .map(|recs| {
                recs.iter()
                    .map(|r| serde_json::to_string(&r.to_json()).unwrap_or_default())
                    .collect::<Vec<_>>()
                    .join("\n")
            })
            .unwrap_or_default();
        parts.push(right);
    }
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    Some(stable_hash(&refs))
}

/// Does this operator have a delta rule? Everything else falls back to a
/// transparent full re-run of just that operator.
pub fn memoizable(op: &PhysicalOp) -> bool {
    matches!(
        op,
        PhysicalOp::LlmFilter { .. }
            | PhysicalOp::EmbeddingFilter { .. }
            | PhysicalOp::EnsembleFilter { .. }
            | PhysicalOp::LlmClassify { .. }
            | PhysicalOp::LlmConvert { .. }
            | PhysicalOp::FieldwiseConvert { .. }
            | PhysicalOp::LlmJoin { .. }
    )
}

/// Run one operator with memoization: split the input into memoized
/// (clean) and unseen (dirty) records, route only the dirty subset through
/// `run` (the caller's normal execution path — failover, pools, adaptive
/// checks all included), replay memoized verdicts for the rest, and merge
/// in input order so the output is identical to a from-scratch run.
///
/// Non-memoizable operators pass straight through to `run` with the full
/// input — the fallback path.
pub(crate) fn execute_memoized(
    ctx: &PzContext,
    snap: &ExecutionSnapshot,
    op: &PhysicalOp,
    input: Vec<DataRecord>,
    run: &mut dyn FnMut(Vec<DataRecord>) -> PzResult<Vec<DataRecord>>,
) -> PzResult<Vec<DataRecord>> {
    let Some(fp) = op_fingerprint(ctx, op) else {
        return run(input);
    };
    let keys: Vec<MemoKey> = input
        .iter()
        .map(|r| (record_identity(r), fp, prompt_hash(r)))
        .collect();
    let cached: Vec<Option<MemoEntry>> = {
        let entries = snap.entries.read();
        keys.iter().map(|k| entries.get(k).cloned()).collect()
    };
    let dirty: Vec<DataRecord> = input
        .iter()
        .zip(&cached)
        .filter(|(_, c)| c.is_none())
        .map(|(r, _)| r.clone())
        .collect();
    let fresh = if dirty.is_empty() {
        Vec::new()
    } else {
        run(dirty.clone())?
    };
    // Attribute each fresh output to the dirty input that produced it, and
    // derive the memo entry to store. Input ids are unique within a run,
    // so attribution by id is exact.
    let mut fresh_entries: HashMap<u64, MemoEntry> = HashMap::new();
    let mut fresh_outputs: HashMap<u64, Vec<DataRecord>> = HashMap::new();
    match op {
        PhysicalOp::LlmFilter { .. }
        | PhysicalOp::EmbeddingFilter { .. }
        | PhysicalOp::EnsembleFilter { .. } => {
            // Filters return a subset of their input, unmodified.
            let kept: HashSet<u64> = fresh.iter().map(|r| r.id).collect();
            for d in &dirty {
                fresh_entries.insert(d.id, MemoEntry::Kept(kept.contains(&d.id)));
            }
            for r in fresh {
                fresh_outputs.entry(r.id).or_default().push(r);
            }
        }
        PhysicalOp::LlmClassify { output_field, .. } => {
            // One output per input, positionally, same record id.
            for (d, out) in dirty.iter().zip(fresh) {
                let label = out.get(output_field).cloned().unwrap_or(Value::Null);
                fresh_entries.insert(
                    d.id,
                    MemoEntry::Label {
                        field: output_field.clone(),
                        label,
                    },
                );
                fresh_outputs.entry(d.id).or_default().push(out);
            }
        }
        PhysicalOp::LlmConvert { .. } | PhysicalOp::FieldwiseConvert { .. } => {
            // Outputs derive from their input: lineage ends with its id.
            for r in fresh {
                let parent = r.lineage.last().copied().unwrap_or_default();
                fresh_outputs.entry(parent).or_default().push(r);
            }
            for d in &dirty {
                let outs = fresh_outputs.get(&d.id).cloned().unwrap_or_default();
                fresh_entries.insert(
                    d.id,
                    MemoEntry::Outputs(outs.into_iter().map(|r| r.fields).collect()),
                );
            }
        }
        PhysicalOp::LlmJoin { .. } => {
            // Joined rows derive from the left record then push the right
            // id: the left parent is lineage's second-to-last element.
            for r in fresh {
                let parent = r
                    .lineage
                    .len()
                    .checked_sub(2)
                    .and_then(|i| r.lineage.get(i))
                    .copied()
                    .unwrap_or_default();
                fresh_outputs.entry(parent).or_default().push(r);
            }
            for d in &dirty {
                let outs = fresh_outputs.get(&d.id).cloned().unwrap_or_default();
                fresh_entries.insert(
                    d.id,
                    MemoEntry::Outputs(outs.into_iter().map(|r| r.fields).collect()),
                );
            }
        }
        _ => unreachable!("memoizable() gated above"),
    }
    // Merge in input order: clean records replay, dirty records emit the
    // outputs just attributed to them. Store new entries as we go.
    let mut out: Vec<DataRecord> = Vec::with_capacity(input.len());
    let mut replays = 0usize;
    {
        let mut store = snap.entries.write();
        for (i, rec) in input.into_iter().enumerate() {
            match &cached[i] {
                Some(entry) => {
                    replays += 1;
                    replay_entry(ctx, rec, entry, &mut out);
                }
                None => {
                    if let Some(e) = fresh_entries.get(&rec.id) {
                        store.insert(keys[i], e.clone());
                    }
                    out.extend(fresh_outputs.remove(&rec.id).unwrap_or_default());
                }
            }
        }
    }
    if replays > 0 {
        snap.hits.fetch_add(replays, Ordering::Relaxed);
        ctx.tracer.incr("exec.memo_replay", replays as u64);
        ctx.tracer.event(
            pz_obs::Layer::Executor,
            "memo_replay",
            &[
                ("operator", op.describe()),
                ("replayed", replays.to_string()),
            ],
        );
    }
    Ok(out)
}

/// Reconstruct the output(s) a memoized input record produced. Replayed
/// derives get fresh executor ids; lineage records the input parent (a
/// replayed join row omits the right-side parent id, which is
/// allocation-dependent and excluded from record identity anyway).
fn replay_entry(ctx: &PzContext, rec: DataRecord, entry: &MemoEntry, out: &mut Vec<DataRecord>) {
    match entry {
        MemoEntry::Kept(true) => out.push(rec),
        MemoEntry::Kept(false) => {}
        MemoEntry::Label { field, label } => {
            let mut r = rec;
            r.set(field.clone(), label.clone());
            out.push(r);
        }
        MemoEntry::Outputs(maps) => {
            for fields in maps {
                let mut derived = rec.derive(ctx.next_id());
                derived.fields = fields.clone();
                out.push(derived);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasource::VersionedSource;
    use crate::exec::{execute_plan, ExecutionConfig};
    use crate::field::FieldDef;
    use crate::ops::logical::Cardinality;
    use crate::ops::physical::PhysicalPlan;
    use crate::schema::Schema;
    use pz_llm::protocol::Effort;
    use std::sync::Arc;

    fn versioned_ctx() -> (PzContext, Arc<VersionedSource>) {
        let ctx = PzContext::simulated().with_incremental();
        let (docs, _) = pz_datagen::science::demo_corpus();
        let items: Vec<(String, String)> =
            docs.into_iter().map(|d| (d.filename, d.content)).collect();
        let src = Arc::new(VersionedSource::new(
            "sigmod-demo",
            Schema::pdf_file(),
            items,
        ));
        ctx.registry.register(src.clone());
        (ctx, src)
    }

    fn clinical() -> Schema {
        Schema::new(
            "ClinicalData",
            "datasets in papers",
            vec![
                FieldDef::text("name", "The name of the clinical data dataset"),
                FieldDef::text("url", "The public URL where the dataset can be accessed"),
            ],
        )
        .unwrap()
    }

    fn demo_plan() -> PhysicalPlan {
        PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "sigmod-demo".into(),
                },
                PhysicalOp::LlmFilter {
                    predicate: "The papers are about colorectal cancer".into(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
                PhysicalOp::LlmConvert {
                    target: clinical(),
                    cardinality: Cardinality::OneToMany,
                    description: "extract datasets".into(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
            ],
        }
    }

    fn multiset(records: &[DataRecord]) -> Vec<String> {
        let mut v: Vec<String> = records
            .iter()
            .map(|r| serde_json::to_string(&r.to_json()).unwrap())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn identical_rerun_bills_zero_calls() {
        for config in [
            ExecutionConfig::sequential().with_incremental(),
            ExecutionConfig::streaming().with_incremental(),
        ] {
            let (ctx, _src) = versioned_ctx();
            let (rec1, stats1) = execute_plan(&ctx, &demo_plan(), config).unwrap();
            let calls1 = ctx.ledger.total_requests();
            assert!(calls1 > 0);
            assert_eq!(stats1.memo_hits, 0, "first run replayed from empty memo");
            ctx.reset_accounting();
            let (rec2, stats2) = execute_plan(&ctx, &demo_plan(), config).unwrap();
            assert_eq!(ctx.ledger.total_requests(), 0, "re-run re-billed calls");
            assert_eq!(multiset(&rec1), multiset(&rec2));
            assert!(stats2.memo_hits > 0);
        }
    }

    #[test]
    fn append_one_record_bills_o1_calls() {
        for config in [
            ExecutionConfig::sequential().with_incremental(),
            ExecutionConfig::streaming().with_incremental(),
        ] {
            let (ctx, src) = versioned_ctx();
            let (_, _) = execute_plan(&ctx, &demo_plan(), config).unwrap();
            let v = src.append(
                "delta-000.pdf",
                "Delta document. A colorectal cancer cohort using the FunkyData registry at https://example.org/funky.",
            );
            assert_eq!(v.version, 1);
            ctx.reset_accounting();
            let (rec2, _) = execute_plan(&ctx, &demo_plan(), config).unwrap();
            let delta_calls = ctx.ledger.total_requests();
            assert!(
                delta_calls <= 2,
                "append of 1 record cost {delta_calls} calls (want <= filter + convert)"
            );

            // From-scratch over the final corpus agrees on the answer.
            let scratch = PzContext::simulated();
            let (docs, _) = pz_datagen::science::demo_corpus();
            let mut items: Vec<(String, String)> =
                docs.into_iter().map(|d| (d.filename, d.content)).collect();
            items.push((
                "delta-000.pdf".into(),
                "Delta document. A colorectal cancer cohort using the FunkyData registry at https://example.org/funky.".into(),
            ));
            scratch
                .registry
                .register(Arc::new(crate::datasource::MemorySource::new(
                    "sigmod-demo",
                    Schema::pdf_file(),
                    items,
                )));
            let (rec_f, _) =
                execute_plan(&scratch, &demo_plan(), config_without_incremental(config)).unwrap();
            assert_eq!(multiset(&rec2), multiset(&rec_f));
            assert!(delta_calls < scratch.ledger.total_requests());
        }
    }

    fn config_without_incremental(mut c: ExecutionConfig) -> ExecutionConfig {
        c.incremental = false;
        c
    }

    #[test]
    fn off_by_default_is_inert() {
        // Config flag without a snapshot, and snapshot without the flag,
        // both leave the executor untouched.
        let (ctx, _src) = versioned_ctx();
        let (_, stats) = execute_plan(&ctx, &demo_plan(), ExecutionConfig::sequential()).unwrap();
        assert_eq!(stats.memo_hits, 0);
        assert!(ctx.incremental.as_ref().unwrap().is_empty());
        let json = serde_json::to_string(&stats).unwrap();
        assert!(!json.contains("memo_hits"));
    }
}
