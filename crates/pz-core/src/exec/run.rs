//! Plan executor.
//!
//! Materializing (operator-at-a-time) execution with per-operator
//! accounting. LLM-bound operators can fan their records out over a worker
//! pool (`workers > 1`): calls still accrue full cost on the ledger, but
//! attributed *time* is divided by the worker count — on the virtual clock,
//! parallel calls overlap.

use crate::context::PzContext;
use crate::error::{PzError, PzResult};
use crate::exec::failover::{self, FailoverRank};
use crate::exec::stats::{DegradedExecution, ExecutionStats, OperatorStats};
use crate::ops::physical::{PhysicalOp, PhysicalPlan};
use crate::optimizer::adaptive::{AdaptiveConfig, AdaptiveController};
use crate::record::DataRecord;
use pz_llm::ModelId;
use std::sync::Arc;

/// How a physical plan is driven.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Operator-at-a-time: each operator consumes the full record set
    /// before the next starts. `workers` fans parallelizable operators
    /// out over a thread pool.
    #[default]
    Materializing,
    /// Stage-per-operator pipeline over bounded channels: stages overlap
    /// on the virtual clock; downstream early termination cancels
    /// upstream work.
    Streaming {
        /// In-flight batches each channel may hold (backpressure knob).
        channel_capacity: usize,
        /// Records per batch flowing between stages.
        batch_size: usize,
    },
}

impl ExecMode {
    /// Streaming with the default knobs (capacity 2, batch 4).
    pub fn streaming() -> Self {
        ExecMode::Streaming {
            channel_capacity: 2,
            batch_size: 4,
        }
    }
}

/// Intra-operator worker-pool sizing for streaming stages.
///
/// Each per-batch streaming stage fans its record batches out to a pool of
/// `workers_for(op_index)` workers; the effective pool is further clamped
/// by the operator's model rate limit (`ModelCard::max_concurrency`) and
/// by how many batches actually arrive. Kept `Copy` so it can travel
/// inside [`ExecutionConfig`]: per-operator overrides live in a small
/// fixed table (plans in this reproduction are shallow).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelismConfig {
    /// Default workers per stage. `0` means *auto*: one worker per
    /// available core.
    pub default_workers: usize,
    /// `(op_index, workers)` overrides, first `len` entries valid.
    overrides: [(usize, usize); Self::MAX_OVERRIDES],
    len: usize,
}

impl ParallelismConfig {
    /// Fixed-size override table (kept tiny so the config stays `Copy`).
    pub const MAX_OVERRIDES: usize = 4;

    /// One worker per stage — serial, byte-identical to pre-pool runs.
    pub fn serial() -> Self {
        Self::fixed(1)
    }

    /// The same worker count for every stage.
    pub fn fixed(workers: usize) -> Self {
        Self {
            default_workers: workers.max(1),
            overrides: [(0, 0); Self::MAX_OVERRIDES],
            len: 0,
        }
    }

    /// One worker per available core.
    pub fn auto() -> Self {
        Self::fixed(available_cores())
    }

    /// Override the pool size for one operator (by plan index). At most
    /// [`Self::MAX_OVERRIDES`] overrides are kept; excess ones are ignored.
    pub fn with_override(mut self, op_index: usize, workers: usize) -> Self {
        if let Some(slot) = self.overrides.get_mut(self.len) {
            *slot = (op_index, workers.max(1));
            self.len += 1;
        }
        self
    }

    /// Pool size for the operator at `op_index`.
    pub fn workers_for(&self, op_index: usize) -> usize {
        self.overrides[..self.len]
            .iter()
            .find(|(i, _)| *i == op_index)
            .map(|(_, w)| *w)
            .unwrap_or(self.default_workers)
            .max(1)
    }

    /// Largest pool any stage may get (used for reporting).
    pub fn max_workers(&self) -> usize {
        self.overrides[..self.len]
            .iter()
            .map(|(_, w)| *w)
            .chain(std::iter::once(self.default_workers))
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

impl Default for ParallelismConfig {
    fn default() -> Self {
        Self::serial()
    }
}

/// Worker count for "auto" parallelism: the cores the OS reports.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecutionConfig {
    /// Worker threads for parallelizable operators (materializing mode
    /// only; streaming overlap comes from the stage pipeline). 0 and 1
    /// both mean sequential.
    pub workers: usize,
    /// Materializing or streaming execution.
    pub mode: ExecMode,
    /// Mid-plan model failover: when an operator's model goes unhealthy
    /// (circuit breaker open, or a provider fault survives retries), swap
    /// the operator to the next-best healthy model instead of aborting.
    /// On by default; a no-op while all models stay healthy.
    pub failover: bool,
    /// How failover ranks substitute models — the active policy's primary
    /// dimension ([`crate::execute`] sets this from the policy).
    pub rank: FailoverRank,
    /// Execution deadline in virtual seconds, relative to plan start.
    /// Retries, backoff, and failover all respect it; exceeding it yields
    /// partial results flagged `deadline_exceeded`, never a hang.
    pub deadline_secs: Option<f64>,
    /// Intra-operator worker pools for streaming stages: each per-batch
    /// stage fans batches out to this many workers and merges results
    /// through a sequence-numbered reordering buffer, so output order,
    /// ledger cost, and trace reconciliation are byte-identical to the
    /// serial run — only attributed time shrinks.
    pub parallelism: ParallelismConfig,
    /// Runtime adaptive re-optimization: re-cost the remaining plan suffix
    /// during execution and swap degraded models out before they fail
    /// outright. Requires `failover` (it reuses the same substitution
    /// machinery); disabled by default and byte-invisible while off.
    pub adaptive: AdaptiveConfig,
    /// Incremental re-execution: replay memoized operator verdicts for
    /// unchanged records from the context's `ExecutionSnapshot` and
    /// re-bill only the dirty delta. Requires a snapshot installed via
    /// `PzContext::with_incremental`; off by default and byte-invisible
    /// while off (or while no snapshot is installed).
    pub incremental: bool,
    /// Out-of-core scan: in materializing mode, pull the leading `Scan`
    /// in chunks of this many records and push each chunk through the
    /// maximal prefix of per-record operators before the next chunk is
    /// generated, so at most O(chunk) leaf records are resident at once.
    /// `0` (the default) keeps the legacy whole-corpus materialization and
    /// is byte-identical to pre-chunking builds. Streaming mode already
    /// pulls the source in `batch_size` chunks and ignores this knob.
    /// Output, ledger cost, and per-operator stats are identical at every
    /// chunk size; only peak memory changes.
    pub scan_chunk_size: usize,
    /// Memory budget (in records) for blocking operators, plumbed to
    /// `PzContext::spill_budget_records` on the executor's cloned context.
    /// Past it, `Sort` spills sorted runs to temp files and `HashJoin`
    /// streams its build side in budget-sized batches. `None` (the
    /// default) never spills.
    pub spill_budget_records: Option<usize>,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            mode: ExecMode::default(),
            failover: true,
            rank: FailoverRank::default(),
            deadline_secs: None,
            parallelism: ParallelismConfig::serial(),
            adaptive: AdaptiveConfig::default(),
            incremental: false,
            scan_chunk_size: 0,
            spill_budget_records: None,
        }
    }
}

impl ExecutionConfig {
    pub fn sequential() -> Self {
        Self {
            workers: 1,
            ..Self::default()
        }
    }

    pub fn parallel(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Streaming pipeline with default knobs.
    pub fn streaming() -> Self {
        Self {
            workers: 1,
            mode: ExecMode::streaming(),
            ..Self::default()
        }
    }

    /// Streaming pipeline with explicit backpressure knobs.
    pub fn streaming_with(channel_capacity: usize, batch_size: usize) -> Self {
        Self {
            workers: 1,
            mode: ExecMode::Streaming {
                channel_capacity: channel_capacity.max(1),
                batch_size: batch_size.max(1),
            },
            ..Self::default()
        }
    }

    /// Replace the execution mode, keeping the worker count.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the execution deadline (virtual seconds from plan start).
    pub fn with_deadline(mut self, secs: f64) -> Self {
        self.deadline_secs = Some(secs);
        self
    }

    /// Set the failover ranking dimension.
    pub fn with_rank(mut self, rank: FailoverRank) -> Self {
        self.rank = rank;
        self
    }

    /// Disable mid-plan model failover (provider faults abort the plan).
    pub fn without_failover(mut self) -> Self {
        self.failover = false;
        self
    }

    /// Set the same intra-operator worker-pool size for every streaming
    /// stage (also raises the materializing worker count so both modes
    /// benefit from one knob). `0` means auto (available cores).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        let workers = if workers == 0 {
            available_cores()
        } else {
            workers
        };
        self.parallelism = ParallelismConfig::fixed(workers);
        if self.workers < workers {
            self.workers = workers;
        }
        self
    }

    /// Set a full per-operator parallelism configuration.
    pub fn with_parallelism_config(mut self, parallelism: ParallelismConfig) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Set the adaptive re-optimization configuration.
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Enable incremental re-execution against the context's memo
    /// snapshot (`PzContext::with_incremental`): unchanged records replay
    /// memoized operator verdicts, only the delta is executed and billed.
    pub fn with_incremental(mut self) -> Self {
        self.incremental = true;
        self
    }

    /// Pull the leading `Scan` in chunks of `records` and drive each chunk
    /// through the per-record operator prefix before generating the next
    /// (materializing mode; `0` restores the legacy whole-corpus scan).
    pub fn with_scan_chunk_size(mut self, records: usize) -> Self {
        self.scan_chunk_size = records;
        self
    }

    /// Set the blocking-operator memory budget: past `records`, `Sort`
    /// spills runs to temp files and `HashJoin` streams its build side.
    pub fn with_spill_budget(mut self, records: usize) -> Self {
        self.spill_budget_records = Some(records.max(1));
        self
    }
}

/// Holds an admission slot for the duration of one run; `end` fires on
/// every exit path (success, pipeline error, panic unwind).
struct AdmissionGuard {
    gate: std::sync::Arc<dyn crate::context::AdmissionGate>,
    clock: pz_llm::VirtualClock,
    ticket: u64,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.gate.end(self.ticket, self.clock.now_secs());
    }
}

/// True when `e` is the tenant's own budget refusing further calls — the
/// signal for quota truncation (flagged partial results) rather than a
/// pipeline failure.
fn is_quota_exhausted(e: &crate::error::PzError) -> bool {
    matches!(
        e,
        crate::error::PzError::Llm(pz_llm::LlmError::QuotaExhausted { .. })
    )
}

/// Execute a physical plan, returning output records and statistics.
pub fn execute_plan(
    ctx: &PzContext,
    plan: &PhysicalPlan,
    config: ExecutionConfig,
) -> PzResult<(Vec<DataRecord>, ExecutionStats)> {
    // The deadline is absolute on the virtual clock; retries see it via
    // the cloned context so backoff never sleeps past it.
    let deadline_at = config.deadline_secs.map(|d| ctx.clock.now_secs() + d);
    // Admission: a serving host gates the run here (capacity, queueing,
    // deadline-aware shedding). The deadline is anchored at *submission*,
    // so queue wait eats into it. The RAII guard releases the slot on
    // every exit path, including errors.
    let _admission = match &ctx.admission {
        Some(gate) => {
            let ticket = gate.begin(ctx.clock.now_secs(), deadline_at)?;
            Some(AdmissionGuard {
                gate: gate.clone(),
                clock: ctx.clock.clone(),
                ticket,
            })
        }
        None => None,
    };
    let profiling = ctx.tracer.profiling_enabled();
    let ctx = &{
        let mut c = ctx.clone();
        c.deadline_at_secs = deadline_at;
        // Blocking operators consult the budget straight off the context,
        // so it rides the same clone the deadline does (streaming stage
        // contexts derive from this clone too).
        c.spill_budget_records = config.spill_budget_records;
        if profiling {
            // Collect retry-backoff time; per-op deltas are attributed on
            // the op spans below. Off by default (no sink, no overhead).
            c.retry_wait_us = Some(std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)));
        } else {
            // A caller's context may still carry the sink a previous run
            // installed (e.g. a deadline-aborted profiled run): clear it
            // so this run's retries never leak into stale attribution.
            c.retry_wait_us = None;
        }
        c
    };
    // Adaptive re-optimization rides on the failover machinery; the
    // controller is only constructed when both are on, so disabled runs
    // stay byte-identical.
    let adaptive = if config.adaptive.enabled && config.failover {
        AdaptiveController::from_plan(ctx, plan, config.adaptive, config.rank).map(Arc::new)
    } else {
        None
    };
    // Incremental re-execution is armed only when both the config flag and
    // a context snapshot are present; the per-run replay count is the
    // delta on the (shared, cumulative) snapshot counter.
    let memo = if config.incremental {
        ctx.incremental.clone()
    } else {
        None
    };
    let memo_hits_before = memo.as_ref().map_or(0, |s| s.hits());
    if let ExecMode::Streaming {
        channel_capacity,
        batch_size,
    } = config.mode
    {
        let (records, mut stats) = crate::exec::streaming::execute_streaming(
            ctx,
            plan,
            channel_capacity,
            batch_size,
            &config,
            adaptive,
        )?;
        if let Some(s) = &memo {
            stats.memo_hits = s.hits() - memo_hits_before;
        }
        return Ok((records, stats));
    }
    let mut records: Vec<DataRecord> = Vec::new();
    let mut stats = ExecutionStats {
        plan: plan.describe(),
        ..Default::default()
    };
    let plan_span = ctx.tracer.span(pz_obs::Layer::Executor, "execute_plan");
    plan_span.set_attr("plan", plan.describe());
    plan_span.set_attr("workers", config.workers.to_string());

    // The plan is cloned into a working copy so the adaptive controller
    // can rewrite not-yet-executed operators between steps.
    let mut ops: Vec<PhysicalOp> = plan.ops.clone();
    let mut op_index = 0usize;
    // Quota truncation is armed only when the tenant ledger carries a
    // budget: unbudgeted runs skip the per-op input clone entirely and
    // stay byte-identical to pre-quota builds.
    let quota_armed = ctx.ledger.quota().is_limited();
    // Out-of-core scan: pull the leading Scan in chunks and push each
    // chunk through the longest prefix of chunk-safe (per-record)
    // operators before the next chunk is generated, so at most
    // O(chunk + carried output) leaf records are resident at once.
    // Chunking commutes with these operators — output, ledger, and
    // per-operator stats are identical at every chunk size — so the gate
    // only excludes paths whose control flow depends on whole-input state
    // (adaptive re-planning between ops, quota restore points).
    if config.scan_chunk_size > 0
        && !quota_armed
        && adaptive.is_none()
        && matches!(ops.first(), Some(PhysicalOp::Scan { .. }))
    {
        let prefix_len = 1 + ops[1..].iter().take_while(|op| chunk_safe(op)).count();
        records = run_chunked_prefix(ctx, &ops[..prefix_len], &config, profiling, &mut stats)?;
        // A deadline that tripped mid-drive already stopped the plan (the
        // drive emitted the event); don't run the suffix on partial input.
        op_index = if stats.deadline_exceeded {
            ops.len()
        } else {
            prefix_len
        };
        stats.peak_resident_records = stats.peak_resident_records.max(records.len());
    }
    while op_index < ops.len() {
        let op = &ops[op_index].clone();
        if let Some(d) = deadline_at {
            if ctx.clock.now_secs() >= d {
                stats.deadline_exceeded = true;
                ctx.tracer.event(
                    pz_obs::Layer::Executor,
                    "deadline_exceeded",
                    &[
                        ("at_op", op.describe()),
                        ("at_secs", format!("{:.3}", ctx.clock.now_secs())),
                    ],
                );
                break;
            }
        }
        let input_count = if matches!(op, PhysicalOp::Scan { .. }) {
            0
        } else {
            records.len()
        };
        let ledger_before = snapshot(ctx);
        let clock_before = ctx.clock.now_secs();
        let latency_before = ctx.ledger.total_latency_secs();
        let retry_before = ctx
            .retry_wait_us
            .as_ref()
            .map_or(0, |s| s.load(std::sync::atomic::Ordering::Relaxed));
        // Structural span: LLM leaf spans made by this operator (from any
        // worker thread) nest under it.
        let op_span = ctx
            .tracer
            .span(pz_obs::Layer::Executor, &format!("op:{}", op.describe()));

        let workers = config.workers.min(records.len().max(1));
        // Under a budget, keep the op's input so a mid-op quota refusal can
        // return results through the last *completed* operator.
        let saved = if quota_armed {
            Some(records.clone())
        } else {
            None
        };
        let result = execute_op_with_failover(
            ctx,
            op,
            op_index,
            std::mem::take(&mut records),
            workers,
            &config,
            &mut stats.degraded,
        );
        records = match result {
            Ok(out) => out,
            Err(e) if quota_armed && is_quota_exhausted(&e) => {
                // The tenant's own budget refused the next call. Calls made
                // before the refusal are billed (they ran); nothing past the
                // budget ever was. Truncate: flag the stats, restore the
                // input of the aborted operator, and stop here.
                stats.quota_exhausted = true;
                ctx.tracer.event(
                    pz_obs::Layer::Executor,
                    "quota_exhausted",
                    &[
                        ("at_op", op.describe()),
                        ("at_secs", format!("{:.3}", ctx.clock.now_secs())),
                    ],
                );
                op_span.finish();
                records = saved.unwrap_or_default();
                break;
            }
            Err(e) => {
                return Err(crate::error::PzError::Execution(format!(
                    "operator {}: {e}",
                    op.describe()
                )))
            }
        };

        stats.peak_resident_records = stats.peak_resident_records.max(records.len());
        let ledger_after = snapshot(ctx);
        let raw_elapsed = ctx.clock.now_secs() - clock_before;
        let elapsed = if workers > 1 && op.is_parallelizable() {
            raw_elapsed / workers as f64
        } else {
            raw_elapsed
        };

        let op_stats = OperatorStats {
            logical: op.logical_kind().to_string(),
            physical: op.describe(),
            model: op.model().map(|m| m.to_string()),
            input_records: input_count,
            output_records: records.len(),
            llm_calls: ledger_after.0 - ledger_before.0,
            input_tokens: ledger_after.1 - ledger_before.1,
            output_tokens: ledger_after.2 - ledger_before.2,
            cost_usd: ledger_after.3 - ledger_before.3,
            time_secs: elapsed,
        };
        op_span.set_attr("in", op_stats.input_records.to_string());
        op_span.set_attr("out", op_stats.output_records.to_string());
        op_span.set_attr("llm_calls", op_stats.llm_calls.to_string());
        op_span.set_attr("cost_usd", format!("{:.6}", op_stats.cost_usd));
        op_span.set_attr("time_secs", format!("{:.6}", op_stats.time_secs));
        if profiling {
            // Materializing attribution: ops run sequentially, so each
            // op's window is its raw clock elapsed; provider-wait is the
            // ledger's modelled latency delta, retry is the sink delta,
            // queue/backpressure do not exist in this mode.
            let window_us = (raw_elapsed * 1e6).round() as u64;
            let provider_us =
                ((ctx.ledger.total_latency_secs() - latency_before) * 1e6).round() as u64;
            let retry_after = ctx
                .retry_wait_us
                .as_ref()
                .map_or(0, |s| s.load(std::sync::atomic::Ordering::Relaxed));
            op_span.set_attr("prof_window_us", window_us.to_string());
            op_span.set_attr("prof_provider_wait_us", provider_us.to_string());
            op_span.set_attr(
                "prof_retry_backoff_us",
                retry_after.saturating_sub(retry_before).to_string(),
            );
            if window_us > 0 {
                let util = (op_stats.time_secs * 1e6) / window_us as f64;
                op_span.set_attr("prof_utilization", format!("{:.4}", util.clamp(0.0, 1.0)));
            }
        }
        op_span.finish();
        stats.operators.push(op_stats);
        if let Some(ctrl) = &adaptive {
            // Feed the completed operator's observation in, then let the
            // controller repair the unexecuted suffix if a model drifted.
            ctrl.observe(
                op_index,
                op.model(),
                input_count,
                raw_elapsed,
                ledger_after.3 - ledger_before.3,
            );
            ctrl.repair_suffix(ctx, &mut ops, op_index + 1, records.len());
        }
        op_index += 1;
    }
    if let Some(ctrl) = &adaptive {
        stats.adaptive = ctrl.take_reports();
    }
    if let Some(s) = &memo {
        stats.memo_hits = s.hits() - memo_hits_before;
    }
    stats.finalize();
    plan_span.set_attr("output_records", stats.output_records.to_string());
    plan_span.set_attr("llm_calls", stats.total_llm_calls.to_string());
    plan_span.set_attr("cost_usd", format!("{:.6}", stats.total_cost_usd));
    Ok((records, stats))
}

/// True when `op` commutes with input chunking: `op(a ++ b)` equals
/// `op(a) ++ op(b)` bytewise, including ledger charges and derived-id
/// assignment order. Mirrors the streaming executor's per-batch stage set,
/// minus the joins (whose build side would re-materialize per chunk) and
/// minus `Limit` (kept a barrier so chunked materializing bills exactly
/// what the legacy path bills; early-stop economies are streaming mode's
/// contract).
fn chunk_safe(op: &PhysicalOp) -> bool {
    matches!(
        op,
        PhysicalOp::LlmFilter { .. }
            | PhysicalOp::EmbeddingFilter { .. }
            | PhysicalOp::EnsembleFilter { .. }
            | PhysicalOp::UdfFilter { .. }
            | PhysicalOp::LlmConvert { .. }
            | PhysicalOp::FieldwiseConvert { .. }
            | PhysicalOp::Map { .. }
            | PhysicalOp::Project { .. }
            | PhysicalOp::LlmClassify { .. }
    )
}

/// Per-operator accumulator for the chunked drive: the same ledger deltas
/// the legacy loop takes per op, summed over chunks.
#[derive(Clone, Copy, Default)]
struct PrefixAcc {
    input_records: usize,
    output_records: usize,
    llm_calls: usize,
    input_tokens: usize,
    output_tokens: usize,
    cost_usd: f64,
    raw_elapsed: f64,
}

/// Drive `prefix` (a leading `Scan` plus zero or more chunk-safe
/// operators) chunk-at-a-time: each scan chunk flows through the whole
/// prefix before the next chunk is generated, so resident records stay at
/// O(chunk + carried output). Ids are reserved exactly as the legacy
/// `Scan` reserves them, chunks are consecutive, and every operator runs
/// through the same failover/memo machinery the legacy loop uses — output,
/// ledger, and the accumulated per-operator stats rows are identical to
/// the whole-corpus path at every chunk size. The deadline is checked at
/// chunk boundaries (chunk-granular, vs. the legacy loop's op-granular
/// check).
fn run_chunked_prefix(
    ctx: &PzContext,
    prefix: &[PhysicalOp],
    config: &ExecutionConfig,
    profiling: bool,
    stats: &mut ExecutionStats,
) -> PzResult<Vec<DataRecord>> {
    let PhysicalOp::Scan { dataset } = &prefix[0] else {
        unreachable!("chunked drive requires a leading Scan");
    };
    let wrap = |op: &PhysicalOp, e: PzError| {
        PzError::Execution(format!("operator {}: {e}", op.describe()))
    };
    let batches = (|| {
        let src = ctx.registry.get(dataset)?;
        let n = src.cardinality_hint().unwrap_or(0) as u64;
        let base = ctx.next_ids(n.max(1));
        src.batches(base, config.scan_chunk_size)
    })()
    .map_err(|e| wrap(&prefix[0], e))?;

    let mut acc = vec![PrefixAcc::default(); prefix.len()];
    let mut out: Vec<DataRecord> = Vec::new();
    for batch in batches {
        if let Some(d) = ctx.deadline_at_secs {
            if ctx.clock.now_secs() >= d {
                stats.deadline_exceeded = true;
                ctx.tracer.event(
                    pz_obs::Layer::Executor,
                    "deadline_exceeded",
                    &[
                        ("at_op", prefix[0].describe()),
                        ("at_secs", format!("{:.3}", ctx.clock.now_secs())),
                    ],
                );
                break;
            }
        }
        // The pull itself gets a (leaf-free) span so chunked traces still
        // carry one `op:Scan[..]` span per unit of scan work.
        let scan_span = ctx.tracer.span(
            pz_obs::Layer::Executor,
            &format!("op:{}", prefix[0].describe()),
        );
        let mut chunk = batch.map_err(|e| wrap(&prefix[0], e))?;
        acc[0].output_records += chunk.len();
        scan_span.set_attr("out", chunk.len().to_string());
        scan_span.finish();
        stats.peak_resident_records = stats.peak_resident_records.max(out.len() + chunk.len());
        for (i, op) in prefix.iter().enumerate().skip(1) {
            let in_len = chunk.len();
            let ledger_before = snapshot(ctx);
            let clock_before = ctx.clock.now_secs();
            let latency_before = ctx.ledger.total_latency_secs();
            let retry_before = ctx
                .retry_wait_us
                .as_ref()
                .map_or(0, |s| s.load(std::sync::atomic::Ordering::Relaxed));
            let op_span = ctx
                .tracer
                .span(pz_obs::Layer::Executor, &format!("op:{}", op.describe()));
            let workers = config.workers.min(in_len.max(1));
            chunk = execute_op_with_failover(
                ctx,
                op,
                i,
                std::mem::take(&mut chunk),
                workers,
                config,
                &mut stats.degraded,
            )
            .map_err(|e| wrap(op, e))?;
            let ledger_after = snapshot(ctx);
            let raw = ctx.clock.now_secs() - clock_before;
            acc[i].input_records += in_len;
            acc[i].output_records += chunk.len();
            acc[i].llm_calls += ledger_after.0 - ledger_before.0;
            acc[i].input_tokens += ledger_after.1 - ledger_before.1;
            acc[i].output_tokens += ledger_after.2 - ledger_before.2;
            acc[i].cost_usd += ledger_after.3 - ledger_before.3;
            acc[i].raw_elapsed += raw;
            op_span.set_attr("in", in_len.to_string());
            op_span.set_attr("out", chunk.len().to_string());
            op_span.set_attr("llm_calls", (ledger_after.0 - ledger_before.0).to_string());
            op_span.set_attr(
                "cost_usd",
                format!("{:.6}", ledger_after.3 - ledger_before.3),
            );
            op_span.set_attr("time_secs", format!("{:.6}", raw));
            if profiling {
                let window_us = (raw * 1e6).round() as u64;
                let provider_us =
                    ((ctx.ledger.total_latency_secs() - latency_before) * 1e6).round() as u64;
                let retry_after = ctx
                    .retry_wait_us
                    .as_ref()
                    .map_or(0, |s| s.load(std::sync::atomic::Ordering::Relaxed));
                op_span.set_attr("prof_window_us", window_us.to_string());
                op_span.set_attr("prof_provider_wait_us", provider_us.to_string());
                op_span.set_attr(
                    "prof_retry_backoff_us",
                    retry_after.saturating_sub(retry_before).to_string(),
                );
            }
            op_span.finish();
            stats.peak_resident_records = stats.peak_resident_records.max(out.len() + chunk.len());
        }
        out.extend(chunk);
    }
    // One stats row per prefix operator, in the legacy row shape: the
    // parallel-time divisor uses the op's *total* input so `time_secs`
    // matches the whole-corpus run bit-for-bit.
    for (i, op) in prefix.iter().enumerate() {
        let a = acc[i];
        let workers = config.workers.min(a.input_records.max(1));
        let elapsed = if workers > 1 && op.is_parallelizable() {
            a.raw_elapsed / workers as f64
        } else {
            a.raw_elapsed
        };
        stats.operators.push(OperatorStats {
            logical: op.logical_kind().to_string(),
            physical: op.describe(),
            model: op.model().map(|m| m.to_string()),
            input_records: if i == 0 { 0 } else { a.input_records },
            output_records: a.output_records,
            llm_calls: a.llm_calls,
            input_tokens: a.input_tokens,
            output_tokens: a.output_tokens,
            cost_usd: a.cost_usd,
            time_secs: elapsed,
        });
    }
    Ok(out)
}

/// Run one operator, splitting off memoized records first when incremental
/// re-execution is armed: unchanged records replay their memoized verdicts
/// from the context snapshot, and only the dirty subset flows through the
/// normal (failover-wrapped) execution path below.
#[allow(clippy::too_many_arguments)]
fn execute_op_with_failover(
    ctx: &PzContext,
    op: &PhysicalOp,
    op_index: usize,
    input: Vec<DataRecord>,
    workers: usize,
    config: &ExecutionConfig,
    degraded: &mut Vec<DegradedExecution>,
) -> PzResult<Vec<DataRecord>> {
    if config.incremental {
        if let Some(snap) = ctx.incremental.clone() {
            return crate::exec::incremental::execute_memoized(
                ctx,
                &snap,
                op,
                input,
                &mut |dirty| {
                    execute_op_uncached(ctx, op, op_index, dirty, workers, config, degraded)
                },
            );
        }
    }
    execute_op_uncached(ctx, op, op_index, input, workers, config, degraded)
}

/// Run one operator, failing over to substitute models when its fault
/// domain is unhealthy. Materializing semantics: a mid-operator provider
/// fault re-runs the *whole* input on the substitute (already-billed calls
/// stay on the ledger; per-op snapshot deltas keep stats reconciled).
/// Errors come back unwrapped — the caller adds operator context.
#[allow(clippy::too_many_arguments)]
fn execute_op_uncached(
    ctx: &PzContext,
    op: &PhysicalOp,
    op_index: usize,
    input: Vec<DataRecord>,
    workers: usize,
    config: &ExecutionConfig,
    degraded: &mut Vec<DegradedExecution>,
) -> PzResult<Vec<DataRecord>> {
    let run = |active: &PhysicalOp, records: Vec<DataRecord>| {
        if workers > 1 && active.is_parallelizable() {
            execute_parallel(ctx, active, records, workers)
        } else {
            active.execute(ctx, records)
        }
    };
    if !config.failover || !failover::swappable(op) {
        return run(op, input);
    }
    let mut active = op.clone();
    let mut tried: Vec<ModelId> = active.model().cloned().into_iter().collect();
    let mut first_err: Option<PzError> = None;
    loop {
        let model = active
            .model()
            .cloned()
            .expect("swappable operator carries a model");
        let now = ctx.clock.now_secs();
        // Proactive: skip a model whose breaker is already open (tripped by
        // an earlier operator) instead of burning a doomed attempt.
        let (reason, err) = if ctx.health.is_open(&model, now) {
            ("breaker open", None)
        } else {
            match run(&active, input.clone()) {
                Ok(out) => return Ok(out),
                Err(e) if is_provider_fault(&e) => ("provider fault", Some(e)),
                Err(e) => return Err(e),
            }
        };
        if first_err.is_none() {
            first_err = err;
        }
        let next = failover::candidates(&ctx.catalog, &ctx.health, &active, config.rank, now)
            .into_iter()
            .find(|m| !tried.contains(m));
        let Some(to) = next else {
            // No healthy substitute left: surface the first provider error
            // exactly as a failover-less executor would have.
            return Err(first_err.unwrap_or_else(|| {
                PzError::Execution(format!(
                    "circuit breaker open for {model} and no healthy substitute model"
                ))
            }));
        };
        let entry = DegradedExecution {
            operator_index: op_index,
            operator: op.describe(),
            from_model: model.to_string(),
            to_model: to.to_string(),
            records_affected: input.len(),
            est_quality_delta: failover::quality_delta(&ctx.catalog, &model, &to),
            at_secs: ctx.clock.now_secs(),
            reason: reason.to_string(),
        };
        failover::emit_event(&ctx.tracer, &entry);
        degraded.push(entry);
        active = failover::with_model(&active, to.clone()).expect("swappable operator");
        tried.push(to);
    }
}

/// Is this the kind of error failover can route around — a fault of the
/// model's provider rather than of the plan or the data?
fn is_provider_fault(e: &PzError) -> bool {
    matches!(e, PzError::Llm(inner) if inner.is_provider_fault())
}

fn snapshot(ctx: &PzContext) -> (usize, usize, usize, f64) {
    let usage = ctx.ledger.total_usage();
    (
        ctx.ledger.total_requests(),
        usage.input_tokens,
        usage.output_tokens,
        ctx.ledger.total_cost_usd(),
    )
}

/// Fan records out over `workers` threads, preserving input order.
fn execute_parallel(
    ctx: &PzContext,
    op: &PhysicalOp,
    input: Vec<DataRecord>,
    workers: usize,
) -> PzResult<Vec<DataRecord>> {
    let chunk_size = input.len().div_ceil(workers);
    let chunks: Vec<Vec<DataRecord>> = input
        .chunks(chunk_size.max(1))
        .map(|c| c.to_vec())
        .collect();
    let mut results: Vec<PzResult<Vec<DataRecord>>> = Vec::with_capacity(chunks.len());
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let ctx = ctx.clone();
                let op = op.clone();
                s.spawn(move |_| op.execute(&ctx, chunk))
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    })
    .expect("crossbeam scope");
    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasource::MemorySource;
    use crate::field::FieldDef;
    use crate::ops::logical::Cardinality;
    use crate::schema::Schema;
    use pz_llm::protocol::Effort;
    use std::sync::Arc;

    fn science_ctx() -> PzContext {
        let ctx = PzContext::simulated();
        let (docs, _) = pz_datagen::science::demo_corpus();
        let items: Vec<(String, String)> =
            docs.into_iter().map(|d| (d.filename, d.content)).collect();
        ctx.registry.register(Arc::new(MemorySource::new(
            "sigmod-demo",
            Schema::pdf_file(),
            items,
        )));
        ctx
    }

    fn clinical() -> Schema {
        Schema::new(
            "ClinicalData",
            "datasets in papers",
            vec![
                FieldDef::text("name", "The name of the clinical data dataset"),
                FieldDef::text("description", "A short description of the dataset"),
                FieldDef::text("url", "The public URL where the dataset can be accessed"),
            ],
        )
        .unwrap()
    }

    fn demo_plan() -> PhysicalPlan {
        PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "sigmod-demo".into(),
                },
                PhysicalOp::LlmFilter {
                    predicate: "The papers are about colorectal cancer".into(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
                PhysicalOp::LlmConvert {
                    target: clinical(),
                    cardinality: Cardinality::OneToMany,
                    description: "extract datasets".into(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
            ],
        }
    }

    #[test]
    fn end_to_end_scientific_pipeline() {
        let ctx = science_ctx();
        let (records, stats) =
            execute_plan(&ctx, &demo_plan(), ExecutionConfig::sequential()).unwrap();
        // The demo: 11 papers in, ~5 pass the filter, ~6 datasets out.
        assert_eq!(stats.operators[0].output_records, 11);
        assert!(
            (4..=6).contains(&stats.operators[1].output_records),
            "filter kept {}",
            stats.operators[1].output_records
        );
        assert!(
            (4..=8).contains(&records.len()),
            "extracted {}",
            records.len()
        );
        assert!(stats.total_cost_usd > 0.0);
        assert!(stats.total_time_secs > 0.0);
        assert_eq!(stats.operators.len(), 3);
        // URLs present on most outputs.
        let with_url = records
            .iter()
            .filter(|r| r.get("url").is_some_and(|v| !v.is_null()))
            .count();
        assert!(with_url >= records.len() / 2);
    }

    #[test]
    fn per_operator_accounting_sums_to_total() {
        let ctx = science_ctx();
        let (_, stats) = execute_plan(&ctx, &demo_plan(), ExecutionConfig::sequential()).unwrap();
        let op_cost: f64 = stats.operators.iter().map(|o| o.cost_usd).sum();
        assert!((op_cost - stats.total_cost_usd).abs() < 1e-9);
        assert!((ctx.ledger.total_cost_usd() - stats.total_cost_usd).abs() < 1e-9);
        // Scan is free; filter and convert each made LLM calls.
        assert_eq!(stats.operators[0].llm_calls, 0);
        assert_eq!(stats.operators[1].llm_calls, 11);
        assert!(stats.operators[2].llm_calls >= 4);
    }

    #[test]
    fn parallel_execution_same_records_less_time() {
        let ctx1 = science_ctx();
        let (rec_seq, stats_seq) =
            execute_plan(&ctx1, &demo_plan(), ExecutionConfig::sequential()).unwrap();
        let ctx2 = science_ctx();
        let (rec_par, stats_par) =
            execute_plan(&ctx2, &demo_plan(), ExecutionConfig::parallel(4)).unwrap();
        // Same outputs (determinism is per record content, not thread order
        // within chunks — chunk order preserves input order).
        assert_eq!(rec_seq.len(), rec_par.len());
        let mut names_seq: Vec<String> = rec_seq
            .iter()
            .map(|r| r.get("name").unwrap().as_display())
            .collect();
        let mut names_par: Vec<String> = rec_par
            .iter()
            .map(|r| r.get("name").unwrap().as_display())
            .collect();
        names_seq.sort();
        names_par.sort();
        assert_eq!(names_seq, names_par);
        // Cost identical, attributed time smaller.
        assert!((stats_seq.total_cost_usd - stats_par.total_cost_usd).abs() < 1e-9);
        assert!(
            stats_par.total_time_secs < stats_seq.total_time_secs,
            "par {} vs seq {}",
            stats_par.total_time_secs,
            stats_seq.total_time_secs
        );
    }

    #[test]
    fn conventional_ops_in_pipeline() {
        let ctx = science_ctx();
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "sigmod-demo".into(),
                },
                PhysicalOp::Sort {
                    field: "filename".into(),
                    descending: true,
                },
                PhysicalOp::Limit { n: 3 },
                PhysicalOp::Project {
                    fields: vec!["filename".into()],
                },
            ],
        };
        let (records, stats) = execute_plan(&ctx, &plan, ExecutionConfig::sequential()).unwrap();
        assert_eq!(records.len(), 3);
        assert!(records[0].get("contents").is_none());
        assert_eq!(stats.total_llm_calls, 0);
        assert_eq!(stats.total_cost_usd, 0.0);
    }

    #[test]
    fn streaming_same_records_and_cost_less_virtual_time() {
        let ctx_m = science_ctx();
        let (rec_m, stats_m) =
            execute_plan(&ctx_m, &demo_plan(), ExecutionConfig::sequential()).unwrap();
        let ctx_s = science_ctx();
        let (rec_s, stats_s) =
            execute_plan(&ctx_s, &demo_plan(), ExecutionConfig::streaming()).unwrap();

        // Identical outputs: the simulator keys responses on record
        // content, and stages preserve batch order.
        assert_eq!(rec_m.len(), rec_s.len());
        let names = |recs: &[DataRecord]| {
            let mut v: Vec<String> = recs
                .iter()
                .map(|r| r.get("name").unwrap().as_display())
                .collect();
            v.sort();
            v
        };
        assert_eq!(names(&rec_m), names(&rec_s));

        // Identical cost and calls on the ledger and in the stats.
        assert!((stats_m.total_cost_usd - stats_s.total_cost_usd).abs() < 1e-9);
        assert_eq!(stats_m.total_llm_calls, stats_s.total_llm_calls);
        assert!((ctx_m.ledger.total_cost_usd() - ctx_s.ledger.total_cost_usd()).abs() < 1e-9);

        // Overlapping stages: strictly less attributed virtual time.
        assert!(
            stats_s.total_time_secs < stats_m.total_time_secs,
            "streaming {} vs materializing {}",
            stats_s.total_time_secs,
            stats_m.total_time_secs
        );
        assert!(stats_s.total_time_secs > 0.0);
    }

    #[test]
    fn streaming_per_operator_accounting_sums_to_ledger() {
        let ctx = science_ctx();
        let (_, stats) = execute_plan(&ctx, &demo_plan(), ExecutionConfig::streaming()).unwrap();
        assert_eq!(stats.operators.len(), 3);
        assert_eq!(stats.operators[0].llm_calls, 0);
        assert_eq!(stats.operators[1].llm_calls, 11);
        assert!(stats.operators[2].llm_calls >= 4);
        let op_cost: f64 = stats.operators.iter().map(|o| o.cost_usd).sum();
        assert!((op_cost - ctx.ledger.total_cost_usd()).abs() < 1e-9);
        let op_calls: usize = stats.operators.iter().map(|o| o.llm_calls).sum();
        assert_eq!(op_calls, ctx.ledger.total_requests());
    }

    #[test]
    fn parallel_streaming_same_records_cost_less_attributed_time() {
        let base = ExecutionConfig::streaming_with(2, 1);
        let ctx_1 = science_ctx();
        let (rec_1, stats_1) = execute_plan(&ctx_1, &demo_plan(), base).unwrap();
        let ctx_8 = science_ctx();
        let (rec_8, stats_8) =
            execute_plan(&ctx_8, &demo_plan(), base.with_parallelism(8)).unwrap();

        // The worker pool is attribution-only: identical records…
        let names = |recs: &[DataRecord]| {
            let mut v: Vec<String> = recs
                .iter()
                .map(|r| r.get("name").unwrap().as_display())
                .collect();
            v.sort();
            v
        };
        assert_eq!(names(&rec_1), names(&rec_8));
        // …identical ledger (same calls, same dollars, same clock order)…
        assert!((ctx_1.ledger.total_cost_usd() - ctx_8.ledger.total_cost_usd()).abs() < 1e-9);
        assert_eq!(ctx_1.ledger.total_requests(), ctx_8.ledger.total_requests());
        assert!((stats_1.total_cost_usd - stats_8.total_cost_usd).abs() < 1e-9);
        // …but at least 2x less attributed plan time, and the pool size is
        // recorded on the stats.
        assert!(
            stats_8.total_time_secs * 2.0 < stats_1.total_time_secs,
            "parallel 8 {} vs serial {}",
            stats_8.total_time_secs,
            stats_1.total_time_secs
        );
        assert_eq!(stats_1.parallelism, 1);
        assert_eq!(stats_8.parallelism, 8);
        // Per-operator accounting still reconciles against the ledger.
        let op_cost: f64 = stats_8.operators.iter().map(|o| o.cost_usd).sum();
        assert!((op_cost - ctx_8.ledger.total_cost_usd()).abs() < 1e-9);
    }

    #[test]
    fn parallel_streaming_pool_clamped_by_model_rate_limit() {
        // gpt-4o publishes max_concurrency 8: a 32-worker request clamps to
        // the same effective pool, so attribution is identical.
        let base = ExecutionConfig::streaming_with(2, 1);
        let ctx_8 = science_ctx();
        let (_, stats_8) = execute_plan(&ctx_8, &demo_plan(), base.with_parallelism(8)).unwrap();
        let ctx_32 = science_ctx();
        let (_, stats_32) = execute_plan(&ctx_32, &demo_plan(), base.with_parallelism(32)).unwrap();
        assert!((stats_8.total_time_secs - stats_32.total_time_secs).abs() < 1e-9);
        assert_eq!(stats_8.parallelism, stats_32.parallelism);
    }

    #[test]
    fn parallel_streaming_failover_matches_serial_decisions() {
        // PR 4 semantics must hold per worker: one worker tripping the
        // breaker fails the whole stage over exactly once, and the pooled
        // run lands on the same substitute model as the serial run.
        let outage = pz_llm::FaultPlan::none().outage("gpt-4o", 0.0, 1e9);
        let base = ExecutionConfig::streaming_with(2, 1);
        let ctx_1 = science_ctx();
        ctx_1.faults.set(outage.clone());
        let (rec_1, stats_1) = execute_plan(&ctx_1, &demo_plan(), base).unwrap();
        let ctx_4 = science_ctx();
        ctx_4.faults.set(outage);
        let (rec_4, stats_4) =
            execute_plan(&ctx_4, &demo_plan(), base.with_parallelism(4)).unwrap();

        assert!(!rec_4.is_empty());
        assert!(
            !stats_4.degraded.is_empty(),
            "outage must record a failover"
        );
        assert_eq!(rec_1.len(), rec_4.len());
        let decisions = |stats: &ExecutionStats| {
            stats
                .degraded
                .iter()
                .map(|d| {
                    (
                        d.operator_index,
                        d.from_model.clone(),
                        d.to_model.clone(),
                        d.records_affected,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(decisions(&stats_1), decisions(&stats_4));
        assert!((ctx_1.ledger.total_cost_usd() - ctx_4.ledger.total_cost_usd()).abs() < 1e-9);
    }

    #[test]
    fn streaming_limit_cancels_upstream_llm_calls() {
        // scan -> filter -> limit 2: streaming stops filtering once the
        // limit is satisfied; materializing filters all 11 papers.
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "sigmod-demo".into(),
                },
                PhysicalOp::LlmFilter {
                    predicate: "The papers are about colorectal cancer".into(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
                PhysicalOp::Limit { n: 2 },
            ],
        };
        let ctx_m = science_ctx();
        let (rec_m, _) = execute_plan(&ctx_m, &plan, ExecutionConfig::sequential()).unwrap();
        let ctx_s = science_ctx();
        // batch 1 so cancellation lands at record granularity.
        let (rec_s, _) =
            execute_plan(&ctx_s, &plan, ExecutionConfig::streaming_with(1, 1)).unwrap();
        assert_eq!(rec_m.len(), 2);
        assert_eq!(rec_s.len(), 2);
        assert_eq!(ctx_m.ledger.total_requests(), 11);
        assert!(
            ctx_s.ledger.total_requests() < ctx_m.ledger.total_requests(),
            "streaming made {} calls, materializing {}",
            ctx_s.ledger.total_requests(),
            ctx_m.ledger.total_requests()
        );
    }

    #[test]
    fn streaming_conventional_ops_match_materializing() {
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "sigmod-demo".into(),
                },
                PhysicalOp::Sort {
                    field: "filename".into(),
                    descending: true,
                },
                PhysicalOp::Limit { n: 3 },
                PhysicalOp::Project {
                    fields: vec!["filename".into()],
                },
            ],
        };
        let ctx_m = science_ctx();
        let (rec_m, _) = execute_plan(&ctx_m, &plan, ExecutionConfig::sequential()).unwrap();
        let ctx_s = science_ctx();
        let (rec_s, stats_s) = execute_plan(&ctx_s, &plan, ExecutionConfig::streaming()).unwrap();
        let files = |recs: &[DataRecord]| -> Vec<String> {
            recs.iter()
                .map(|r| r.get("filename").unwrap().as_display())
                .collect()
        };
        assert_eq!(files(&rec_m), files(&rec_s));
        assert_eq!(stats_s.total_llm_calls, 0);
        assert_eq!(stats_s.total_cost_usd, 0.0);
    }

    #[test]
    fn streaming_failing_op_surfaces_first_error_with_context() {
        let ctx = science_ctx();
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "sigmod-demo".into(),
                },
                PhysicalOp::UdfFilter {
                    udf: "not-registered".into(),
                },
                PhysicalOp::Limit { n: 3 },
            ],
        };
        let err = execute_plan(&ctx, &plan, ExecutionConfig::streaming_with(1, 2)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("UDFFilter[not-registered]"), "{msg}");
        assert!(msg.contains("unknown UDF"), "{msg}");
    }

    #[test]
    fn streaming_empty_plan_and_unknown_dataset() {
        let ctx = PzContext::simulated();
        let empty = PhysicalPlan { ops: vec![] };
        let (recs, stats) = execute_plan(&ctx, &empty, ExecutionConfig::streaming()).unwrap();
        assert!(recs.is_empty());
        assert_eq!(stats.operators.len(), 0);
        let ghost = PhysicalPlan {
            ops: vec![PhysicalOp::Scan {
                dataset: "ghost".into(),
            }],
        };
        assert!(execute_plan(&ctx, &ghost, ExecutionConfig::streaming()).is_err());
    }

    #[test]
    fn failing_op_propagates_error_with_operator_context() {
        let ctx = science_ctx();
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "sigmod-demo".into(),
                },
                PhysicalOp::UdfFilter {
                    udf: "not-registered".into(),
                },
            ],
        };
        let err = execute_plan(&ctx, &plan, ExecutionConfig::sequential()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("UDFFilter[not-registered]"), "{msg}");
        assert!(msg.contains("unknown UDF"), "{msg}");
    }

    #[test]
    fn unknown_dataset_errors() {
        let ctx = PzContext::simulated();
        let plan = PhysicalPlan {
            ops: vec![PhysicalOp::Scan {
                dataset: "ghost".into(),
            }],
        };
        assert!(execute_plan(&ctx, &plan, ExecutionConfig::sequential()).is_err());
    }

    /// Equality the chunked drive guarantees against the legacy path:
    /// records bytewise, and every per-operator stats row field-for-field
    /// (peak_resident_records is a memory *measurement* and differs by
    /// design).
    fn assert_drive_equal(
        (lr, ls): &(Vec<DataRecord>, ExecutionStats),
        (cr, cs): &(Vec<DataRecord>, ExecutionStats),
        label: &str,
    ) {
        assert_eq!(lr, cr, "{label}: records diverge");
        assert_eq!(
            ls.operators.len(),
            cs.operators.len(),
            "{label}: operator row count"
        );
        for (a, b) in ls.operators.iter().zip(&cs.operators) {
            // Money and time accumulate per chunk, so they can differ by
            // f64 summation order (~1e-17); every counted field is exact.
            assert_eq!(a.physical, b.physical, "{label}: operator row diverges");
            assert_eq!(
                a.input_records, b.input_records,
                "{label}: {}: in",
                a.physical
            );
            assert_eq!(
                a.output_records, b.output_records,
                "{label}: {}: out",
                a.physical
            );
            assert_eq!(a.llm_calls, b.llm_calls, "{label}: {}: calls", a.physical);
            assert_eq!(
                a.input_tokens, b.input_tokens,
                "{label}: {}: in toks",
                a.physical
            );
            assert_eq!(
                a.output_tokens, b.output_tokens,
                "{label}: {}: out toks",
                a.physical
            );
            assert!(
                (a.cost_usd - b.cost_usd).abs() < 1e-12,
                "{label}: {}: cost {} vs {}",
                a.physical,
                a.cost_usd,
                b.cost_usd
            );
            assert!(
                (a.time_secs - b.time_secs).abs() < 1e-9,
                "{label}: {}: time {} vs {}",
                a.physical,
                a.time_secs,
                b.time_secs
            );
        }
        assert_eq!(ls.total_llm_calls, cs.total_llm_calls, "{label}: calls");
        assert!(
            (ls.total_cost_usd - cs.total_cost_usd).abs() < 1e-12,
            "{label}: cost"
        );
        assert!(
            (ls.total_time_secs - cs.total_time_secs).abs() < 1e-9,
            "{label}: time"
        );
        assert_eq!(ls.output_records, cs.output_records, "{label}: outputs");
    }

    #[test]
    fn chunked_scan_identical_at_every_chunk_size() {
        // Fresh contexts per run so id counters, ledgers, and clocks all
        // start from the same state; the simulator keys responses on
        // request content, so equal inputs mean equal outputs.
        let legacy =
            execute_plan(&science_ctx(), &demo_plan(), ExecutionConfig::sequential()).unwrap();
        for chunk in [1, 3, 7, 64] {
            let chunked = execute_plan(
                &science_ctx(),
                &demo_plan(),
                ExecutionConfig::sequential().with_scan_chunk_size(chunk),
            )
            .unwrap();
            assert_drive_equal(&legacy, &chunked, &format!("chunk={chunk}"));
        }
    }

    #[test]
    fn chunked_scan_bounds_resident_records() {
        let (_, legacy) =
            execute_plan(&science_ctx(), &demo_plan(), ExecutionConfig::sequential()).unwrap();
        // Legacy materializes the whole 11-paper corpus at once.
        assert_eq!(legacy.peak_resident_records, 11);
        let (_, chunked) = execute_plan(
            &science_ctx(),
            &demo_plan(),
            ExecutionConfig::sequential().with_scan_chunk_size(2),
        )
        .unwrap();
        // Chunked holds one 2-record chunk plus the filtered survivors.
        assert!(
            chunked.peak_resident_records < legacy.peak_resident_records,
            "chunked peak {} not below legacy {}",
            chunked.peak_resident_records,
            legacy.peak_resident_records
        );
    }

    #[test]
    fn chunked_scan_blocking_suffix_runs_on_accumulated_records() {
        // Sort is not chunk-safe: the drive must stop at it and hand the
        // accumulated records to the legacy loop.
        let mut plan = demo_plan();
        plan.ops.push(PhysicalOp::Sort {
            field: "name".into(),
            descending: false,
        });
        plan.ops.push(PhysicalOp::Limit { n: 3 });
        let legacy = execute_plan(&science_ctx(), &plan, ExecutionConfig::sequential()).unwrap();
        for chunk in [1, 4] {
            let chunked = execute_plan(
                &science_ctx(),
                &plan,
                ExecutionConfig::sequential().with_scan_chunk_size(chunk),
            )
            .unwrap();
            assert_drive_equal(&legacy, &chunked, &format!("suffix chunk={chunk}"));
        }
    }

    #[test]
    fn chunked_scan_parallel_same_multiset_and_cost() {
        // With worker pools the thread interleaving may reassign derived
        // ids, so compare the field multiset plus the accounted totals
        // (time uses the same total-input divisor, so it matches exactly).
        let multiset = |records: &[DataRecord]| {
            let mut keys: Vec<String> = records.iter().map(|r| format!("{:?}", r.fields)).collect();
            keys.sort();
            keys
        };
        let (lr, ls) =
            execute_plan(&science_ctx(), &demo_plan(), ExecutionConfig::parallel(4)).unwrap();
        let (cr, cs) = execute_plan(
            &science_ctx(),
            &demo_plan(),
            ExecutionConfig::parallel(4).with_scan_chunk_size(3),
        )
        .unwrap();
        assert_eq!(multiset(&lr), multiset(&cr));
        assert_eq!(ls.total_llm_calls, cs.total_llm_calls);
        assert!((ls.total_cost_usd - cs.total_cost_usd).abs() < 1e-12);
        assert!((ls.total_time_secs - cs.total_time_secs).abs() < 1e-9);
    }

    #[test]
    fn chunk_size_zero_is_legacy_path() {
        // The default config never enters the drive: stats carry the
        // legacy whole-corpus peak.
        let (_, stats) = execute_plan(
            &science_ctx(),
            &demo_plan(),
            ExecutionConfig::sequential().with_scan_chunk_size(0),
        )
        .unwrap();
        assert_eq!(stats.peak_resident_records, 11);
    }
}
