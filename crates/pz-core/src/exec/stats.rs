//! Execution statistics — the data behind Figure 5's output panel:
//! "Users can visualize both output records, as well as summary information
//! about the plan execution such as the operators chosen and the total
//! pipeline cost and runtime."

use crate::optimizer::adaptive::AdaptiveReport;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Per-operator measurements.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OperatorStats {
    /// Logical kind, e.g. `filter`.
    pub logical: String,
    /// Physical description, e.g. `LLMFilter[gpt-4o]`.
    pub physical: String,
    /// Model used, if any.
    pub model: Option<String>,
    pub input_records: usize,
    pub output_records: usize,
    /// Model requests issued by this operator.
    pub llm_calls: usize,
    pub input_tokens: usize,
    pub output_tokens: usize,
    pub cost_usd: f64,
    /// Virtual seconds attributed to this operator (already divided by the
    /// worker count for parallel execution).
    pub time_secs: f64,
}

impl OperatorStats {
    /// Observed selectivity (output/input); 1.0 for empty input.
    pub fn selectivity(&self) -> f64 {
        if self.input_records == 0 {
            1.0
        } else {
            self.output_records as f64 / self.input_records as f64
        }
    }
}

/// One mid-plan failover decision: an operator's model was swapped for the
/// next-best healthy candidate after its fault domain went unhealthy.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradedExecution {
    /// Index of the afflicted operator in the physical plan.
    pub operator_index: usize,
    /// Physical description of the operator as planned, e.g.
    /// `LLMFilter[gpt-4o]`.
    pub operator: String,
    pub from_model: String,
    pub to_model: String,
    /// Records processed by the substitute model instead of the planned
    /// one (includes any re-run after a mid-operator failure).
    pub records_affected: usize,
    /// Estimated quality change from the model cards (negative =
    /// degradation).
    pub est_quality_delta: f64,
    /// Virtual-clock time of the swap decision.
    pub at_secs: f64,
    /// Why the swap happened (`breaker open`, `provider fault`, ...).
    pub reason: String,
}

/// Whole-pipeline measurements.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// Physical plan description.
    pub plan: String,
    /// Policy used to choose the plan (if optimizer-driven).
    pub policy: String,
    pub operators: Vec<OperatorStats>,
    pub total_cost_usd: f64,
    pub total_time_secs: f64,
    pub total_llm_calls: usize,
    pub output_records: usize,
    /// Mid-plan failover decisions, in the order they were made. Empty on
    /// healthy runs.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub degraded: Vec<DegradedExecution>,
    /// Adaptive plan repairs (champion/challenger switches), in the order
    /// they were made. Empty unless the adaptive controller is enabled
    /// *and* fired, so serialized stats stay byte-identical otherwise.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub adaptive: Vec<AdaptiveReport>,
    /// The execution deadline elapsed and the run returned partial results.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub deadline_exceeded: bool,
    /// The tenant's budget refused further model calls mid-run and the run
    /// returned flagged partial results (never silently billed past the
    /// quota). Absent on healthy runs so serialized stats stay
    /// byte-identical.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub quota_exhausted: bool,
    /// Largest intra-operator worker-pool size used by any streaming
    /// stage. `0`/`1` (serial) keeps serialized stats byte-identical to
    /// pre-parallelism runs.
    #[serde(default, skip_serializing_if = "serial_workers")]
    pub parallelism: usize,
    /// Incremental re-execution: operator verdicts replayed from the memo
    /// snapshot instead of being re-billed. `0` (including every
    /// non-incremental run) keeps serialized stats byte-identical to
    /// pre-incremental runs.
    #[serde(default, skip_serializing_if = "zero_hits")]
    pub memo_hits: usize,
    /// High-water mark of leaf records resident in the materializing
    /// executor at once (carried output plus the in-flight scan chunk).
    /// The out-of-core scan keeps this at O(chunk + output) however large
    /// the corpus; the scaling gate asserts exactly that. `0` (streaming
    /// mode, which bounds memory by channel capacity instead and does not
    /// track this) omits the field so serialized stats stay comparable.
    #[serde(default, skip_serializing_if = "zero_hits")]
    pub peak_resident_records: usize,
}

/// Serialization predicate: a run without memo replays carries no field.
fn zero_hits(n: &usize) -> bool {
    *n == 0
}

/// Serialization predicate: a serial run carries no parallelism field.
fn serial_workers(n: &usize) -> bool {
    *n <= 1
}

impl ExecutionStats {
    /// Recompute totals from the operator rows.
    pub fn finalize(&mut self) {
        self.total_cost_usd = self.operators.iter().map(|o| o.cost_usd).sum();
        self.total_time_secs = self.operators.iter().map(|o| o.time_secs).sum();
        self.total_llm_calls = self.operators.iter().map(|o| o.llm_calls).sum();
        self.output_records = self.operators.last().map_or(0, |o| o.output_records);
    }

    /// Recompute totals for a *pipelined* run: stages overlap, so total
    /// time is not the sum of stage times but the bottleneck stage plus
    /// the delay before it first received work. `startup[i]` is operator
    /// `i`'s busy time before it emitted its first output batch (its
    /// contribution to downstream pipeline-fill delay). Cost and call
    /// totals are unaffected — only time models the overlap.
    pub fn finalize_pipelined(&mut self, startup: &[f64]) {
        self.finalize();
        let mut fill = 0.0f64;
        let mut total = 0.0f64;
        for (i, op) in self.operators.iter().enumerate() {
            total = total.max(fill + op.time_secs);
            fill += startup.get(i).copied().unwrap_or(0.0);
        }
        self.total_time_secs = total;
    }

    /// Index of the bottleneck operator under the pipelined model of
    /// [`Self::finalize_pipelined`]: the operator maximizing
    /// `fill_i + time_secs_i` with `fill` accumulating `startup`. The
    /// profiler (`pz_obs::profile::PlanProfile::bottleneck`) replays the
    /// same fold from span attributes; the two must agree.
    pub fn pipelined_bottleneck(&self, startup: &[f64]) -> Option<usize> {
        let mut fill = 0.0f64;
        let mut best: Option<(usize, f64)> = None;
        for (i, op) in self.operators.iter().enumerate() {
            let end = fill + op.time_secs;
            if best.is_none_or(|(_, b)| end > b) {
                best = Some((i, end));
            }
            fill += startup.get(i).copied().unwrap_or(0.0);
        }
        best.map(|(i, _)| i)
    }

    /// Render the Figure-5-style summary table.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "plan: {}", self.plan);
        if !self.policy.is_empty() {
            let _ = writeln!(s, "policy: {}", self.policy);
        }
        let _ = writeln!(
            s,
            "{:<34} {:>6} {:>6} {:>6} {:>7} {:>9} {:>10} {:>10}",
            "operator", "in", "out", "sel", "calls", "tokens", "cost($)", "time(s)"
        );
        for op in &self.operators {
            let _ = writeln!(
                s,
                "{:<34} {:>6} {:>6} {:>6.2} {:>7} {:>9} {:>10.4} {:>10.2}",
                truncate(&op.physical, 34),
                op.input_records,
                op.output_records,
                op.selectivity(),
                op.llm_calls,
                op.input_tokens + op.output_tokens,
                op.cost_usd,
                op.time_secs
            );
        }
        let _ = writeln!(
            s,
            "TOTAL: {} output records, {} LLM calls, ${:.4}, {:.1}s (virtual)",
            self.output_records, self.total_llm_calls, self.total_cost_usd, self.total_time_secs
        );
        if self.parallelism > 1 {
            let _ = writeln!(s, "parallelism: {} workers/stage", self.parallelism);
        }
        // Resilience annotations appear only on degraded runs, so healthy
        // output stays byte-identical.
        for d in &self.degraded {
            let _ = writeln!(
                s,
                "DEGRADED: op#{} {} failed over {} -> {} ({} records, est. quality {:+.2}, {})",
                d.operator_index,
                d.operator,
                d.from_model,
                d.to_model,
                d.records_affected,
                d.est_quality_delta,
                d.reason
            );
        }
        for r in &self.adaptive {
            let _ = writeln!(
                s,
                "REPLANNED: op#{} {} switched {} -> {} ({}: {:.2} >= {:.2}, est suffix {:.1}s -> {:.1}s, {} records left)",
                r.operator_index,
                r.operator,
                r.from_model,
                r.to_model,
                r.trigger,
                r.observed_ratio,
                r.threshold,
                r.est_suffix_secs_before,
                r.est_suffix_secs_after,
                r.records_remaining
            );
        }
        if self.memo_hits > 0 {
            let _ = writeln!(
                s,
                "INCREMENTAL: {} memoized operator verdict(s) replayed; only the delta was re-billed",
                self.memo_hits
            );
        }
        if self.deadline_exceeded {
            let _ = writeln!(s, "DEADLINE EXCEEDED: results are partial");
        }
        if self.quota_exhausted {
            let _ = writeln!(
                s,
                "QUOTA EXHAUSTED: results are partial; the tenant budget refused further calls"
            );
        }
        s
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(physical: &str, input: usize, output: usize, cost: f64, time: f64) -> OperatorStats {
        OperatorStats {
            logical: "x".into(),
            physical: physical.into(),
            model: None,
            input_records: input,
            output_records: output,
            llm_calls: input,
            input_tokens: 0,
            output_tokens: 0,
            cost_usd: cost,
            time_secs: time,
        }
    }

    #[test]
    fn selectivity() {
        assert_eq!(op("f", 10, 5, 0.0, 0.0).selectivity(), 0.5);
        assert_eq!(op("f", 0, 0, 0.0, 0.0).selectivity(), 1.0);
    }

    #[test]
    fn finalize_totals() {
        let mut stats = ExecutionStats {
            plan: "p".into(),
            policy: "MaxQuality".into(),
            operators: vec![op("a", 10, 5, 0.1, 1.0), op("b", 5, 5, 0.2, 2.0)],
            ..Default::default()
        };
        stats.finalize();
        assert!((stats.total_cost_usd - 0.3).abs() < 1e-12);
        assert!((stats.total_time_secs - 3.0).abs() < 1e-12);
        assert_eq!(stats.total_llm_calls, 15);
        assert_eq!(stats.output_records, 5);
    }

    #[test]
    fn finalize_pipelined_takes_bottleneck_plus_fill_not_sum() {
        let mut stats = ExecutionStats {
            plan: "p".into(),
            // scan (free) -> filter (10s busy, 2s to first batch) ->
            // convert (8s busy).
            operators: vec![
                op("Scan", 0, 10, 0.0, 0.0),
                op("f", 10, 5, 0.1, 10.0),
                op("c", 5, 5, 0.2, 8.0),
            ],
            ..Default::default()
        };
        stats.finalize_pipelined(&[0.0, 2.0, 8.0]);
        // convert starts after 0+2s of fill and runs 8s => ends at 10s;
        // filter itself runs 10s => bottleneck is 10s, not 18s.
        assert!((stats.total_time_secs - 10.0).abs() < 1e-12);
        // Cost and call totals are still plain sums.
        assert!((stats.total_cost_usd - 0.3).abs() < 1e-12);
        assert_eq!(stats.total_llm_calls, 15);
        // The filter (index 1) is the limiting stage.
        assert_eq!(stats.pipelined_bottleneck(&[0.0, 2.0, 8.0]), Some(1));
    }

    #[test]
    fn pipelined_bottleneck_moves_with_fill() {
        let mut stats = ExecutionStats {
            plan: "p".into(),
            operators: vec![op("a", 0, 10, 0.0, 5.0), op("b", 10, 10, 0.0, 4.0)],
            ..Default::default()
        };
        // Without fill, a (5s) dominates b (4s)...
        assert_eq!(stats.pipelined_bottleneck(&[0.0, 0.0]), Some(0));
        // ...but 3s of fill before b makes b finish last (3+4 > 5).
        assert_eq!(stats.pipelined_bottleneck(&[3.0, 0.0]), Some(1));
        stats.operators.clear();
        assert_eq!(stats.pipelined_bottleneck(&[]), None);
    }

    #[test]
    fn render_contains_rows_and_totals() {
        let mut stats = ExecutionStats {
            plan: "scan -> filter".into(),
            policy: "MinCost".into(),
            operators: vec![op("LLMFilter[gpt-4o]", 11, 5, 0.35, 240.0)],
            ..Default::default()
        };
        stats.finalize();
        let t = stats.render_table();
        assert!(t.contains("LLMFilter[gpt-4o]"));
        assert!(t.contains("policy: MinCost"));
        assert!(t.contains("TOTAL"));
        assert!(t.contains("0.3500"));
    }

    #[test]
    fn truncate_long_names() {
        let long = "X".repeat(60);
        let t = truncate(&long, 10);
        assert!(t.chars().count() <= 10);
        assert!(t.ends_with('…'));
    }

    #[test]
    fn truncate_keeps_exact_fit_strings_intact() {
        // A string of exactly n chars must NOT be ellipsized.
        let exact = "Y".repeat(10);
        assert_eq!(truncate(&exact, 10), exact);
        // Multi-byte chars count as chars, not bytes.
        let unicode = "é".repeat(10);
        assert_eq!(truncate(&unicode, 10), unicode);
        assert_eq!(truncate("short", 10), "short");
    }

    #[test]
    fn render_includes_selectivity_and_tokens() {
        let mut o = op("LLMFilter[gpt-4o]", 10, 5, 0.1, 1.0);
        o.input_tokens = 1200;
        o.output_tokens = 34;
        let mut stats = ExecutionStats {
            plan: "p".into(),
            operators: vec![o],
            ..Default::default()
        };
        stats.finalize();
        let t = stats.render_table();
        assert!(t.contains("sel"), "{t}");
        assert!(t.contains("tokens"), "{t}");
        assert!(t.contains("0.50"), "selectivity column: {t}");
        assert!(t.contains("1234"), "token column: {t}");
    }

    #[test]
    fn stats_serialize_to_json() {
        let stats = ExecutionStats::default();
        let j = serde_json::to_string(&stats).unwrap();
        assert!(j.contains("operators"));
        // Healthy runs serialize without resilience fields...
        assert!(!j.contains("degraded"));
        assert!(!j.contains("deadline_exceeded"));
        assert!(!j.contains("quota_exhausted"));
        assert!(!j.contains("adaptive"));
        // ...and old serialized stats still deserialize.
        let old: ExecutionStats = serde_json::from_str(&j).unwrap();
        assert!(old.degraded.is_empty());
        assert!(!old.deadline_exceeded);
        assert!(!old.quota_exhausted);
        assert!(old.adaptive.is_empty());
    }

    #[test]
    fn render_annotates_replans_only_when_present() {
        let mut stats = ExecutionStats {
            plan: "p".into(),
            operators: vec![op("LLMFilter[gpt-4o]", 11, 5, 0.1, 1.0)],
            ..Default::default()
        };
        stats.finalize();
        assert!(!stats.render_table().contains("REPLANNED"));
        stats.adaptive.push(AdaptiveReport {
            operator_index: 1,
            operator: "LLMFilter[gpt-4o]".into(),
            from_model: "gpt-4o".into(),
            to_model: "llama-3-70b".into(),
            trigger: "time drift".into(),
            observed_ratio: 4.21,
            threshold: 3.0,
            est_suffix_secs_before: 120.0,
            est_suffix_secs_after: 25.0,
            records_remaining: 9,
            at_secs: 31.5,
        });
        let t = stats.render_table();
        assert!(
            t.contains("REPLANNED: op#1 LLMFilter[gpt-4o] switched gpt-4o -> llama-3-70b"),
            "{t}"
        );
        assert!(t.contains("time drift"), "{t}");
        assert!(t.contains("4.21"), "{t}");
    }

    #[test]
    fn render_annotates_degraded_and_deadline_only_when_present() {
        let mut stats = ExecutionStats {
            plan: "p".into(),
            operators: vec![op("LLMFilter[gpt-4o]", 11, 5, 0.1, 1.0)],
            ..Default::default()
        };
        stats.finalize();
        let healthy = stats.render_table();
        assert!(!healthy.contains("DEGRADED"), "{healthy}");
        assert!(!healthy.contains("DEADLINE"), "{healthy}");

        stats.degraded.push(DegradedExecution {
            operator_index: 1,
            operator: "LLMFilter[gpt-4o]".into(),
            from_model: "gpt-4o".into(),
            to_model: "llama-3-70b".into(),
            records_affected: 11,
            est_quality_delta: -0.04,
            at_secs: 30.0,
            reason: "breaker open".into(),
        });
        stats.deadline_exceeded = true;
        let degraded = stats.render_table();
        assert!(
            degraded.contains("DEGRADED: op#1 LLMFilter[gpt-4o] failed over gpt-4o -> llama-3-70b"),
            "{degraded}"
        );
        assert!(degraded.contains("-0.04"), "{degraded}");
        assert!(degraded.contains("DEADLINE EXCEEDED"), "{degraded}");
    }
}
