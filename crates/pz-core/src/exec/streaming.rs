//! Streaming pipelined execution.
//!
//! Each physical operator runs as a *stage* on its own scoped thread,
//! linked to its neighbours by bounded channels
//! ([`crate::exec::channel`]): record batches flow downstream as soon as
//! they are produced, so LLM-bound stages overlap on the virtual clock
//! instead of serializing. Backpressure comes from channel capacity;
//! early termination (a satisfied `Limit`, a closed tail) propagates
//! upstream as a failed `send`, cancelling in-flight work at batch
//! granularity.
//!
//! ## Accounting under concurrency
//!
//! The materializing executor attributes per-operator cost by snapshotting
//! the shared ledger around each operator — invalid when stages run
//! concurrently. Here every stage gets its own [`StageMeter`]: a thin
//! `LlmClient` wrapper that serializes provider calls through one global
//! gate and attributes each call's ledger delta (requests, tokens,
//! dollars, modelled latency) to its stage. Cache hits never touch the
//! ledger and therefore bill nothing, exactly as in materializing mode;
//! retry backoff advances the clock *between* attempts (outside the gate)
//! and is attributed to no stage.
//!
//! Plan time is *modelled*, not measured: the virtual clock advances by
//! the full latency of every call regardless of mode, so overlap shows up
//! as `ExecutionStats::finalize_pipelined` — plan time is the bottleneck
//! stage plus upstream pipeline-fill delay, not the sum of stages.
//!
//! ## Intra-operator worker pools
//!
//! Per-batch stages can additionally fan their batches out to a pool of
//! workers ([`ExecutionConfig::parallelism`], clamped by the model's
//! provider rate limit). The pool is built for determinism first:
//!
//! - an **intake** hands each incoming batch a sequence number;
//! - a **turnstile** grants provider access strictly in sequence order,
//!   so the clock, the ledger, fault windows, and failover decisions are
//!   byte-identical to the serial schedule no matter how the OS schedules
//!   the workers;
//! - a sequence-numbered **reordering buffer** re-serializes completed
//!   batches before emission, so downstream sees exactly the serial
//!   output order;
//! - the stage's [`StageFailover`] is shared by all its workers, so one
//!   worker tripping a breaker fails the whole stage over exactly once.
//!
//! Concurrency therefore changes *time attribution only*: a stage's busy
//! time is divided by its effective worker count
//! (`min(workers, batches)`), mirroring the materializing executor's
//! `elapsed / workers` rule, and `finalize_pipelined` turns that into the
//! plan-level speedup.
//!
//! ## Spans
//!
//! The plan span is structural; per-operator spans are *leaf* spans
//! opened up-front in plan order (all siblings under the plan span), so
//! concurrent stage threads never push onto the tracer's shared scope
//! stack. LLM leaf spans made mid-stream therefore parent under the plan
//! span; per-operator totals live as attributes on the `op:` spans and
//! reconcile exactly with `ExecutionStats` and the ledger.

use crate::context::PzContext;
use crate::error::{PzError, PzResult};
use crate::exec::channel::{bounded, Receiver, Sender};
use crate::exec::failover;
use crate::exec::run::ExecutionConfig;
use crate::exec::stats::{DegradedExecution, ExecutionStats, OperatorStats};
use crate::ops::physical::{PhysicalOp, PhysicalPlan};
use crate::optimizer::adaptive::AdaptiveController;
use crate::record::DataRecord;
use parking_lot::Mutex;
use pz_llm::{
    CompletionRequest, CompletionResponse, EmbeddingRequest, EmbeddingResponse, LlmClient,
    LlmError, ModelId, Usage, UsageLedger,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-stage accounting accumulated by [`StageMeter`].
#[derive(Clone, Copy, Debug, Default)]
struct MeterTotals {
    llm_calls: usize,
    input_tokens: usize,
    output_tokens: usize,
    cost_usd: f64,
    /// Modelled latency attributed to this stage (sum of its calls'
    /// ledger latency — excludes retry backoff, which no stage owns).
    busy_secs: f64,
}

/// Per-stage profiling gauges, present only when the tracer's profiling
/// flag is on ([`pz_obs::Tracer::set_profiling`]). All quantities are
/// *virtual-clock* microseconds measured around the stage's blocking
/// regions; with profiling off no gauge exists and the executor's trace
/// output is byte-identical to a pre-profiler build.
struct StageProf {
    tracer: pz_obs::Tracer,
    /// Queue-depth histogram name for this stage's input channel
    /// (`stage.{idx}.queue_depth` — the channel feeding stage `idx`).
    in_depth: String,
    /// Same, for the output channel (`stage.{idx+1}.queue_depth`).
    out_depth: String,
    /// Blocked on an empty input channel.
    queue_wait_us: AtomicU64,
    /// Blocked on a full output channel (downstream too slow).
    backpressure_us: AtomicU64,
    /// Waiting for the provider gate/turnstile plus the modelled latency
    /// of the stage's own provider calls.
    provider_wait_us: AtomicU64,
    /// Retry-backoff sleeps, accumulated by the retry layer through the
    /// stage context's `retry_wait_us` sink (shared `Arc` so the clone
    /// handed to `RetryContext` lands here).
    retry_backoff_us: Arc<AtomicU64>,
}

impl StageProf {
    fn now(&self) -> u64 {
        self.tracer.now_micros()
    }
}

/// `LlmClient` wrapper attributing ledger deltas to one stage.
///
/// All stages share one `gate`, so ledger snapshots taken around a call
/// see exactly that call's contribution even though stages run on
/// concurrent threads. Failed (transient) attempts bill nothing — the
/// simulator errors before recording — so retries stay cost-neutral, as
/// in materializing mode.
struct StageMeter {
    inner: Arc<dyn LlmClient>,
    gate: Arc<Mutex<()>>,
    ledger: UsageLedger,
    totals: Mutex<MeterTotals>,
    /// Profiling gauges; `None` unless the tracer's profiling flag was on
    /// when the plan launched.
    prof: Option<StageProf>,
}

impl StageMeter {
    fn new(
        inner: Arc<dyn LlmClient>,
        gate: Arc<Mutex<()>>,
        ledger: UsageLedger,
        prof: Option<StageProf>,
    ) -> Self {
        Self {
            inner,
            gate,
            ledger,
            totals: Mutex::new(MeterTotals::default()),
            prof,
        }
    }

    fn snap(&self) -> (usize, Usage, f64, f64) {
        (
            self.ledger.total_requests(),
            self.ledger.total_usage(),
            self.ledger.total_cost_usd(),
            self.ledger.total_latency_secs(),
        )
    }

    fn metered<R>(&self, call: impl FnOnce(&dyn LlmClient) -> R) -> R {
        // Provider-wait covers gate contention (stages serialize provider
        // access) plus the call's own modelled latency.
        let prof_t0 = self.prof.as_ref().map(|p| p.now());
        let _serialized = self.gate.lock();
        let before = self.snap();
        let out = call(self.inner.as_ref());
        let after = self.snap();
        let mut t = self.totals.lock();
        t.llm_calls += after.0 - before.0;
        t.input_tokens += after.1.input_tokens - before.1.input_tokens;
        t.output_tokens += after.1.output_tokens - before.1.output_tokens;
        t.cost_usd += after.2 - before.2;
        t.busy_secs += after.3 - before.3;
        drop(t);
        if let (Some(p), Some(t0)) = (self.prof.as_ref(), prof_t0) {
            p.provider_wait_us
                .fetch_add(p.now().saturating_sub(t0), Ordering::Relaxed);
        }
        out
    }

    fn totals(&self) -> MeterTotals {
        *self.totals.lock()
    }

    fn busy_secs(&self) -> f64 {
        self.totals.lock().busy_secs
    }
}

impl LlmClient for StageMeter {
    fn complete(&self, req: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
        self.metered(|c| c.complete(req))
    }

    fn embed(&self, req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
        self.metered(|c| c.embed(req))
    }
}

/// What one stage thread reports back after joining.
#[derive(Default)]
struct StageReport {
    input_records: usize,
    output_records: usize,
    /// Final-stage only: the plan's output records.
    collected: Vec<DataRecord>,
    /// Busy time accumulated before the first output batch was emitted —
    /// the stage's contribution to downstream pipeline-fill delay.
    startup_secs: f64,
    /// Failover decisions made by this stage, in order.
    degraded: Vec<DegradedExecution>,
    /// Workers that could actually overlap: `min(pool size, batches)`.
    /// `0`/`1` means serial; divides the stage's attributed busy time.
    effective_workers: usize,
    /// Profiling only: virtual µs from stage launch to the stage thread
    /// finishing — the window its attribution buckets must fill.
    window_us: u64,
}

/// Per-stage failover state: once a stage swaps models it *stays* on the
/// substitute for later batches (sticky), re-checking the breaker per
/// batch so trips from other stages are seen promptly. Unlike the
/// materializing executor, only the in-flight batch is re-run on a swap —
/// earlier batches already streamed downstream on the planned model.
struct StageFailover {
    active: PhysicalOp,
    planned_model: Option<ModelId>,
    planned_desc: String,
    op_index: usize,
    enabled: bool,
    rank: crate::exec::FailoverRank,
    /// Adaptive controller shared by all stages; `None` unless enabled.
    adaptive: Option<Arc<AdaptiveController>>,
    /// Incremental re-execution armed (`ExecutionConfig::with_incremental`
    /// plus a context snapshot): memoized records in each batch replay,
    /// only the dirty subset reaches the operator below.
    incremental: bool,
}

impl StageFailover {
    fn new(
        op: PhysicalOp,
        op_index: usize,
        config: &ExecutionConfig,
        adaptive: Option<Arc<AdaptiveController>>,
    ) -> Self {
        let enabled = config.failover && failover::swappable(&op);
        Self {
            planned_model: op.model().cloned(),
            planned_desc: op.describe(),
            active: op,
            op_index,
            enabled,
            rank: config.rank,
            adaptive: if enabled { adaptive } else { None },
            incremental: config.incremental,
        }
    }

    /// Run one batch through the active operator, swapping models on
    /// provider faults / open breakers. Successful batches processed by a
    /// substitute accrue onto the latest degraded entry so
    /// `records_affected` sums to exactly the records the planned model
    /// did not handle.
    ///
    /// With an adaptive controller attached, each batch is preceded by a
    /// champion/challenger check (sticky swap off a degraded-but-alive
    /// model) and followed by an observation: the batch's clock delta
    /// minus *other* stages' billed latency — the only attribution that
    /// sees fault stalls and retry backoff, which never reach the ledger.
    fn execute(
        &mut self,
        ctx: &PzContext,
        input: Vec<DataRecord>,
        degraded: &mut Vec<DegradedExecution>,
        meter: &StageMeter,
    ) -> PzResult<Vec<DataRecord>> {
        // Memo split first, so every stage shape (source, per-batch,
        // pooled, blocking) replays memoized records and routes only the
        // dirty subset through the adaptive/failover machinery below. The
        // fingerprint follows the *active* operator: a sticky model swap
        // changes the memo namespace along with the outputs.
        if self.incremental {
            if let Some(snap) = ctx.incremental.clone() {
                let op = self.active.clone();
                if crate::exec::incremental::memoizable(&op) {
                    return crate::exec::incremental::execute_memoized(
                        ctx,
                        &snap,
                        &op,
                        input,
                        &mut |dirty| self.execute_direct(ctx, dirty, degraded, meter),
                    );
                }
            }
        }
        self.execute_direct(ctx, input, degraded, meter)
    }

    fn execute_direct(
        &mut self,
        ctx: &PzContext,
        input: Vec<DataRecord>,
        degraded: &mut Vec<DegradedExecution>,
        meter: &StageMeter,
    ) -> PzResult<Vec<DataRecord>> {
        if !self.enabled {
            return self.active.execute(ctx, input);
        }
        if let Some(to) = self
            .adaptive
            .as_ref()
            .and_then(|ctrl| ctrl.challenge(ctx, &self.active, self.op_index))
        {
            self.active = failover::with_model(&self.active, to).expect("swappable operator");
            // The substitution is sticky: later failover entries and
            // records_affected accrual are relative to the adaptively
            // chosen model, not the originally planned one.
            self.planned_model = self.active.model().cloned();
            self.planned_desc = self.active.describe();
        }
        let batch_len = input.len();
        let obs = self.adaptive.as_ref().map(|_| {
            (
                self.active.model().cloned(),
                ctx.clock.now_secs(),
                ctx.ledger.total_latency_secs(),
                meter.busy_secs(),
            )
        });
        let out = self.execute_with_failover(ctx, input, degraded);
        if let (Some(ctrl), Some((model, clock0, lat0, busy0))) = (&self.adaptive, obs) {
            if out.is_ok() {
                let clock_delta = ctx.clock.now_secs() - clock0;
                let others = (ctx.ledger.total_latency_secs() - lat0) - (meter.busy_secs() - busy0);
                let attributed = (clock_delta - others).max(0.0);
                ctrl.observe(self.op_index, model.as_ref(), batch_len, attributed, 0.0);
            }
        }
        out
    }

    fn execute_with_failover(
        &mut self,
        ctx: &PzContext,
        input: Vec<DataRecord>,
        degraded: &mut Vec<DegradedExecution>,
    ) -> PzResult<Vec<DataRecord>> {
        let mut tried: Vec<ModelId> = self.active.model().cloned().into_iter().collect();
        let mut first_err: Option<PzError> = None;
        loop {
            let model = self
                .active
                .model()
                .cloned()
                .expect("swappable operator carries a model");
            let now = ctx.clock.now_secs();
            let (reason, err) = if ctx.health.is_open(&model, now) {
                ("breaker open", None)
            } else {
                match self.active.execute(ctx, input.clone()) {
                    Ok(out) => {
                        if self.active.model() != self.planned_model.as_ref() {
                            if let Some(entry) = degraded.last_mut() {
                                entry.records_affected += input.len();
                            }
                        }
                        return Ok(out);
                    }
                    Err(e) if is_provider_fault(&e) => ("provider fault", Some(e)),
                    Err(e) => return Err(e),
                }
            };
            if first_err.is_none() {
                first_err = err;
            }
            let next =
                failover::candidates(&ctx.catalog, &ctx.health, &self.active, self.rank, now)
                    .into_iter()
                    .find(|m| !tried.contains(m));
            let Some(to) = next else {
                return Err(first_err.unwrap_or_else(|| {
                    PzError::Execution(format!(
                        "circuit breaker open for {model} and no healthy substitute model"
                    ))
                }));
            };
            let entry = DegradedExecution {
                operator_index: self.op_index,
                operator: self.planned_desc.clone(),
                from_model: model.to_string(),
                to_model: to.to_string(),
                // Accrued per successfully processed batch, above.
                records_affected: 0,
                est_quality_delta: failover::quality_delta(&ctx.catalog, &model, &to),
                at_secs: ctx.clock.now_secs(),
                reason: reason.to_string(),
            };
            failover::emit_event(&ctx.tracer, &entry);
            degraded.push(entry);
            self.active =
                failover::with_model(&self.active, to.clone()).expect("swappable operator");
            tried.push(to);
        }
    }
}

fn is_provider_fault(e: &PzError) -> bool {
    matches!(e, PzError::Llm(inner) if inner.is_provider_fault())
}

/// How a stage consumes its input stream.
enum StageKind {
    /// Batch-at-a-time: `op.execute` per incoming batch.
    PerBatch,
    /// Must see the whole input before producing anything.
    Blocking,
    /// Stateful pass-through that cancels upstream once satisfied.
    Limit(usize),
    /// Pass-through, then flush the other dataset at end-of-stream.
    Union,
}

fn stage_kind(op: &PhysicalOp) -> StageKind {
    match op {
        PhysicalOp::Limit { n } => StageKind::Limit(*n),
        // Sort/Distinct/Aggregate need the full input; Retrieve builds a
        // temporary vector collection over it, so per-batch top-k would
        // be wrong. A mid-plan Scan ignores its input entirely — running
        // it once over the collected stream matches materializing mode.
        PhysicalOp::Sort { .. }
        | PhysicalOp::Distinct { .. }
        | PhysicalOp::Aggregate { .. }
        | PhysicalOp::Retrieve { .. }
        | PhysicalOp::Scan { .. } => StageKind::Blocking,
        PhysicalOp::UnionAll { .. } => StageKind::Union,
        _ => StageKind::PerBatch,
    }
}

/// Where a stage's output goes: the next stage's channel, or (for the
/// final stage) an in-memory collection.
struct Emitter {
    output: Option<Sender<Vec<DataRecord>>>,
    collected: Vec<DataRecord>,
    first_emit_busy: Option<f64>,
}

impl Emitter {
    /// Deliver a batch downstream. `false` means downstream disconnected
    /// (early termination) and the stage should stop producing.
    fn emit(&mut self, meter: &StageMeter, batch: Vec<DataRecord>) -> bool {
        if self.first_emit_busy.is_none() {
            self.first_emit_busy = Some(meter.busy_secs());
        }
        match &self.output {
            Some(tx) => match meter.prof.as_ref() {
                None => tx.send(batch).is_ok(),
                Some(p) => {
                    // A blocked send is backpressure: downstream (or the
                    // provider it waits on) is the slow party.
                    let t0 = p.now();
                    let ok = tx.send(batch).is_ok();
                    p.backpressure_us
                        .fetch_add(p.now().saturating_sub(t0), Ordering::Relaxed);
                    if ok {
                        p.tracer.observe(&p.out_depth, tx.len() as f64);
                    }
                    ok
                }
            },
            None => {
                self.collected.extend(batch);
                true
            }
        }
    }
}

/// `rx.recv()` with the wait charged to the stage's queue-wait gauge and
/// the post-receive queue depth sampled (profiling only).
fn recv_timed(rx: &Receiver<Vec<DataRecord>>, meter: &StageMeter) -> Option<Vec<DataRecord>> {
    match meter.prof.as_ref() {
        None => rx.recv(),
        Some(p) => {
            let t0 = p.now();
            let out = rx.recv();
            p.queue_wait_us
                .fetch_add(p.now().saturating_sub(t0), Ordering::Relaxed);
            if out.is_some() {
                p.tracer.observe(&p.in_depth, rx.len() as f64);
            }
            out
        }
    }
}

/// Sequence-numbered reordering buffer: workers insert completed batches
/// in any order; [`ReorderBuffer::pop_ready`] yields them strictly in
/// sequence order. This is the invariant that keeps a worker pool's
/// output order byte-identical to the serial run.
struct ReorderBuffer {
    next_seq: usize,
    pending: BTreeMap<usize, Vec<DataRecord>>,
}

impl ReorderBuffer {
    fn new() -> Self {
        Self {
            next_seq: 0,
            pending: BTreeMap::new(),
        }
    }

    fn insert(&mut self, seq: usize, batch: Vec<DataRecord>) {
        self.pending.insert(seq, batch);
    }

    /// The next in-sequence batch, if it has arrived. Empty batches flow
    /// through too — they advance the sequence without being emitted.
    fn pop_ready(&mut self) -> Option<Vec<DataRecord>> {
        let batch = self.pending.remove(&self.next_seq)?;
        self.next_seq += 1;
        Some(batch)
    }
}

/// Grants workers provider access strictly in batch-sequence order.
///
/// The virtual clock, ledger, fault windows, and breaker state are all
/// shared global state: if workers hit the provider in OS-scheduling
/// order, timestamps (and therefore fault-window hits and failover
/// decisions) would differ run to run. The turnstile pins provider-call
/// order to the serial schedule, making worker pools deterministic;
/// concurrency is then *modelled* by dividing attributed time.
struct Turnstile {
    turn: std::sync::Mutex<usize>,
    advanced: std::sync::Condvar,
}

impl Turnstile {
    fn new() -> Self {
        Self {
            turn: std::sync::Mutex::new(0),
            advanced: std::sync::Condvar::new(),
        }
    }

    fn wait_for(&self, seq: usize) {
        let mut turn = self.turn.lock().expect("turnstile lock");
        while *turn != seq {
            turn = self.advanced.wait(turn).expect("turnstile lock");
        }
    }

    fn advance(&self) {
        let mut turn = self.turn.lock().expect("turnstile lock");
        *turn += 1;
        self.advanced.notify_all();
    }
}

/// The intake side of a worker pool: workers pull the next batch and its
/// sequence number atomically, so sequence numbers mirror channel order.
struct Intake {
    rx: Receiver<Vec<DataRecord>>,
    next_seq: usize,
}

/// The emit side of a worker pool: completed batches funnel through the
/// reordering buffer into the stage's ordinary [`Emitter`].
struct EmitGate {
    emitter: Emitter,
    buffer: ReorderBuffer,
    output_records: usize,
}

impl EmitGate {
    /// Insert a completed batch and flush everything now in sequence.
    /// `false` means downstream disconnected (early termination).
    fn push(&mut self, seq: usize, batch: Vec<DataRecord>, meter: &StageMeter) -> bool {
        self.buffer.insert(seq, batch);
        while let Some(b) = self.buffer.pop_ready() {
            if b.is_empty() {
                continue;
            }
            self.output_records += b.len();
            if !self.emitter.emit(meter, b) {
                return false;
            }
        }
        true
    }
}

struct StageShared {
    abort: AtomicBool,
    first_error: Mutex<Option<PzError>>,
    /// Absolute deadline on the virtual clock, if any.
    deadline_at: Option<f64>,
    deadline_exceeded: AtomicBool,
}

impl StageShared {
    fn fail(&self, op: &PhysicalOp, e: PzError) {
        self.abort.store(true, Ordering::SeqCst);
        let mut slot = self.first_error.lock();
        if slot.is_none() {
            *slot = Some(PzError::Execution(format!(
                "operator {}: {e}",
                op.describe()
            )));
        }
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// Deadline check, flagging the run as partial when it fires. Stages
    /// stop *cleanly* (dropping their receiver cancels upstream), so the
    /// pipeline drains to partial results rather than an error.
    fn past_deadline(&self, now: f64) -> bool {
        match self.deadline_at {
            Some(d) if now >= d => {
                self.deadline_exceeded.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }
}

/// Execute `plan` as a stage-per-operator pipeline.
pub(crate) fn execute_streaming(
    ctx: &PzContext,
    plan: &PhysicalPlan,
    channel_capacity: usize,
    batch_size: usize,
    config: &ExecutionConfig,
    adaptive: Option<Arc<AdaptiveController>>,
) -> PzResult<(Vec<DataRecord>, ExecutionStats)> {
    let mut stats = ExecutionStats {
        plan: plan.describe(),
        ..Default::default()
    };
    if plan.ops.is_empty() {
        return Ok((Vec::new(), stats));
    }
    let channel_capacity = channel_capacity.max(1);
    let batch_size = batch_size.max(1);

    let plan_span = ctx.tracer.span(pz_obs::Layer::Executor, "execute_plan");
    plan_span.set_attr("plan", plan.describe());
    plan_span.set_attr("mode", "streaming");
    plan_span.set_attr("channel_capacity", channel_capacity.to_string());
    plan_span.set_attr("batch_size", batch_size.to_string());

    // Leaf spans do not push the tracer's scope stack, so opening them
    // up-front keeps parenting correct while stages run concurrently.
    let op_spans: Vec<pz_obs::SpanGuard> = plan
        .ops
        .iter()
        .map(|op| {
            ctx.tracer
                .leaf_span(pz_obs::Layer::Executor, &format!("op:{}", op.describe()))
        })
        .collect();

    let gate = Arc::new(Mutex::new(()));
    let shared = Arc::new(StageShared {
        abort: AtomicBool::new(false),
        first_error: Mutex::new(None),
        deadline_at: ctx.deadline_at_secs,
        deadline_exceeded: AtomicBool::new(false),
    });
    // Profiling gauges exist only when the tracer's flag is on, so the
    // default run records nothing new and its trace stays byte-identical.
    let profiling = ctx.tracer.profiling_enabled();
    let meters: Vec<Arc<StageMeter>> = plan
        .ops
        .iter()
        .enumerate()
        .map(|(idx, _)| {
            Arc::new(StageMeter::new(
                ctx.llm.clone(),
                gate.clone(),
                ctx.ledger.clone(),
                profiling.then(|| StageProf {
                    tracer: ctx.tracer.clone(),
                    in_depth: format!("stage.{idx}.queue_depth"),
                    out_depth: format!("stage.{}.queue_depth", idx + 1),
                    queue_wait_us: AtomicU64::new(0),
                    backpressure_us: AtomicU64::new(0),
                    provider_wait_us: AtomicU64::new(0),
                    retry_backoff_us: Arc::new(AtomicU64::new(0)),
                }),
            ))
        })
        .collect();

    let mut reports: Vec<StageReport> = Vec::with_capacity(plan.ops.len());
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(plan.ops.len());
        let mut upstream: Option<Receiver<Vec<DataRecord>>> = None;
        for (idx, op) in plan.ops.iter().enumerate() {
            let (tx, next_rx) = if idx + 1 < plan.ops.len() {
                let (tx, rx) = bounded(channel_capacity);
                (Some(tx), Some(rx))
            } else {
                (None, None)
            };
            let input = upstream.take();
            upstream = next_rx;

            let meter = meters[idx].clone();
            let mut stage_ctx = ctx.clone();
            stage_ctx.llm = meter.clone();
            // Point the retry layer's backoff sink at this stage's gauge.
            stage_ctx.retry_wait_us = meter.prof.as_ref().map(|p| p.retry_backoff_us.clone());
            let op = op.clone();
            let shared = shared.clone();
            let config = *config;
            let adaptive = adaptive.clone();
            handles.push(s.spawn(move |_| {
                run_stage(
                    &stage_ctx, &op, idx, input, tx, batch_size, &shared, &meter, &config, adaptive,
                )
            }));
        }
        for h in handles {
            reports.push(h.join().expect("stage thread panicked"));
        }
    })
    .expect("crossbeam scope");

    // A fatal stage error wins over any partial output: the pipeline has
    // drained (all threads joined above), now surface the first error.
    if let Some(e) = shared.first_error.lock().take() {
        return Err(e);
    }

    // Merge per-stage failover decisions in plan order.
    for report in &mut reports {
        stats.degraded.append(&mut report.degraded);
    }
    if let Some(ctrl) = &adaptive {
        stats.adaptive = ctrl.take_reports();
    }
    if shared.deadline_exceeded.load(Ordering::SeqCst) {
        stats.deadline_exceeded = true;
        ctx.tracer.event(
            pz_obs::Layer::Executor,
            "deadline_exceeded",
            &[("at_secs", format!("{:.3}", ctx.clock.now_secs()))],
        );
    }

    let mut startup = Vec::with_capacity(plan.ops.len());
    for ((op, report), (meter, span)) in plan
        .ops
        .iter()
        .zip(&reports)
        .zip(meters.iter().zip(op_spans))
    {
        let m = meter.totals();
        // Worker pools overlap a stage's calls on the modelled timeline:
        // attributed time divides by the workers that could actually run
        // concurrently (mirrors the materializing `elapsed / workers`).
        // Cost, calls, and tokens never divide — billing is identical.
        let workers = report.effective_workers.max(1);
        let op_stats = OperatorStats {
            logical: op.logical_kind().to_string(),
            physical: op.describe(),
            model: op.model().map(|m| m.to_string()),
            input_records: report.input_records,
            output_records: report.output_records,
            llm_calls: m.llm_calls,
            input_tokens: m.input_tokens,
            output_tokens: m.output_tokens,
            cost_usd: m.cost_usd,
            time_secs: m.busy_secs / workers as f64,
        };
        if workers > 1 {
            // Serial runs skip the attribute so their traces stay
            // byte-identical to pre-parallelism output.
            span.set_attr("workers", workers.to_string());
        }
        span.set_attr("in", op_stats.input_records.to_string());
        span.set_attr("out", op_stats.output_records.to_string());
        span.set_attr("llm_calls", op_stats.llm_calls.to_string());
        span.set_attr("cost_usd", format!("{:.6}", op_stats.cost_usd));
        span.set_attr("time_secs", format!("{:.6}", op_stats.time_secs));
        if let Some(p) = &meter.prof {
            // Raw gauge sums; `pz_obs::profile` normalizes pooled stages
            // (whose waits sum over workers) back into the wall window.
            span.set_attr("prof_window_us", report.window_us.to_string());
            span.set_attr(
                "prof_queue_wait_us",
                p.queue_wait_us.load(Ordering::Relaxed).to_string(),
            );
            span.set_attr(
                "prof_backpressure_us",
                p.backpressure_us.load(Ordering::Relaxed).to_string(),
            );
            span.set_attr(
                "prof_provider_wait_us",
                p.provider_wait_us.load(Ordering::Relaxed).to_string(),
            );
            span.set_attr(
                "prof_retry_backoff_us",
                p.retry_backoff_us.load(Ordering::Relaxed).to_string(),
            );
            span.set_attr("prof_startup_secs", format!("{:.6}", report.startup_secs));
            if report.window_us > 0 {
                let util = (op_stats.time_secs * 1e6) / report.window_us as f64;
                span.set_attr("prof_utilization", format!("{:.4}", util.clamp(0.0, 1.0)));
            }
        }
        span.finish();
        startup.push(report.startup_secs);
        stats.operators.push(op_stats);
    }
    stats.parallelism = reports
        .iter()
        .map(|r| r.effective_workers.max(1))
        .max()
        .unwrap_or(1);
    stats.finalize_pipelined(&startup);

    let records = reports.pop().map(|r| r.collected).unwrap_or_default();
    stats.output_records = records.len();
    plan_span.set_attr("output_records", stats.output_records.to_string());
    plan_span.set_attr("llm_calls", stats.total_llm_calls.to_string());
    plan_span.set_attr("cost_usd", format!("{:.6}", stats.total_cost_usd));
    Ok((records, stats))
}

#[allow(clippy::too_many_arguments)]
fn run_stage(
    ctx: &PzContext,
    op: &PhysicalOp,
    idx: usize,
    input: Option<Receiver<Vec<DataRecord>>>,
    output: Option<Sender<Vec<DataRecord>>>,
    batch_size: usize,
    shared: &StageShared,
    meter: &StageMeter,
    config: &ExecutionConfig,
    adaptive: Option<Arc<AdaptiveController>>,
) -> StageReport {
    let mut report = StageReport::default();
    let mut emitter = Emitter {
        output,
        collected: Vec::new(),
        first_emit_busy: None,
    };
    let mut fo = StageFailover::new(op.clone(), idx, config, adaptive);
    let prof_t0 = meter.prof.as_ref().map(|p| p.now());

    match input {
        // Source stage: a leading Scan pulls its source chunk-at-a-time
        // (`DataSource::batches`), so at most one batch of leaf records is
        // resident here however large the corpus. Batch boundaries equal
        // the old materialize-then-`chunks(batch_size)` split, ids are
        // reserved identically up front, and a Scan never swaps models or
        // memoizes — output and ledger are byte-identical to the old
        // path. A failed emit means downstream cancelled — stop early.
        None if matches!(op, PhysicalOp::Scan { .. }) => {
            let pulled = (|| {
                let PhysicalOp::Scan { dataset } = op else {
                    unreachable!()
                };
                let src = ctx.registry.get(dataset)?;
                let n = src.cardinality_hint().unwrap_or(0) as u64;
                let base = ctx.next_ids(n.max(1));
                src.batches(base, batch_size)
            })();
            match pulled {
                Ok(batches) => {
                    for batch in batches {
                        if shared.aborted() || shared.past_deadline(ctx.clock.now_secs()) {
                            break;
                        }
                        match batch {
                            // The old path emitted nothing for an empty
                            // corpus (`chunks` of an empty vec); keep that.
                            Ok(b) if b.is_empty() => continue,
                            Ok(b) => {
                                report.output_records += b.len();
                                if !emitter.emit(meter, b) {
                                    break;
                                }
                            }
                            Err(e) => {
                                shared.fail(op, e);
                                break;
                            }
                        }
                    }
                }
                Err(e) => shared.fail(op, e),
            }
        }
        // Non-Scan sources (none today) keep the materialize-once path.
        None => match fo.execute(ctx, Vec::new(), &mut report.degraded, meter) {
            Ok(out) => {
                for chunk in out.chunks(batch_size) {
                    if shared.aborted() || shared.past_deadline(ctx.clock.now_secs()) {
                        break;
                    }
                    report.output_records += chunk.len();
                    if !emitter.emit(meter, chunk.to_vec()) {
                        break;
                    }
                }
            }
            Err(e) => shared.fail(op, e),
        },
        Some(rx) => match stage_kind(op) {
            StageKind::PerBatch => {
                let pool = effective_pool_size(ctx, op, idx, config);
                if pool > 1 {
                    emitter =
                        run_stage_pool(ctx, op, rx, emitter, shared, meter, fo, pool, &mut report);
                } else {
                    while let Some(batch) = recv_timed(&rx, meter) {
                        if shared.aborted() || shared.past_deadline(ctx.clock.now_secs()) {
                            break;
                        }
                        report.input_records += batch.len();
                        match fo.execute(ctx, batch, &mut report.degraded, meter) {
                            Ok(out) => {
                                if out.is_empty() {
                                    continue;
                                }
                                report.output_records += out.len();
                                if !emitter.emit(meter, out) {
                                    break;
                                }
                            }
                            Err(e) => {
                                shared.fail(op, e);
                                break;
                            }
                        }
                    }
                }
            }
            StageKind::Blocking => {
                let mut buf = Vec::new();
                while let Some(batch) = recv_timed(&rx, meter) {
                    if shared.aborted() {
                        break;
                    }
                    report.input_records += batch.len();
                    buf.extend(batch);
                }
                // A blocking op whose input was cut short by the deadline
                // still runs — partial input, partial output.
                if !shared.aborted() && !shared.past_deadline(ctx.clock.now_secs()) {
                    match fo.execute(ctx, buf, &mut report.degraded, meter) {
                        Ok(out) => {
                            for chunk in out.chunks(batch_size) {
                                report.output_records += chunk.len();
                                if !emitter.emit(meter, chunk.to_vec()) {
                                    break;
                                }
                            }
                        }
                        Err(e) => shared.fail(op, e),
                    }
                }
            }
            StageKind::Limit(n) => {
                let mut remaining = n;
                while remaining > 0 {
                    let Some(mut batch) = recv_timed(&rx, meter) else {
                        break;
                    };
                    if shared.aborted() {
                        break;
                    }
                    report.input_records += batch.len();
                    batch.truncate(remaining);
                    remaining -= batch.len();
                    report.output_records += batch.len();
                    if !emitter.emit(meter, batch) {
                        break;
                    }
                }
                // Falling out drops `rx`: upstream sends start failing and
                // the cancellation cascades to the source.
            }
            StageKind::Union => {
                let mut cancelled = false;
                while let Some(batch) = recv_timed(&rx, meter) {
                    if shared.aborted() || shared.past_deadline(ctx.clock.now_secs()) {
                        cancelled = true;
                        break;
                    }
                    report.input_records += batch.len();
                    report.output_records += batch.len();
                    if !emitter.emit(meter, batch) {
                        cancelled = true;
                        break;
                    }
                }
                if !cancelled && !shared.aborted() {
                    // UnionAll over empty input yields the other dataset.
                    match op.execute(ctx, Vec::new()) {
                        Ok(other) => {
                            for chunk in other.chunks(batch_size) {
                                report.output_records += chunk.len();
                                if !emitter.emit(meter, chunk.to_vec()) {
                                    break;
                                }
                            }
                        }
                        Err(e) => shared.fail(op, e),
                    }
                }
            }
        },
    }
    report.startup_secs = emitter.first_emit_busy.unwrap_or_else(|| meter.busy_secs());
    report.collected = emitter.collected;
    if let (Some(p), Some(t0)) = (meter.prof.as_ref(), prof_t0) {
        report.window_us = p.now().saturating_sub(t0);
    }
    report
}

/// Worker-pool size for a stage: the configured per-operator parallelism
/// clamped by the operator model's provider rate limit
/// (`ModelCard::max_concurrency`). Stages without a model get the raw
/// configured size (their pool is free — no provider to rate-limit).
fn effective_pool_size(
    ctx: &PzContext,
    op: &PhysicalOp,
    idx: usize,
    config: &ExecutionConfig,
) -> usize {
    let requested = config.parallelism.workers_for(idx);
    let rate_cap = op
        .model()
        .and_then(|m| ctx.catalog.get(m))
        .map(|card| card.concurrency_cap())
        .unwrap_or(usize::MAX);
    requested.min(rate_cap).max(1)
}

/// Run a per-batch stage through a pool of `pool_size` workers.
///
/// Determinism contract (see the module docs): the intake assigns each
/// batch a sequence number, the [`Turnstile`] serializes provider access
/// in that order, and the [`ReorderBuffer`] re-serializes emission — so
/// output order, the ledger, fault-window hits, and failover decisions
/// are byte-identical to the serial run. One shared [`StageFailover`]
/// means a breaker trip observed by any worker swaps the whole stage
/// exactly once; later batches from every worker stay on the substitute.
///
/// Returns the stage's [`Emitter`] so the caller can finish its report
/// (collected records, startup time) exactly as in the serial path.
#[allow(clippy::too_many_arguments)]
fn run_stage_pool(
    ctx: &PzContext,
    op: &PhysicalOp,
    rx: Receiver<Vec<DataRecord>>,
    emitter: Emitter,
    shared: &StageShared,
    meter: &StageMeter,
    fo: StageFailover,
    pool_size: usize,
    report: &mut StageReport,
) -> Emitter {
    let intake = std::sync::Mutex::new(Intake { rx, next_seq: 0 });
    let turnstile = Turnstile::new();
    let failover = Mutex::new((fo, Vec::new()));
    let gate = Mutex::new(EmitGate {
        emitter,
        buffer: ReorderBuffer::new(),
        output_records: 0,
    });
    let stop = AtomicBool::new(false);
    let input_records = AtomicUsize::new(0);

    crossbeam::thread::scope(|s| {
        for _ in 0..pool_size {
            let wctx = ctx.clone();
            let intake = &intake;
            let turnstile = &turnstile;
            let failover = &failover;
            let gate = &gate;
            let stop = &stop;
            let input_records = &input_records;
            s.spawn(move |_| {
                pool_worker(
                    &wctx,
                    op,
                    shared,
                    meter,
                    intake,
                    turnstile,
                    failover,
                    gate,
                    stop,
                    input_records,
                )
            });
        }
    })
    .expect("worker pool scope");

    let intake = intake.into_inner().expect("intake lock");
    report.input_records = input_records.load(Ordering::SeqCst);
    report.effective_workers = pool_size.min(intake.next_seq).max(1);
    let (_, degraded) = failover.into_inner();
    report.degraded = degraded;
    let gate = gate.into_inner();
    report.output_records = gate.output_records;
    gate.emitter
}

/// One pool worker: pull the next sequenced batch, execute it at its
/// turnstile turn, and hand the result to the reordering gate. Every
/// sequence number taken from the intake MUST advance the turnstile
/// exactly once — the `stop` paths below still advance, otherwise a
/// later-sequence worker would wait forever.
#[allow(clippy::too_many_arguments)]
fn pool_worker(
    ctx: &PzContext,
    op: &PhysicalOp,
    shared: &StageShared,
    meter: &StageMeter,
    intake: &std::sync::Mutex<Intake>,
    turnstile: &Turnstile,
    failover: &Mutex<(StageFailover, Vec<DegradedExecution>)>,
    gate: &Mutex<EmitGate>,
    stop: &AtomicBool,
    input_records: &AtomicUsize,
) {
    loop {
        let (seq, batch) = {
            let mut intake = intake.lock().expect("intake lock");
            if stop.load(Ordering::SeqCst) || shared.aborted() {
                return;
            }
            match recv_timed(&intake.rx, meter) {
                Some(batch) => {
                    let seq = intake.next_seq;
                    intake.next_seq += 1;
                    (seq, batch)
                }
                None => return,
            }
        };
        // Turnstile wait groups with provider-wait: the worker is queued
        // for its (serialized) turn at the provider.
        match meter.prof.as_ref() {
            None => turnstile.wait_for(seq),
            Some(p) => {
                let t0 = p.now();
                turnstile.wait_for(seq);
                p.provider_wait_us
                    .fetch_add(p.now().saturating_sub(t0), Ordering::Relaxed);
            }
        }
        let mut done = stop.load(Ordering::SeqCst);
        if !done && !shared.aborted() && !shared.past_deadline(ctx.clock.now_secs()) {
            input_records.fetch_add(batch.len(), Ordering::SeqCst);
            let result = {
                let mut guard = failover.lock();
                let (fo, degraded) = &mut *guard;
                fo.execute(ctx, batch, degraded, meter)
            };
            match result {
                Ok(out) => {
                    if !gate.lock().push(seq, out, meter) {
                        // Downstream disconnected: early termination.
                        stop.store(true, Ordering::SeqCst);
                        done = true;
                    }
                }
                Err(e) => {
                    shared.fail(op, e);
                    stop.store(true, Ordering::SeqCst);
                    done = true;
                }
            }
        } else {
            // Stopping: the batch is discarded, but its sequence number
            // must still flow through the reorder buffer and turnstile.
            gate.lock().push(seq, Vec::new(), meter);
            stop.store(true, Ordering::SeqCst);
            done = true;
        }
        turnstile.advance();
        if done {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_buffer_emits_in_sequence_regardless_of_insertion_order() {
        let rec = |n: u64| DataRecord::new(n);
        let mut buf = ReorderBuffer::new();
        buf.insert(2, vec![rec(2)]);
        assert!(buf.pop_ready().is_none(), "seq 0 not in yet");
        buf.insert(0, vec![rec(0)]);
        assert_eq!(buf.pop_ready().unwrap()[0].id, 0);
        assert!(buf.pop_ready().is_none(), "seq 1 still missing");
        buf.insert(1, vec![rec(1)]);
        assert_eq!(buf.pop_ready().unwrap()[0].id, 1);
        assert_eq!(buf.pop_ready().unwrap()[0].id, 2);
        assert!(buf.pop_ready().is_none());
    }

    #[test]
    fn turnstile_grants_turns_in_order_across_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let turnstile = Arc::new(Turnstile::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let spawned = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4usize)
            .rev() // spawn in reverse to make out-of-order arrival likely
            .map(|seq| {
                let t = turnstile.clone();
                let order = order.clone();
                let spawned = spawned.clone();
                std::thread::spawn(move || {
                    spawned.fetch_add(1, Ordering::SeqCst);
                    t.wait_for(seq);
                    order.lock().unwrap().push(seq);
                    t.advance();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }
}
