//! Streaming pipelined execution.
//!
//! Each physical operator runs as a *stage* on its own scoped thread,
//! linked to its neighbours by bounded channels
//! ([`crate::exec::channel`]): record batches flow downstream as soon as
//! they are produced, so LLM-bound stages overlap on the virtual clock
//! instead of serializing. Backpressure comes from channel capacity;
//! early termination (a satisfied `Limit`, a closed tail) propagates
//! upstream as a failed `send`, cancelling in-flight work at batch
//! granularity.
//!
//! ## Accounting under concurrency
//!
//! The materializing executor attributes per-operator cost by snapshotting
//! the shared ledger around each operator — invalid when stages run
//! concurrently. Here every stage gets its own [`StageMeter`]: a thin
//! `LlmClient` wrapper that serializes provider calls through one global
//! gate and attributes each call's ledger delta (requests, tokens,
//! dollars, modelled latency) to its stage. Cache hits never touch the
//! ledger and therefore bill nothing, exactly as in materializing mode;
//! retry backoff advances the clock *between* attempts (outside the gate)
//! and is attributed to no stage.
//!
//! Plan time is *modelled*, not measured: the virtual clock advances by
//! the full latency of every call regardless of mode, so overlap shows up
//! as `ExecutionStats::finalize_pipelined` — plan time is the bottleneck
//! stage plus upstream pipeline-fill delay, not the sum of stages.
//!
//! ## Spans
//!
//! The plan span is structural; per-operator spans are *leaf* spans
//! opened up-front in plan order (all siblings under the plan span), so
//! concurrent stage threads never push onto the tracer's shared scope
//! stack. LLM leaf spans made mid-stream therefore parent under the plan
//! span; per-operator totals live as attributes on the `op:` spans and
//! reconcile exactly with `ExecutionStats` and the ledger.

use crate::context::PzContext;
use crate::error::{PzError, PzResult};
use crate::exec::channel::{bounded, Receiver, Sender};
use crate::exec::failover;
use crate::exec::run::ExecutionConfig;
use crate::exec::stats::{DegradedExecution, ExecutionStats, OperatorStats};
use crate::ops::physical::{PhysicalOp, PhysicalPlan};
use crate::record::DataRecord;
use parking_lot::Mutex;
use pz_llm::{
    CompletionRequest, CompletionResponse, EmbeddingRequest, EmbeddingResponse, LlmClient,
    LlmError, ModelId, Usage, UsageLedger,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Per-stage accounting accumulated by [`StageMeter`].
#[derive(Clone, Copy, Debug, Default)]
struct MeterTotals {
    llm_calls: usize,
    input_tokens: usize,
    output_tokens: usize,
    cost_usd: f64,
    /// Modelled latency attributed to this stage (sum of its calls'
    /// ledger latency — excludes retry backoff, which no stage owns).
    busy_secs: f64,
}

/// `LlmClient` wrapper attributing ledger deltas to one stage.
///
/// All stages share one `gate`, so ledger snapshots taken around a call
/// see exactly that call's contribution even though stages run on
/// concurrent threads. Failed (transient) attempts bill nothing — the
/// simulator errors before recording — so retries stay cost-neutral, as
/// in materializing mode.
struct StageMeter {
    inner: Arc<dyn LlmClient>,
    gate: Arc<Mutex<()>>,
    ledger: UsageLedger,
    totals: Mutex<MeterTotals>,
}

impl StageMeter {
    fn new(inner: Arc<dyn LlmClient>, gate: Arc<Mutex<()>>, ledger: UsageLedger) -> Self {
        Self {
            inner,
            gate,
            ledger,
            totals: Mutex::new(MeterTotals::default()),
        }
    }

    fn snap(&self) -> (usize, Usage, f64, f64) {
        (
            self.ledger.total_requests(),
            self.ledger.total_usage(),
            self.ledger.total_cost_usd(),
            self.ledger.total_latency_secs(),
        )
    }

    fn metered<R>(&self, call: impl FnOnce(&dyn LlmClient) -> R) -> R {
        let _serialized = self.gate.lock();
        let before = self.snap();
        let out = call(self.inner.as_ref());
        let after = self.snap();
        let mut t = self.totals.lock();
        t.llm_calls += after.0 - before.0;
        t.input_tokens += after.1.input_tokens - before.1.input_tokens;
        t.output_tokens += after.1.output_tokens - before.1.output_tokens;
        t.cost_usd += after.2 - before.2;
        t.busy_secs += after.3 - before.3;
        out
    }

    fn totals(&self) -> MeterTotals {
        *self.totals.lock()
    }

    fn busy_secs(&self) -> f64 {
        self.totals.lock().busy_secs
    }
}

impl LlmClient for StageMeter {
    fn complete(&self, req: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
        self.metered(|c| c.complete(req))
    }

    fn embed(&self, req: &EmbeddingRequest) -> Result<EmbeddingResponse, LlmError> {
        self.metered(|c| c.embed(req))
    }
}

/// What one stage thread reports back after joining.
#[derive(Default)]
struct StageReport {
    input_records: usize,
    output_records: usize,
    /// Final-stage only: the plan's output records.
    collected: Vec<DataRecord>,
    /// Busy time accumulated before the first output batch was emitted —
    /// the stage's contribution to downstream pipeline-fill delay.
    startup_secs: f64,
    /// Failover decisions made by this stage, in order.
    degraded: Vec<DegradedExecution>,
}

/// Per-stage failover state: once a stage swaps models it *stays* on the
/// substitute for later batches (sticky), re-checking the breaker per
/// batch so trips from other stages are seen promptly. Unlike the
/// materializing executor, only the in-flight batch is re-run on a swap —
/// earlier batches already streamed downstream on the planned model.
struct StageFailover {
    active: PhysicalOp,
    planned_model: Option<ModelId>,
    planned_desc: String,
    op_index: usize,
    enabled: bool,
    rank: crate::exec::FailoverRank,
}

impl StageFailover {
    fn new(op: PhysicalOp, op_index: usize, config: &ExecutionConfig) -> Self {
        let enabled = config.failover && failover::swappable(&op);
        Self {
            planned_model: op.model().cloned(),
            planned_desc: op.describe(),
            active: op,
            op_index,
            enabled,
            rank: config.rank,
        }
    }

    /// Run one batch through the active operator, swapping models on
    /// provider faults / open breakers. Successful batches processed by a
    /// substitute accrue onto the latest degraded entry so
    /// `records_affected` sums to exactly the records the planned model
    /// did not handle.
    fn execute(
        &mut self,
        ctx: &PzContext,
        input: Vec<DataRecord>,
        degraded: &mut Vec<DegradedExecution>,
    ) -> PzResult<Vec<DataRecord>> {
        if !self.enabled {
            return self.active.execute(ctx, input);
        }
        let mut tried: Vec<ModelId> = self.active.model().cloned().into_iter().collect();
        let mut first_err: Option<PzError> = None;
        loop {
            let model = self
                .active
                .model()
                .cloned()
                .expect("swappable operator carries a model");
            let now = ctx.clock.now_secs();
            let (reason, err) = if ctx.health.is_open(&model, now) {
                ("breaker open", None)
            } else {
                match self.active.execute(ctx, input.clone()) {
                    Ok(out) => {
                        if self.active.model() != self.planned_model.as_ref() {
                            if let Some(entry) = degraded.last_mut() {
                                entry.records_affected += input.len();
                            }
                        }
                        return Ok(out);
                    }
                    Err(e) if is_provider_fault(&e) => ("provider fault", Some(e)),
                    Err(e) => return Err(e),
                }
            };
            if first_err.is_none() {
                first_err = err;
            }
            let next =
                failover::candidates(&ctx.catalog, &ctx.health, &self.active, self.rank, now)
                    .into_iter()
                    .find(|m| !tried.contains(m));
            let Some(to) = next else {
                return Err(first_err.unwrap_or_else(|| {
                    PzError::Execution(format!(
                        "circuit breaker open for {model} and no healthy substitute model"
                    ))
                }));
            };
            let entry = DegradedExecution {
                operator_index: self.op_index,
                operator: self.planned_desc.clone(),
                from_model: model.to_string(),
                to_model: to.to_string(),
                // Accrued per successfully processed batch, above.
                records_affected: 0,
                est_quality_delta: failover::quality_delta(&ctx.catalog, &model, &to),
                at_secs: ctx.clock.now_secs(),
                reason: reason.to_string(),
            };
            failover::emit_event(&ctx.tracer, &entry);
            degraded.push(entry);
            self.active =
                failover::with_model(&self.active, to.clone()).expect("swappable operator");
            tried.push(to);
        }
    }
}

fn is_provider_fault(e: &PzError) -> bool {
    matches!(e, PzError::Llm(inner) if inner.is_provider_fault())
}

/// How a stage consumes its input stream.
enum StageKind {
    /// Batch-at-a-time: `op.execute` per incoming batch.
    PerBatch,
    /// Must see the whole input before producing anything.
    Blocking,
    /// Stateful pass-through that cancels upstream once satisfied.
    Limit(usize),
    /// Pass-through, then flush the other dataset at end-of-stream.
    Union,
}

fn stage_kind(op: &PhysicalOp) -> StageKind {
    match op {
        PhysicalOp::Limit { n } => StageKind::Limit(*n),
        // Sort/Distinct/Aggregate need the full input; Retrieve builds a
        // temporary vector collection over it, so per-batch top-k would
        // be wrong. A mid-plan Scan ignores its input entirely — running
        // it once over the collected stream matches materializing mode.
        PhysicalOp::Sort { .. }
        | PhysicalOp::Distinct { .. }
        | PhysicalOp::Aggregate { .. }
        | PhysicalOp::Retrieve { .. }
        | PhysicalOp::Scan { .. } => StageKind::Blocking,
        PhysicalOp::UnionAll { .. } => StageKind::Union,
        _ => StageKind::PerBatch,
    }
}

/// Where a stage's output goes: the next stage's channel, or (for the
/// final stage) an in-memory collection.
struct Emitter {
    output: Option<Sender<Vec<DataRecord>>>,
    collected: Vec<DataRecord>,
    first_emit_busy: Option<f64>,
}

impl Emitter {
    /// Deliver a batch downstream. `false` means downstream disconnected
    /// (early termination) and the stage should stop producing.
    fn emit(&mut self, meter: &StageMeter, batch: Vec<DataRecord>) -> bool {
        if self.first_emit_busy.is_none() {
            self.first_emit_busy = Some(meter.busy_secs());
        }
        match &self.output {
            Some(tx) => tx.send(batch).is_ok(),
            None => {
                self.collected.extend(batch);
                true
            }
        }
    }
}

struct StageShared {
    abort: AtomicBool,
    first_error: Mutex<Option<PzError>>,
    /// Absolute deadline on the virtual clock, if any.
    deadline_at: Option<f64>,
    deadline_exceeded: AtomicBool,
}

impl StageShared {
    fn fail(&self, op: &PhysicalOp, e: PzError) {
        self.abort.store(true, Ordering::SeqCst);
        let mut slot = self.first_error.lock();
        if slot.is_none() {
            *slot = Some(PzError::Execution(format!(
                "operator {}: {e}",
                op.describe()
            )));
        }
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// Deadline check, flagging the run as partial when it fires. Stages
    /// stop *cleanly* (dropping their receiver cancels upstream), so the
    /// pipeline drains to partial results rather than an error.
    fn past_deadline(&self, now: f64) -> bool {
        match self.deadline_at {
            Some(d) if now >= d => {
                self.deadline_exceeded.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }
}

/// Execute `plan` as a stage-per-operator pipeline.
pub(crate) fn execute_streaming(
    ctx: &PzContext,
    plan: &PhysicalPlan,
    channel_capacity: usize,
    batch_size: usize,
    config: &ExecutionConfig,
) -> PzResult<(Vec<DataRecord>, ExecutionStats)> {
    let mut stats = ExecutionStats {
        plan: plan.describe(),
        ..Default::default()
    };
    if plan.ops.is_empty() {
        return Ok((Vec::new(), stats));
    }
    let channel_capacity = channel_capacity.max(1);
    let batch_size = batch_size.max(1);

    let plan_span = ctx.tracer.span(pz_obs::Layer::Executor, "execute_plan");
    plan_span.set_attr("plan", plan.describe());
    plan_span.set_attr("mode", "streaming");
    plan_span.set_attr("channel_capacity", channel_capacity.to_string());
    plan_span.set_attr("batch_size", batch_size.to_string());

    // Leaf spans do not push the tracer's scope stack, so opening them
    // up-front keeps parenting correct while stages run concurrently.
    let op_spans: Vec<pz_obs::SpanGuard> = plan
        .ops
        .iter()
        .map(|op| {
            ctx.tracer
                .leaf_span(pz_obs::Layer::Executor, &format!("op:{}", op.describe()))
        })
        .collect();

    let gate = Arc::new(Mutex::new(()));
    let shared = Arc::new(StageShared {
        abort: AtomicBool::new(false),
        first_error: Mutex::new(None),
        deadline_at: ctx.deadline_at_secs,
        deadline_exceeded: AtomicBool::new(false),
    });
    let meters: Vec<Arc<StageMeter>> = plan
        .ops
        .iter()
        .map(|_| {
            Arc::new(StageMeter::new(
                ctx.llm.clone(),
                gate.clone(),
                ctx.ledger.clone(),
            ))
        })
        .collect();

    let mut reports: Vec<StageReport> = Vec::with_capacity(plan.ops.len());
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(plan.ops.len());
        let mut upstream: Option<Receiver<Vec<DataRecord>>> = None;
        for (idx, op) in plan.ops.iter().enumerate() {
            let (tx, next_rx) = if idx + 1 < plan.ops.len() {
                let (tx, rx) = bounded(channel_capacity);
                (Some(tx), Some(rx))
            } else {
                (None, None)
            };
            let input = upstream.take();
            upstream = next_rx;

            let meter = meters[idx].clone();
            let mut stage_ctx = ctx.clone();
            stage_ctx.llm = meter.clone();
            let op = op.clone();
            let shared = shared.clone();
            let config = *config;
            handles.push(s.spawn(move |_| {
                run_stage(
                    &stage_ctx, &op, idx, input, tx, batch_size, &shared, &meter, &config,
                )
            }));
        }
        for h in handles {
            reports.push(h.join().expect("stage thread panicked"));
        }
    })
    .expect("crossbeam scope");

    // A fatal stage error wins over any partial output: the pipeline has
    // drained (all threads joined above), now surface the first error.
    if let Some(e) = shared.first_error.lock().take() {
        return Err(e);
    }

    // Merge per-stage failover decisions in plan order.
    for report in &mut reports {
        stats.degraded.append(&mut report.degraded);
    }
    if shared.deadline_exceeded.load(Ordering::SeqCst) {
        stats.deadline_exceeded = true;
        ctx.tracer.event(
            pz_obs::Layer::Executor,
            "deadline_exceeded",
            &[("at_secs", format!("{:.3}", ctx.clock.now_secs()))],
        );
    }

    let mut startup = Vec::with_capacity(plan.ops.len());
    for ((op, report), (meter, span)) in plan
        .ops
        .iter()
        .zip(&reports)
        .zip(meters.iter().zip(op_spans))
    {
        let m = meter.totals();
        let op_stats = OperatorStats {
            logical: op.logical_kind().to_string(),
            physical: op.describe(),
            model: op.model().map(|m| m.to_string()),
            input_records: report.input_records,
            output_records: report.output_records,
            llm_calls: m.llm_calls,
            input_tokens: m.input_tokens,
            output_tokens: m.output_tokens,
            cost_usd: m.cost_usd,
            time_secs: m.busy_secs,
        };
        span.set_attr("in", op_stats.input_records.to_string());
        span.set_attr("out", op_stats.output_records.to_string());
        span.set_attr("llm_calls", op_stats.llm_calls.to_string());
        span.set_attr("cost_usd", format!("{:.6}", op_stats.cost_usd));
        span.set_attr("time_secs", format!("{:.6}", op_stats.time_secs));
        span.finish();
        startup.push(report.startup_secs);
        stats.operators.push(op_stats);
    }
    stats.finalize_pipelined(&startup);

    let records = reports.pop().map(|r| r.collected).unwrap_or_default();
    stats.output_records = records.len();
    plan_span.set_attr("output_records", stats.output_records.to_string());
    plan_span.set_attr("llm_calls", stats.total_llm_calls.to_string());
    plan_span.set_attr("cost_usd", format!("{:.6}", stats.total_cost_usd));
    Ok((records, stats))
}

#[allow(clippy::too_many_arguments)]
fn run_stage(
    ctx: &PzContext,
    op: &PhysicalOp,
    idx: usize,
    input: Option<Receiver<Vec<DataRecord>>>,
    output: Option<Sender<Vec<DataRecord>>>,
    batch_size: usize,
    shared: &StageShared,
    meter: &StageMeter,
    config: &ExecutionConfig,
) -> StageReport {
    let mut report = StageReport::default();
    let mut emitter = Emitter {
        output,
        collected: Vec::new(),
        first_emit_busy: None,
    };
    let mut fo = StageFailover::new(op.clone(), idx, config);

    match input {
        // Source stage: materialize once, then stream out in batches. A
        // failed emit means downstream cancelled — stop scanning early.
        None => match fo.execute(ctx, Vec::new(), &mut report.degraded) {
            Ok(out) => {
                for chunk in out.chunks(batch_size) {
                    if shared.aborted() || shared.past_deadline(ctx.clock.now_secs()) {
                        break;
                    }
                    report.output_records += chunk.len();
                    if !emitter.emit(meter, chunk.to_vec()) {
                        break;
                    }
                }
            }
            Err(e) => shared.fail(op, e),
        },
        Some(rx) => match stage_kind(op) {
            StageKind::PerBatch => {
                while let Some(batch) = rx.recv() {
                    if shared.aborted() || shared.past_deadline(ctx.clock.now_secs()) {
                        break;
                    }
                    report.input_records += batch.len();
                    match fo.execute(ctx, batch, &mut report.degraded) {
                        Ok(out) => {
                            if out.is_empty() {
                                continue;
                            }
                            report.output_records += out.len();
                            if !emitter.emit(meter, out) {
                                break;
                            }
                        }
                        Err(e) => {
                            shared.fail(op, e);
                            break;
                        }
                    }
                }
            }
            StageKind::Blocking => {
                let mut buf = Vec::new();
                while let Some(batch) = rx.recv() {
                    if shared.aborted() {
                        break;
                    }
                    report.input_records += batch.len();
                    buf.extend(batch);
                }
                // A blocking op whose input was cut short by the deadline
                // still runs — partial input, partial output.
                if !shared.aborted() && !shared.past_deadline(ctx.clock.now_secs()) {
                    match fo.execute(ctx, buf, &mut report.degraded) {
                        Ok(out) => {
                            for chunk in out.chunks(batch_size) {
                                report.output_records += chunk.len();
                                if !emitter.emit(meter, chunk.to_vec()) {
                                    break;
                                }
                            }
                        }
                        Err(e) => shared.fail(op, e),
                    }
                }
            }
            StageKind::Limit(n) => {
                let mut remaining = n;
                while remaining > 0 {
                    let Some(mut batch) = rx.recv() else { break };
                    if shared.aborted() {
                        break;
                    }
                    report.input_records += batch.len();
                    batch.truncate(remaining);
                    remaining -= batch.len();
                    report.output_records += batch.len();
                    if !emitter.emit(meter, batch) {
                        break;
                    }
                }
                // Falling out drops `rx`: upstream sends start failing and
                // the cancellation cascades to the source.
            }
            StageKind::Union => {
                let mut cancelled = false;
                while let Some(batch) = rx.recv() {
                    if shared.aborted() || shared.past_deadline(ctx.clock.now_secs()) {
                        cancelled = true;
                        break;
                    }
                    report.input_records += batch.len();
                    report.output_records += batch.len();
                    if !emitter.emit(meter, batch) {
                        cancelled = true;
                        break;
                    }
                }
                if !cancelled && !shared.aborted() {
                    // UnionAll over empty input yields the other dataset.
                    match op.execute(ctx, Vec::new()) {
                        Ok(other) => {
                            for chunk in other.chunks(batch_size) {
                                report.output_records += chunk.len();
                                if !emitter.emit(meter, chunk.to_vec()) {
                                    break;
                                }
                            }
                        }
                        Err(e) => shared.fail(op, e),
                    }
                }
            }
        },
    }
    report.startup_secs = emitter.first_emit_busy.unwrap_or_else(|| meter.busy_secs());
    report.collected = emitter.collected;
    report
}
