//! Mid-plan model failover.
//!
//! The optimizer enumerates logically equivalent physical implementations
//! of every semantic operator — the same operator backed by different
//! models is exactly the redundancy graceful degradation needs. When a
//! model's fault domain goes unhealthy mid-run (its circuit breaker opens,
//! or a call fails with a provider fault after exhausting retries), the
//! executor swaps the afflicted operator for the same operator on the
//! next-best healthy model *under the active policy's primary dimension*,
//! records a [`crate::exec::stats::DegradedExecution`] entry, and keeps
//! going. If no healthy candidate remains, the first provider error
//! surfaces exactly as before this layer existed.
//!
//! Candidates are drawn from the catalog rather than a saved Pareto
//! frontier: for a single-operator swap the frontier's per-operator slice
//! *is* "same strategy, every other model, ranked by the policy's primary
//! dimension", which the catalog answers directly.

use crate::exec::stats::DegradedExecution;
use crate::ops::physical::PhysicalOp;
use crate::optimizer::policy::Policy;
use pz_llm::{Catalog, HealthTracker, ModelId, ModelKind};

/// The dimension failover ranks substitute models by — the active
/// [`Policy`]'s primary axis, collapsed to something `Copy` so it can ride
/// on [`crate::exec::ExecutionConfig`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FailoverRank {
    /// Highest quality first (MaxQuality and the quality-seeking
    /// constrained policies).
    #[default]
    Quality,
    /// Cheapest first (MinCost, MinCostAtQuality).
    Cost,
    /// Fastest first (MinTime).
    Time,
}

impl From<&Policy> for FailoverRank {
    fn from(policy: &Policy) -> Self {
        match policy {
            Policy::MaxQuality | Policy::MaxQualityAtCost(_) | Policy::MaxQualityAtTime(_) => {
                FailoverRank::Quality
            }
            Policy::MinCost | Policy::MinCostAtQuality(_) => FailoverRank::Cost,
            Policy::MinTime => FailoverRank::Time,
        }
    }
}

/// Whether failover can rewrite this operator: it must carry exactly one
/// swappable model. Ensemble filters are excluded — their resilience *is*
/// the ensemble (majority vote already tolerates a sick member), and
/// swapping one member would silently change voting semantics.
pub fn swappable(op: &PhysicalOp) -> bool {
    matches!(
        op,
        PhysicalOp::LlmFilter { .. }
            | PhysicalOp::EmbeddingFilter { .. }
            | PhysicalOp::LlmConvert { .. }
            | PhysicalOp::FieldwiseConvert { .. }
            | PhysicalOp::Retrieve { .. }
            | PhysicalOp::LlmJoin { .. }
            | PhysicalOp::LlmClassify { .. }
    )
}

/// Clone `op` with its model replaced. `None` for non-swappable operators.
pub fn with_model(op: &PhysicalOp, to: ModelId) -> Option<PhysicalOp> {
    let mut swapped = op.clone();
    let ok = match &mut swapped {
        PhysicalOp::LlmFilter { model, .. }
        | PhysicalOp::EmbeddingFilter { model, .. }
        | PhysicalOp::LlmConvert { model, .. }
        | PhysicalOp::FieldwiseConvert { model, .. }
        | PhysicalOp::Retrieve { model, .. }
        | PhysicalOp::LlmJoin { model, .. }
        | PhysicalOp::LlmClassify { model, .. } => {
            *model = to;
            true
        }
        _ => false,
    };
    ok.then_some(swapped)
}

/// Which model kind `op` needs from a substitute.
fn kind_needed(op: &PhysicalOp) -> ModelKind {
    match op {
        PhysicalOp::EmbeddingFilter { .. } | PhysicalOp::Retrieve { .. } => ModelKind::Embedding,
        _ => ModelKind::Chat,
    }
}

/// Healthy substitute models for `op`, best-first under `rank`. The
/// operator's current model is excluded, as is any model whose breaker is
/// open at `now_secs`.
pub fn candidates(
    catalog: &Catalog,
    health: &HealthTracker,
    op: &PhysicalOp,
    rank: FailoverRank,
    now_secs: f64,
) -> Vec<ModelId> {
    let Some(current) = op.model() else {
        return Vec::new();
    };
    if !swappable(op) {
        return Vec::new();
    }
    let mut cards: Vec<_> = catalog
        .of_kind(kind_needed(op))
        .filter(|card| &card.id != current && !health.is_open(&card.id, now_secs))
        .collect();
    // Representative request shape for cost/latency ranking; absolute
    // numbers don't matter, only the ordering.
    let key = |card: &pz_llm::ModelCard| match rank {
        FailoverRank::Quality => -card.quality,
        FailoverRank::Cost => card.cost_usd(1000, 100),
        FailoverRank::Time => card.latency_secs(1000, 100),
    };
    cards.sort_by(|a, b| {
        key(a)
            .total_cmp(&key(b))
            .then(b.quality.total_cmp(&a.quality))
            .then(a.id.cmp(&b.id))
    });
    cards.into_iter().map(|c| c.id.clone()).collect()
}

/// Emit the observability record of one failover decision: a structured
/// executor-layer event plus the `exec.failover` counter.
pub(crate) fn emit_event(tracer: &pz_obs::Tracer, entry: &DegradedExecution) {
    tracer.event(
        pz_obs::Layer::Executor,
        "failover",
        &[
            ("operator", entry.operator.clone()),
            ("from", entry.from_model.clone()),
            ("to", entry.to_model.clone()),
            ("reason", entry.reason.clone()),
            ("records", entry.records_affected.to_string()),
            ("at_secs", format!("{:.3}", entry.at_secs)),
        ],
    );
    tracer.incr("exec.failover", 1);
}

/// Estimated quality change of swapping `from` for `to` (negative =
/// degradation), straight from the model cards.
pub fn quality_delta(catalog: &Catalog, from: &ModelId, to: &ModelId) -> f64 {
    let q = |m: &ModelId| catalog.get(m).map_or(0.0, |c| c.quality);
    q(to) - q(from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pz_llm::protocol::Effort;

    fn filter_op(model: &str) -> PhysicalOp {
        PhysicalOp::LlmFilter {
            predicate: "about cancer".into(),
            model: model.into(),
            effort: Effort::Standard,
        }
    }

    #[test]
    fn rank_follows_policy_primary_dimension() {
        assert_eq!(
            FailoverRank::from(&Policy::MaxQuality),
            FailoverRank::Quality
        );
        assert_eq!(
            FailoverRank::from(&Policy::MaxQualityAtCost(1.0)),
            FailoverRank::Quality
        );
        assert_eq!(FailoverRank::from(&Policy::MinCost), FailoverRank::Cost);
        assert_eq!(
            FailoverRank::from(&Policy::MinCostAtQuality(0.8)),
            FailoverRank::Cost
        );
        assert_eq!(FailoverRank::from(&Policy::MinTime), FailoverRank::Time);
    }

    #[test]
    fn quality_rank_prefers_next_best_model() {
        let catalog = Catalog::builtin();
        let health = HealthTracker::default();
        let c = candidates(
            &catalog,
            &health,
            &filter_op("gpt-4o"),
            FailoverRank::Quality,
            0.0,
        );
        // gpt-4o (0.96) excluded; llama-3-70b (0.92) is next best.
        assert_eq!(c.first().map(|m| m.as_str()), Some("llama-3-70b"));
        assert!(!c.iter().any(|m| m.as_str() == "gpt-4o"));
        // Only chat models qualify for a chat op.
        assert!(!c.iter().any(|m| m.as_str() == "text-embedding-3-small"));
    }

    #[test]
    fn cost_rank_prefers_cheapest_model() {
        let catalog = Catalog::builtin();
        let health = HealthTracker::default();
        let c = candidates(
            &catalog,
            &health,
            &filter_op("gpt-4o"),
            FailoverRank::Cost,
            0.0,
        );
        // Every ranked candidate must resolve in the catalog (candidates
        // are drawn from it, never fabricated) — resolve without unwrap so
        // a ranking bug reads as an assertion, not a panic.
        let cost = |m: &pz_llm::ModelId| {
            catalog
                .get(m)
                .map(|card| card.cost_usd(1000, 100))
                .unwrap_or_else(|| panic!("candidate {m} missing from catalog"))
        };
        let first = cost(&c[0]);
        for m in &c[1..] {
            assert!(first <= cost(m));
        }
    }

    #[test]
    fn missing_model_degrades_instead_of_panicking() {
        // An operator whose planned model is absent from the catalog (a
        // retired alias, a typo in a hand-written plan) must still rank
        // substitutes: `candidates` draws from the catalog rather than
        // resolving the current model, so nothing can unwrap-panic the
        // worker thread.
        let catalog = Catalog::builtin();
        let health = HealthTracker::default();
        let op = filter_op("retired-model-v0");
        let c = candidates(&catalog, &health, &op, FailoverRank::Quality, 0.0);
        assert!(!c.is_empty(), "healthy substitutes must still be offered");
        assert_eq!(c.first().map(|m| m.as_str()), Some("gpt-4o"));
        // Ranking by cost and time exercises the card-derived sort keys.
        for rank in [FailoverRank::Cost, FailoverRank::Time] {
            assert!(!candidates(&catalog, &health, &op, rank, 0.0).is_empty());
        }
        // Quality delta against an unknown model stays finite (treated as
        // quality 0, i.e. the swap reads as an upgrade, never a panic).
        let d = quality_delta(&catalog, &"retired-model-v0".into(), &c[0]);
        assert!(d.is_finite());
        assert!(with_model(&op, c[0].clone()).is_some());
    }

    #[test]
    fn open_breakers_are_excluded() {
        let catalog = Catalog::builtin();
        let health = HealthTracker::default();
        let err = pz_llm::LlmError::Transient {
            attempt: 0,
            reason: "down".into(),
        };
        health.trip(&"llama-3-70b".into(), &err, 0.0);
        let c = candidates(
            &catalog,
            &health,
            &filter_op("gpt-4o"),
            FailoverRank::Quality,
            1.0,
        );
        assert!(!c.iter().any(|m| m.as_str() == "llama-3-70b"));
        assert_eq!(c.first().map(|m| m.as_str()), Some("gpt-4o-mini"));
    }

    #[test]
    fn swap_preserves_everything_but_the_model() {
        let op = filter_op("gpt-4o");
        let swapped = with_model(&op, "gpt-4o-mini".into()).unwrap();
        match swapped {
            PhysicalOp::LlmFilter {
                predicate, model, ..
            } => {
                assert_eq!(predicate, "about cancer");
                assert_eq!(model.as_str(), "gpt-4o-mini");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ensemble_and_conventional_ops_are_not_swappable() {
        let ensemble = PhysicalOp::EnsembleFilter {
            predicate: "x".into(),
            models: vec!["gpt-4o".into(), "gpt-4o-mini".into(), "llama-3-70b".into()],
            effort: Effort::Standard,
        };
        assert!(!swappable(&ensemble));
        assert!(with_model(&ensemble, "llama-3-8b".into()).is_none());
        let limit = PhysicalOp::Limit { n: 3 };
        assert!(!swappable(&limit));
        assert!(candidates(
            &Catalog::builtin(),
            &HealthTracker::default(),
            &limit,
            FailoverRank::Quality,
            0.0
        )
        .is_empty());
    }

    #[test]
    fn embedding_ops_only_get_embedding_models() {
        // The builtin catalog has a single embedding model, so a retrieve
        // op has no substitute — failover must fall through to the error.
        let catalog = Catalog::builtin();
        let health = HealthTracker::default();
        let op = PhysicalOp::Retrieve {
            query: "q".into(),
            k: 3,
            model: "text-embedding-3-small".into(),
        };
        assert!(candidates(&catalog, &health, &op, FailoverRank::Quality, 0.0).is_empty());
    }

    #[test]
    fn quality_delta_is_signed() {
        let catalog = Catalog::builtin();
        let down = quality_delta(&catalog, &"gpt-4o".into(), &"llama-3-70b".into());
        assert!(down < 0.0);
        let up = quality_delta(&catalog, &"llama-3-70b".into(), &"gpt-4o".into());
        assert!(up > 0.0);
    }
}
