//! Execution engine: materializing and streaming-pipelined executors over
//! physical plans, with per-operator statistics (Figure 5).

pub mod channel;
pub mod failover;
pub mod incremental;
pub mod run;
pub mod stats;
mod streaming;

pub use crate::optimizer::adaptive::{AdaptiveConfig, AdaptiveReport};
pub use failover::FailoverRank;
pub use incremental::ExecutionSnapshot;
pub use run::{available_cores, execute_plan, ExecMode, ExecutionConfig, ParallelismConfig};
pub use stats::{DegradedExecution, ExecutionStats, OperatorStats};
