//! Execution engine: materializing executors over physical plans, with
//! per-operator statistics (Figure 5).

pub mod run;
pub mod stats;

pub use run::{execute_plan, ExecutionConfig};
pub use stats::{ExecutionStats, OperatorStats};
