//! Retrieve — semantic top-k over the operator's own input.
//!
//! The intro's "vector databases" leg: embed every input record and the
//! natural-language query, index the records in the vector store, and keep
//! the `k` most similar. Used for RAG-style narrowing before expensive
//! LLM operators.

use crate::context::PzContext;
use crate::error::PzResult;
use crate::record::DataRecord;
use pz_llm::{EmbeddingRequest, ModelId};
use pz_vector::Metric;

/// Keep the `k` records most similar to `query`.
pub fn retrieve(
    ctx: &PzContext,
    input: Vec<DataRecord>,
    query: &str,
    k: usize,
    model: &ModelId,
) -> PzResult<Vec<DataRecord>> {
    if input.is_empty() || k == 0 {
        return Ok(Vec::new());
    }
    let mut texts: Vec<String> = Vec::with_capacity(input.len() + 1);
    texts.push(query.to_string());
    texts.extend(input.iter().map(|r| r.prompt_text()));
    let req = EmbeddingRequest {
        model: model.clone(),
        inputs: texts,
    };
    // Batched entry point: big corpora split into bounded provider
    // requests; at or below `DEFAULT_EMBED_BATCH` inputs it is one call.
    let resp = ctx.retry.embed_batched(
        ctx.llm.as_ref(),
        &req,
        &ctx.retry_ctx(),
        pz_llm::DEFAULT_EMBED_BATCH,
    )?;
    let dim = resp.vectors[0].len();

    // A transient per-op collection: retrieval is over the operator input,
    // not a persistent corpus. Unique name avoids cross-run clashes.
    let coll = format!("__retrieve_{}", ctx.next_id());
    ctx.vectors.ensure_collection(&coll, dim, Metric::Cosine);
    for (i, v) in resp.vectors[1..].iter().enumerate() {
        ctx.vectors.add(&coll, v, i.to_string())?;
    }
    let hits = ctx.vectors.search(&coll, &resp.vectors[0], k)?;
    ctx.vectors.drop_collection(&coll);

    let mut picked: Vec<usize> = hits
        .iter()
        .map(|h| h.payload.parse().unwrap_or(0))
        .collect();
    picked.sort_unstable();
    Ok(input
        .into_iter()
        .enumerate()
        .filter(|(i, _)| picked.binary_search(i).is_ok())
        .map(|(_, r)| r)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ctx: &PzContext, text: &str) -> DataRecord {
        DataRecord::new(ctx.next_id()).with_field("contents", text)
    }

    #[test]
    fn retrieves_most_similar() {
        let ctx = PzContext::simulated();
        let input = vec![
            rec(&ctx, "colorectal cancer genomic tumor mutation cohort"),
            rec(&ctx, "quasar galaxy telescope redshift survey"),
            rec(&ctx, "colorectal cancer screening tumor study"),
            rec(&ctx, "battery cathode lattice materials"),
        ];
        let out = retrieve(
            &ctx,
            input,
            "colorectal cancer tumor",
            2,
            &ctx.embed_model.clone(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        for r in &out {
            assert!(
                r.prompt_text().contains("colorectal"),
                "{}",
                r.prompt_text()
            );
        }
    }

    #[test]
    fn k_bounds() {
        let ctx = PzContext::simulated();
        let input = vec![rec(&ctx, "a b"), rec(&ctx, "c d")];
        assert_eq!(
            retrieve(&ctx, input.clone(), "q", 10, &ctx.embed_model.clone())
                .unwrap()
                .len(),
            2
        );
        assert!(retrieve(&ctx, input, "q", 0, &ctx.embed_model.clone())
            .unwrap()
            .is_empty());
        assert!(retrieve(&ctx, vec![], "q", 3, &ctx.embed_model.clone())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn preserves_input_order() {
        let ctx = PzContext::simulated();
        let input = vec![
            rec(&ctx, "zeta colorectal cancer tumor"),
            rec(&ctx, "alpha colorectal cancer tumor"),
        ];
        let ids: Vec<u64> = input.iter().map(|r| r.id).collect();
        let out = retrieve(
            &ctx,
            input,
            "colorectal cancer",
            2,
            &ctx.embed_model.clone(),
        )
        .unwrap();
        assert_eq!(out.iter().map(|r| r.id).collect::<Vec<_>>(), ids);
    }

    #[test]
    fn charges_embedding_cost() {
        let ctx = PzContext::simulated();
        let input = vec![rec(&ctx, "some text"), rec(&ctx, "more text")];
        retrieve(&ctx, input, "query", 1, &ctx.embed_model.clone()).unwrap();
        assert!(ctx.ledger.total_cost_usd() > 0.0);
        let by_model = ctx.ledger.by_model();
        assert_eq!(by_model[0].0.as_str(), "text-embedding-3-small");
    }

    #[test]
    fn transient_collection_cleaned_up() {
        let ctx = PzContext::simulated();
        let input = vec![rec(&ctx, "text")];
        retrieve(&ctx, input, "q", 1, &ctx.embed_model.clone()).unwrap();
        assert!(ctx.vectors.collection_names().is_empty());
    }
}
