//! Physical operators.
//!
//! Paper §2.1: "For each logical operator, multiple equivalent physical
//! implementations may be available. For instance, a filter operation might
//! be performed via different LLM models, each representing a distinct
//! physical method." A [`PhysicalOp`] fixes those choices: which model,
//! which strategy (LLM vs embedding vs UDF), which effort level. A
//! [`PhysicalPlan`] is one fully-specified implementation of a logical
//! plan; the optimizer enumerates and ranks them.

use crate::context::PzContext;
use crate::error::PzResult;
use crate::ops::logical::{AggExpr, Cardinality, LogicalOp};
use crate::record::DataRecord;
use crate::schema::Schema;
use pz_llm::protocol::Effort;
use pz_llm::ModelId;
use serde::{Deserialize, Serialize};

/// One fully-specified physical operator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PhysicalOp {
    /// Materialize a registered dataset.
    Scan {
        dataset: String,
    },
    /// Filter via an LLM judgement per record.
    LlmFilter {
        predicate: String,
        model: ModelId,
        effort: Effort,
    },
    /// Filter via embedding similarity between predicate and record text —
    /// much cheaper, lower quality.
    EmbeddingFilter {
        predicate: String,
        model: ModelId,
        threshold: f32,
    },
    /// Mixture-of-agents filter: several models vote per record; majority
    /// wins (ties drop the record). Better quality than any single member,
    /// at the summed cost.
    EnsembleFilter {
        predicate: String,
        models: Vec<ModelId>,
        effort: Effort,
    },
    /// Filter via a registered boolean UDF.
    UdfFilter {
        udf: String,
    },
    /// Schema conversion via one "bonded" LLM extraction per record (all
    /// missing fields in a single prompt).
    LlmConvert {
        target: Schema,
        cardinality: Cardinality,
        description: String,
        model: ModelId,
        effort: Effort,
    },
    /// Schema conversion via one LLM call *per missing field* per record
    /// (the "conventional" strategy): focused prompts raise per-field
    /// accuracy, but one-to-many outputs must be zipped positionally across
    /// calls, and the cost multiplies by the field count.
    FieldwiseConvert {
        target: Schema,
        cardinality: Cardinality,
        description: String,
        model: ModelId,
        effort: Effort,
    },
    /// Registered record transform.
    Map {
        udf: String,
    },
    Project {
        fields: Vec<String>,
    },
    Limit {
        n: usize,
    },
    Sort {
        field: String,
        descending: bool,
    },
    Distinct {
        fields: Vec<String>,
    },
    Aggregate {
        group_by: Vec<String>,
        aggs: Vec<AggExpr>,
    },
    /// Semantic top-k via the vector store.
    Retrieve {
        query: String,
        k: usize,
        model: ModelId,
    },
    /// Conventional equi-join against a registered dataset.
    HashJoin {
        dataset: String,
        left_field: String,
        right_field: String,
    },
    /// Semantic join: an LLM judges every (left, right) pair.
    LlmJoin {
        dataset: String,
        criterion: String,
        model: ModelId,
        effort: Effort,
    },
    /// Semantic categorization: one label per record, nothing dropped.
    LlmClassify {
        labels: Vec<String>,
        output_field: String,
        model: ModelId,
        effort: Effort,
    },
    /// UNION ALL with another registered dataset.
    UnionAll {
        dataset: String,
    },
}

impl PhysicalOp {
    /// Short implementation name (Figure 5's "operators chosen" column).
    pub fn describe(&self) -> String {
        match self {
            PhysicalOp::Scan { dataset } => format!("Scan[{dataset}]"),
            PhysicalOp::LlmFilter { model, effort, .. } => {
                format!("LLMFilter[{model}{}]", effort_suffix(*effort))
            }
            PhysicalOp::EmbeddingFilter {
                model, threshold, ..
            } => {
                format!("EmbedFilter[{model}, t={threshold}]")
            }
            PhysicalOp::EnsembleFilter { models, .. } => format!(
                "EnsembleFilter[{}]",
                models
                    .iter()
                    .map(|m| m.as_str())
                    .collect::<Vec<_>>()
                    .join("+")
            ),
            PhysicalOp::UdfFilter { udf } => format!("UDFFilter[{udf}]"),
            PhysicalOp::LlmConvert {
                target,
                model,
                effort,
                ..
            } => {
                format!(
                    "LLMConvert[{} via {model}{}]",
                    target.name,
                    effort_suffix(*effort)
                )
            }
            PhysicalOp::FieldwiseConvert {
                target,
                model,
                effort,
                ..
            } => {
                format!(
                    "FieldwiseConvert[{} via {model}{}]",
                    target.name,
                    effort_suffix(*effort)
                )
            }
            PhysicalOp::Map { udf } => format!("Map[{udf}]"),
            PhysicalOp::Project { fields } => format!("Project[{}]", fields.join(",")),
            PhysicalOp::Limit { n } => format!("Limit[{n}]"),
            PhysicalOp::Sort { field, descending } => {
                format!("Sort[{field}{}]", if *descending { " desc" } else { "" })
            }
            PhysicalOp::Distinct { fields } => format!("Distinct[{}]", fields.join(",")),
            PhysicalOp::Aggregate { group_by, .. } => {
                format!("Aggregate[by {}]", group_by.join(","))
            }
            PhysicalOp::Retrieve { k, model, .. } => format!("Retrieve[k={k} via {model}]"),
            PhysicalOp::HashJoin {
                dataset,
                left_field,
                right_field,
            } => {
                format!("HashJoin[{dataset} on {left_field}={right_field}]")
            }
            PhysicalOp::LlmJoin {
                dataset,
                model,
                effort,
                ..
            } => {
                format!("LLMJoin[{dataset} via {model}{}]", effort_suffix(*effort))
            }
            PhysicalOp::LlmClassify {
                output_field,
                model,
                effort,
                ..
            } => {
                format!(
                    "LLMClassify[->{output_field} via {model}{}]",
                    effort_suffix(*effort)
                )
            }
            PhysicalOp::UnionAll { dataset } => format!("UnionAll[{dataset}]"),
        }
    }

    /// The model this operator calls, if any.
    pub fn model(&self) -> Option<&ModelId> {
        match self {
            PhysicalOp::LlmFilter { model, .. }
            | PhysicalOp::EmbeddingFilter { model, .. }
            | PhysicalOp::LlmConvert { model, .. }
            | PhysicalOp::FieldwiseConvert { model, .. }
            | PhysicalOp::Retrieve { model, .. }
            | PhysicalOp::LlmJoin { model, .. }
            | PhysicalOp::LlmClassify { model, .. } => Some(model),
            PhysicalOp::EnsembleFilter { models, .. } => models.first(),
            _ => None,
        }
    }

    /// Logical operator kind implemented by this physical op.
    pub fn logical_kind(&self) -> &'static str {
        match self {
            PhysicalOp::Scan { .. } => "scan",
            PhysicalOp::LlmFilter { .. }
            | PhysicalOp::EmbeddingFilter { .. }
            | PhysicalOp::EnsembleFilter { .. }
            | PhysicalOp::UdfFilter { .. } => "filter",
            PhysicalOp::LlmConvert { .. } | PhysicalOp::FieldwiseConvert { .. } => "convert",
            PhysicalOp::Map { .. } => "map",
            PhysicalOp::Project { .. } => "project",
            PhysicalOp::Limit { .. } => "limit",
            PhysicalOp::Sort { .. } => "sort",
            PhysicalOp::Distinct { .. } => "distinct",
            PhysicalOp::Aggregate { .. } => "aggregate",
            PhysicalOp::Retrieve { .. } => "retrieve",
            PhysicalOp::HashJoin { .. } | PhysicalOp::LlmJoin { .. } => "join",
            PhysicalOp::LlmClassify { .. } => "classify",
            PhysicalOp::UnionAll { .. } => "union",
        }
    }

    /// Can the executor fan records of this op out to parallel workers?
    /// True exactly for the per-record LLM-bound operators.
    pub fn is_parallelizable(&self) -> bool {
        matches!(
            self,
            PhysicalOp::LlmFilter { .. }
                | PhysicalOp::EmbeddingFilter { .. }
                | PhysicalOp::EnsembleFilter { .. }
                | PhysicalOp::LlmConvert { .. }
                | PhysicalOp::FieldwiseConvert { .. }
                | PhysicalOp::LlmJoin { .. }
                | PhysicalOp::LlmClassify { .. }
        )
    }

    /// Execute this operator over materialized input.
    pub fn execute(&self, ctx: &PzContext, input: Vec<DataRecord>) -> PzResult<Vec<DataRecord>> {
        match self {
            PhysicalOp::Scan { dataset } => {
                let src = ctx.registry.get(dataset)?;
                let n = src.cardinality_hint().unwrap_or(0) as u64;
                let base = ctx.next_ids(n.max(1));
                src.records(base)
            }
            PhysicalOp::LlmFilter {
                predicate,
                model,
                effort,
            } => crate::ops::filter::llm_filter(ctx, input, predicate, model, *effort),
            PhysicalOp::EmbeddingFilter {
                predicate,
                model,
                threshold,
            } => crate::ops::filter::embedding_filter(ctx, input, predicate, model, *threshold),
            PhysicalOp::EnsembleFilter {
                predicate,
                models,
                effort,
            } => crate::ops::filter::ensemble_filter(ctx, input, predicate, models, *effort),
            PhysicalOp::UdfFilter { udf } => crate::ops::filter::udf_filter(ctx, input, udf),
            PhysicalOp::LlmConvert {
                target,
                cardinality,
                model,
                effort,
                ..
            } => crate::ops::convert::llm_convert(ctx, input, target, *cardinality, model, *effort),
            PhysicalOp::FieldwiseConvert {
                target,
                cardinality,
                model,
                effort,
                ..
            } => crate::ops::convert::llm_convert_fieldwise(
                ctx,
                input,
                target,
                *cardinality,
                model,
                *effort,
            ),
            PhysicalOp::Map { udf } => crate::ops::relational::map(ctx, input, udf),
            PhysicalOp::Project { fields } => Ok(crate::ops::relational::project(input, fields)),
            PhysicalOp::Limit { n } => Ok(crate::ops::relational::limit(input, *n)),
            PhysicalOp::Sort { field, descending } => {
                crate::ops::relational::sort_budgeted(ctx, input, field, *descending)
            }
            PhysicalOp::Distinct { fields } => Ok(crate::ops::relational::distinct(input, fields)),
            PhysicalOp::Aggregate { group_by, aggs } => {
                crate::ops::relational::aggregate(ctx, input, group_by, aggs)
            }
            PhysicalOp::Retrieve { query, k, model } => {
                crate::ops::retrieve::retrieve(ctx, input, query, *k, model)
            }
            PhysicalOp::HashJoin {
                dataset,
                left_field,
                right_field,
            } => crate::ops::join::hash_join(ctx, input, dataset, left_field, right_field),
            PhysicalOp::LlmJoin {
                dataset,
                criterion,
                model,
                effort,
            } => crate::ops::join::llm_join(ctx, input, dataset, criterion, model, *effort),
            PhysicalOp::LlmClassify {
                labels,
                output_field,
                model,
                effort,
            } => {
                crate::ops::classify::llm_classify(ctx, input, labels, output_field, model, *effort)
            }
            PhysicalOp::UnionAll { dataset } => {
                let src = ctx.registry.get(dataset)?;
                let n = src.cardinality_hint().unwrap_or(0) as u64;
                let base = ctx.next_ids(n.max(1));
                let mut out = input;
                out.extend(src.records(base)?);
                Ok(out)
            }
        }
    }
}

fn effort_suffix(effort: Effort) -> &'static str {
    match effort {
        Effort::Standard => "",
        Effort::High => ", high-effort",
    }
}

/// A fully-specified physical plan: one physical choice per logical op.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    pub ops: Vec<PhysicalOp>,
}

impl PhysicalPlan {
    pub fn describe(&self) -> String {
        self.ops
            .iter()
            .map(|o| o.describe())
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// The logical kinds, for checking a physical plan implements a given
    /// logical plan.
    pub fn logical_kinds(&self) -> Vec<&'static str> {
        self.ops.iter().map(|o| o.logical_kind()).collect()
    }

    /// Does this plan implement the given logical plan (same op kinds in
    /// the same order)?
    pub fn implements(&self, logical: &crate::ops::logical::LogicalPlan) -> bool {
        self.ops.len() == logical.ops.len()
            && self
                .ops
                .iter()
                .zip(&logical.ops)
                .all(|(p, l)| p.logical_kind() == l.kind())
    }
}

/// The trivially-correct physical rendering of non-semantic logical ops
/// (used by enumeration and tests).
pub fn default_physical(op: &LogicalOp) -> Option<PhysicalOp> {
    Some(match op {
        LogicalOp::Scan { dataset } => PhysicalOp::Scan {
            dataset: dataset.clone(),
        },
        LogicalOp::Map { udf } => PhysicalOp::Map { udf: udf.clone() },
        LogicalOp::Project { fields } => PhysicalOp::Project {
            fields: fields.clone(),
        },
        LogicalOp::Limit { n } => PhysicalOp::Limit { n: *n },
        LogicalOp::Sort { field, descending } => PhysicalOp::Sort {
            field: field.clone(),
            descending: *descending,
        },
        LogicalOp::Distinct { fields } => PhysicalOp::Distinct {
            fields: fields.clone(),
        },
        LogicalOp::Aggregate { group_by, aggs } => PhysicalOp::Aggregate {
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        LogicalOp::Union { dataset } => PhysicalOp::UnionAll {
            dataset: dataset.clone(),
        },
        LogicalOp::Join {
            dataset,
            condition: crate::ops::logical::JoinCondition::FieldEq { left, right },
        } => PhysicalOp::HashJoin {
            dataset: dataset.clone(),
            left_field: left.clone(),
            right_field: right.clone(),
        },
        LogicalOp::Filter { .. }
        | LogicalOp::Convert { .. }
        | LogicalOp::Retrieve { .. }
        | LogicalOp::Classify { .. }
        | LogicalOp::Join {
            condition: crate::ops::logical::JoinCondition::Semantic { .. },
            ..
        } => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldDef;
    use crate::ops::logical::FilterPredicate;

    fn clinical() -> Schema {
        Schema::new(
            "ClinicalData",
            "",
            vec![FieldDef::text("name", "dataset name")],
        )
        .unwrap()
    }

    #[test]
    fn describe_formats() {
        let op = PhysicalOp::LlmFilter {
            predicate: "p".into(),
            model: "gpt-4o".into(),
            effort: Effort::High,
        };
        assert_eq!(op.describe(), "LLMFilter[gpt-4o, high-effort]");
        assert_eq!(PhysicalOp::Limit { n: 3 }.describe(), "Limit[3]");
    }

    #[test]
    fn model_extraction() {
        let op = PhysicalOp::LlmConvert {
            target: clinical(),
            cardinality: Cardinality::OneToOne,
            description: String::new(),
            model: "gpt-4o-mini".into(),
            effort: Effort::Standard,
        };
        assert_eq!(op.model().unwrap().as_str(), "gpt-4o-mini");
        assert_eq!(PhysicalOp::Limit { n: 1 }.model(), None);
    }

    #[test]
    fn parallelizable_ops() {
        assert!(PhysicalOp::LlmFilter {
            predicate: "p".into(),
            model: "m".into(),
            effort: Effort::Standard
        }
        .is_parallelizable());
        assert!(!PhysicalOp::Sort {
            field: "f".into(),
            descending: false
        }
        .is_parallelizable());
        assert!(!PhysicalOp::Scan {
            dataset: "d".into()
        }
        .is_parallelizable());
    }

    #[test]
    fn implements_checks_kinds() {
        let logical = crate::ops::logical::LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "d".into(),
            },
            LogicalOp::Filter {
                predicate: FilterPredicate::NaturalLanguage("p".into()),
            },
        ])
        .unwrap();
        let good = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: "d".into(),
                },
                PhysicalOp::EmbeddingFilter {
                    predicate: "p".into(),
                    model: "text-embedding-3-small".into(),
                    threshold: 0.2,
                },
            ],
        };
        assert!(good.implements(&logical));
        let bad = PhysicalPlan {
            ops: vec![PhysicalOp::Scan {
                dataset: "d".into(),
            }],
        };
        assert!(!bad.implements(&logical));
    }

    #[test]
    fn default_physical_covers_conventional_ops() {
        assert!(default_physical(&LogicalOp::Limit { n: 2 }).is_some());
        assert!(default_physical(&LogicalOp::Scan {
            dataset: "d".into()
        })
        .is_some());
        assert!(default_physical(&LogicalOp::Filter {
            predicate: FilterPredicate::NaturalLanguage("p".into())
        })
        .is_none());
        assert!(default_physical(&LogicalOp::Convert {
            target: clinical(),
            cardinality: Cardinality::OneToOne,
            description: String::new()
        })
        .is_none());
    }
}
