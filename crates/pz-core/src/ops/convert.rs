//! Convert implementation — the paper's flagship operator.
//!
//! §2.1: "*Convert* transforms an object of schema A into an object of
//! schema B by computing the fields in B that do not explicitly exist in
//! A." Fields already present in the input are carried over directly; the
//! missing ones are extracted by the model. With
//! [`Cardinality::OneToMany`], a single input record may yield several
//! output records (the demo's one-paper → many-datasets case).

use crate::context::PzContext;
use crate::error::PzResult;
use crate::ops::logical::Cardinality;
use crate::record::{DataRecord, Value};
use crate::schema::Schema;
use pz_llm::protocol::{self, Effort, FieldSpec};
use pz_llm::tokenizer::truncate_to_tokens;
use pz_llm::{CompletionRequest, ModelId};

/// LLM-backed convert.
pub fn llm_convert(
    ctx: &PzContext,
    input: Vec<DataRecord>,
    target: &Schema,
    cardinality: Cardinality,
    model: &ModelId,
    effort: Effort,
) -> PzResult<Vec<DataRecord>> {
    // Which target fields must the model compute?
    let mut out = Vec::new();
    for rec in &input {
        let missing: Vec<FieldSpec> = target
            .fields
            .iter()
            .filter(|f| rec.get(&f.name).is_none_or(|v| v.is_null()))
            .map(|f| FieldSpec::new(f.name.clone(), f.description.clone()))
            .collect();

        let extractions: Vec<std::collections::BTreeMap<String, Option<String>>> = if missing
            .is_empty()
        {
            // Nothing to compute: pure carry-over.
            vec![Default::default()]
        } else {
            // Fit the record into the model's context window (head +
            // tail truncation keeps the data-availability sections that
            // live at the end of papers).
            let window = ctx
                .catalog
                .get(model)
                .map(|m| m.context_window)
                .unwrap_or(usize::MAX);
            let overhead: usize = missing
                .iter()
                .map(|f| f.name.len() / 3 + f.description.len() / 3)
                .sum();
            let budget = window.saturating_sub(overhead + 128);
            let text = truncate_to_tokens(&rec.prompt_text(), budget);
            let prompt = protocol::extract_prompt_with_effort(
                &missing,
                map_cardinality(cardinality),
                &text,
                effort,
            );
            let req = CompletionRequest::new(model.clone(), prompt).with_max_output_tokens(1024);
            let resp = ctx
                .retry
                .complete_with(ctx.llm.as_ref(), &req, &ctx.retry_ctx())?;
            let objs = protocol::parse_extraction_response(&resp.text);
            if objs.is_empty() && cardinality == Cardinality::OneToOne {
                vec![Default::default()]
            } else {
                objs
            }
        };

        for obj in extractions {
            let mut derived = rec.derive(ctx.next_id());
            for f in &target.fields {
                // Prefer carried-over input values; fill the rest from the
                // extraction, parsed to the declared type.
                if let Some(v) = rec.get(&f.name) {
                    if !v.is_null() {
                        derived.set(f.name.clone(), v.clone());
                        continue;
                    }
                }
                let value = match obj.get(&f.name) {
                    Some(Some(raw)) => Value::parse_as(raw, f.field_type),
                    _ => Value::Null,
                };
                derived.set(f.name.clone(), value);
            }
            out.push(derived);
        }
    }
    Ok(out)
}

/// Field-wise ("conventional") convert: one focused LLM call per missing
/// field per record. One-to-many outputs are zipped positionally across
/// the per-field result lists — the alignment fragility this strategy is
/// known for is real here, because each call independently decides how
/// many objects it saw.
pub fn llm_convert_fieldwise(
    ctx: &PzContext,
    input: Vec<DataRecord>,
    target: &Schema,
    cardinality: Cardinality,
    model: &ModelId,
    effort: Effort,
) -> PzResult<Vec<DataRecord>> {
    let mut out = Vec::new();
    for rec in &input {
        let missing: Vec<&crate::field::FieldDef> = target
            .fields
            .iter()
            .filter(|f| rec.get(&f.name).is_none_or(|v| v.is_null()))
            .collect();
        if missing.is_empty() {
            let mut derived = rec.derive(ctx.next_id());
            for f in &target.fields {
                derived.set(
                    f.name.clone(),
                    rec.get(&f.name).cloned().unwrap_or(Value::Null),
                );
            }
            out.push(derived);
            continue;
        }
        let window = ctx
            .catalog
            .get(model)
            .map(|m| m.context_window)
            .unwrap_or(usize::MAX);
        // One call per field; collect each field's extracted value list.
        let mut per_field: Vec<(String, Vec<Option<String>>)> = Vec::with_capacity(missing.len());
        for f in &missing {
            let spec = vec![FieldSpec::new(f.name.clone(), f.description.clone())];
            let budget = window.saturating_sub(f.name.len() / 3 + f.description.len() / 3 + 128);
            let text = truncate_to_tokens(&rec.prompt_text(), budget);
            let prompt = protocol::extract_prompt_with_effort(
                &spec,
                map_cardinality(cardinality),
                &text,
                effort,
            );
            let req = CompletionRequest::new(model.clone(), prompt).with_max_output_tokens(1024);
            let resp = ctx
                .retry
                .complete_with(ctx.llm.as_ref(), &req, &ctx.retry_ctx())?;
            let objs = protocol::parse_extraction_response(&resp.text);
            let values: Vec<Option<String>> = objs
                .into_iter()
                .map(|mut o| o.remove(&f.name).flatten())
                .collect();
            per_field.push((f.name.clone(), values));
        }
        // Zip positionally: the i-th value of every field belongs to the
        // i-th output object.
        let n_out = match cardinality {
            Cardinality::OneToOne => 1,
            Cardinality::OneToMany => per_field.iter().map(|(_, v)| v.len()).max().unwrap_or(0),
        };
        for i in 0..n_out {
            let mut derived = rec.derive(ctx.next_id());
            for f in &target.fields {
                if let Some(v) = rec.get(&f.name) {
                    if !v.is_null() {
                        derived.set(f.name.clone(), v.clone());
                        continue;
                    }
                }
                let raw = per_field
                    .iter()
                    .find(|(name, _)| name == &f.name)
                    .and_then(|(_, vals)| vals.get(i).cloned().flatten());
                let value = match raw {
                    Some(r) => Value::parse_as(&r, f.field_type),
                    None => Value::Null,
                };
                derived.set(f.name.clone(), value);
            }
            out.push(derived);
        }
        if n_out == 0 && cardinality == Cardinality::OneToOne {
            let mut derived = rec.derive(ctx.next_id());
            for f in &target.fields {
                derived.set(f.name.clone(), Value::Null);
            }
            out.push(derived);
        }
    }
    Ok(out)
}

fn map_cardinality(c: Cardinality) -> protocol::Cardinality {
    match c {
        Cardinality::OneToOne => protocol::Cardinality::OneToOne,
        Cardinality::OneToMany => protocol::Cardinality::OneToMany,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FieldDef, FieldType};

    fn clinical() -> Schema {
        Schema::new(
            "ClinicalData",
            "A schema for extracting clinical data datasets from papers.",
            vec![
                FieldDef::text("name", "The name of the clinical data dataset"),
                FieldDef::text(
                    "description",
                    "A short description of the content of the dataset",
                ),
                FieldDef::text("url", "The public URL where the dataset can be accessed"),
            ],
        )
        .unwrap()
    }

    const PAPER: &str = "Title: Colorectal study\n\
        Abstract: We analyze colorectal cancer tumors.\n\
        Dataset: TCGA-COADREAD\n\
        Description: Colorectal adenocarcinoma multi omics cohort\n\
        URL: https://portal.gdc.cancer.gov/projects/TCGA-COADREAD\n";

    fn paper_record(ctx: &PzContext) -> DataRecord {
        DataRecord::new(ctx.next_id())
            .with_field("filename", "p.pdf")
            .with_field("contents", PAPER)
    }

    #[test]
    fn convert_extracts_missing_fields() {
        let ctx = PzContext::simulated();
        let rec = paper_record(&ctx);
        let out = llm_convert(
            &ctx,
            vec![rec],
            &clinical(),
            Cardinality::OneToMany,
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("name").unwrap().as_text(), Some("TCGA-COADREAD"));
        assert_eq!(
            out[0].get("url").unwrap().as_text(),
            Some("https://portal.gdc.cancer.gov/projects/TCGA-COADREAD")
        );
    }

    #[test]
    fn convert_tracks_lineage() {
        let ctx = PzContext::simulated();
        let rec = paper_record(&ctx);
        let parent = rec.id;
        let out = llm_convert(
            &ctx,
            vec![rec],
            &clinical(),
            Cardinality::OneToMany,
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(out[0].lineage, vec![parent]);
    }

    #[test]
    fn one_to_many_yields_multiple_records() {
        let ctx = PzContext::simulated();
        let doc = "Dataset: Alpha\nURL: https://alpha.example.org/data\n\
                   Dataset: Beta\nURL: https://beta.example.org/data\n";
        let rec = DataRecord::new(ctx.next_id()).with_field("contents", doc);
        let schema = Schema::new(
            "D",
            "",
            vec![
                FieldDef::text("dataset_name", "The dataset name"),
                FieldDef::text("url", "The public URL"),
            ],
        )
        .unwrap();
        let out = llm_convert(
            &ctx,
            vec![rec],
            &schema,
            Cardinality::OneToMany,
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn one_to_one_always_yields_one() {
        let ctx = PzContext::simulated();
        let rec = DataRecord::new(ctx.next_id()).with_field("contents", "unstructured prose");
        let schema = Schema::new(
            "S",
            "",
            vec![FieldDef::text("missing_thing", "does not exist")],
        )
        .unwrap();
        let out = llm_convert(
            &ctx,
            vec![rec],
            &schema,
            Cardinality::OneToOne,
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].get("missing_thing").unwrap().is_null());
    }

    #[test]
    fn existing_fields_carry_over_without_llm() {
        let ctx = PzContext::simulated();
        let rec = DataRecord::new(ctx.next_id())
            .with_field("name", "KnownName")
            .with_field("url", "https://known.example.org");
        let schema = Schema::new(
            "S",
            "",
            vec![FieldDef::text("name", "name"), FieldDef::text("url", "url")],
        )
        .unwrap();
        let out = llm_convert(
            &ctx,
            vec![rec],
            &schema,
            Cardinality::OneToOne,
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(out[0].get("name").unwrap().as_text(), Some("KnownName"));
        // All fields present => no LLM call at all.
        assert_eq!(ctx.ledger.total_requests(), 0);
    }

    #[test]
    fn typed_fields_parse() {
        let ctx = PzContext::simulated();
        let rec = DataRecord::new(ctx.next_id())
            .with_field("contents", "Price: 125000\nAddress: 1 Main St\n");
        let schema = Schema::new(
            "L",
            "",
            vec![
                FieldDef::typed("price", FieldType::Int, "The listing price"),
                FieldDef::text("address", "The street address"),
            ],
        )
        .unwrap();
        let out = llm_convert(
            &ctx,
            vec![rec],
            &schema,
            Cardinality::OneToOne,
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(out[0].get("price").unwrap().as_int(), Some(125_000));
        assert_eq!(out[0].get("address").unwrap().as_text(), Some("1 Main St"));
    }

    #[test]
    fn fieldwise_convert_extracts_per_field() {
        let ctx = PzContext::simulated();
        let rec = paper_record(&ctx);
        let out = llm_convert_fieldwise(
            &ctx,
            vec![rec],
            &clinical(),
            Cardinality::OneToMany,
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("name").unwrap().as_text(), Some("TCGA-COADREAD"));
        // Three missing fields => three LLM calls for one record.
        assert_eq!(ctx.ledger.total_requests(), 3);
    }

    #[test]
    fn fieldwise_costs_more_than_bonded() {
        // On realistic (long) documents the per-field input repetition
        // dominates; tiny docs would hide it behind output-token pricing.
        let long_doc = format!("{}{}", "background prose filler. ".repeat(400), PAPER);
        let mk = |fieldwise: bool| {
            let ctx = PzContext::simulated();
            let rec = DataRecord::new(ctx.next_id())
                .with_field("filename", "p.pdf")
                .with_field("contents", long_doc.clone());
            if fieldwise {
                llm_convert_fieldwise(
                    &ctx,
                    vec![rec],
                    &clinical(),
                    Cardinality::OneToMany,
                    &"gpt-4o".into(),
                    Effort::Standard,
                )
                .unwrap();
            } else {
                llm_convert(
                    &ctx,
                    vec![rec],
                    &clinical(),
                    Cardinality::OneToMany,
                    &"gpt-4o".into(),
                    Effort::Standard,
                )
                .unwrap();
            }
            ctx.ledger.total_cost_usd()
        };
        assert!(mk(true) > mk(false) * 2.0, "fieldwise must pay per field");
    }

    #[test]
    fn fieldwise_one_to_one_always_one_output() {
        let ctx = PzContext::simulated();
        let rec = DataRecord::new(ctx.next_id()).with_field("contents", "plain prose");
        let schema = Schema::new("S", "", vec![FieldDef::text("ghost_field", "nothing")]).unwrap();
        let out = llm_convert_fieldwise(
            &ctx,
            vec![rec],
            &schema,
            Cardinality::OneToOne,
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].get("ghost_field").unwrap().is_null());
    }

    #[test]
    fn weak_model_extracts_worse() {
        // Aggregate over many records: the weak model must produce more
        // null/corrupted fields than the champion.
        let ctx = PzContext::simulated();
        let schema = clinical();
        let mut strong_good = 0usize;
        let mut weak_good = 0usize;
        let n = 60;
        for i in 0..n {
            let doc = format!(
                "Dataset: DS-{i}\nDescription: cohort number {i}\nURL: https://data.example.org/{i}\n"
            );
            let mk = |m: &str| {
                let rec = DataRecord::new(ctx.next_id()).with_field("contents", doc.clone());
                let out = llm_convert(
                    &ctx,
                    vec![rec],
                    &schema,
                    Cardinality::OneToMany,
                    &m.into(),
                    Effort::Standard,
                )
                .unwrap();
                out.first().is_some_and(|r| {
                    r.get("name").unwrap().as_text() == Some(&format!("DS-{i}"))
                        && r.get("url").unwrap().as_text()
                            == Some(&format!("https://data.example.org/{i}"))
                })
            };
            if mk("gpt-4o") {
                strong_good += 1;
            }
            if mk("llama-3-8b") {
                weak_good += 1;
            }
        }
        assert!(
            strong_good > weak_good,
            "strong {strong_good} vs weak {weak_good}"
        );
    }
}
