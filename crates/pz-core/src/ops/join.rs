//! Join implementations.
//!
//! The pipeline stream joins against a second *registered dataset* (the
//! build side), keeping plans linear the way the paper describes them
//! while adding the relational completeness a production system needs.
//! Two strategies:
//!
//! * [`hash_join`] — conventional equi-join on field equality (free);
//! * [`llm_join`] — semantic join: an LLM judges every (left, right) pair
//!   against a natural-language criterion. O(|L|·|R|) model calls — by far
//!   the most expensive operator, which is exactly why narrowing operators
//!   (filters, retrieve) in front of it matter.
//!
//! Output records merge both sides; right-side fields that collide with a
//! left field are prefixed with the build dataset's name.

use crate::context::PzContext;
use crate::error::PzResult;
use crate::record::DataRecord;
use pz_llm::protocol::{self, Effort};
use pz_llm::tokenizer::truncate_to_tokens;
use pz_llm::{count_tokens, CompletionRequest, ModelId};
use std::collections::BTreeMap;

/// Merge a matching pair into one output record.
fn merge(ctx: &PzContext, left: &DataRecord, right: &DataRecord, right_name: &str) -> DataRecord {
    let prefix = crate::ops::logical::join_field_prefix(right_name);
    let mut out = left.derive(ctx.next_id());
    out.fields = left.fields.clone();
    for (k, v) in &right.fields {
        let key = if out.fields.contains_key(k) {
            format!("{prefix}_{k}")
        } else {
            k.clone()
        };
        out.fields.insert(key, v.clone());
    }
    out.lineage.push(right.id);
    out
}

/// Materialize the build side of a join.
fn build_side(ctx: &PzContext, dataset: &str) -> PzResult<Vec<DataRecord>> {
    let src = ctx.registry.get(dataset)?;
    let n = src.cardinality_hint().unwrap_or(0) as u64;
    let base = ctx.next_ids(n.max(1));
    src.records(base)
}

/// Conventional equi-join: `left.left_field == right.right_field`
/// (string-rendered comparison on non-null values).
///
/// Under a spill budget (`PzContext::spill_budget_records`) with a build
/// side larger than the budget, the right side is pulled in budget-sized
/// batches (`DataSource::batches`) and only the matching records are
/// kept, so the full build side is never resident. Match lists are
/// collected per left record and merged left-major afterwards, which
/// reproduces the in-memory path's output order and id assignment exactly.
pub fn hash_join(
    ctx: &PzContext,
    input: Vec<DataRecord>,
    dataset: &str,
    left_field: &str,
    right_field: &str,
) -> PzResult<Vec<DataRecord>> {
    let src = ctx.registry.get(dataset)?;
    let n = src.cardinality_hint().unwrap_or(0);
    let budget = ctx.spill_budget_records.unwrap_or(usize::MAX).max(1);
    if n > budget {
        let base = ctx.next_ids(n.max(1) as u64);
        let mut matched: Vec<Vec<DataRecord>> = vec![Vec::new(); input.len()];
        for batch in src.batches(base, budget)? {
            let batch = batch?;
            let mut table: BTreeMap<String, Vec<&DataRecord>> = BTreeMap::new();
            for r in &batch {
                if let Some(v) = r.get(right_field) {
                    if !v.is_null() {
                        table.entry(v.as_display()).or_default().push(r);
                    }
                }
            }
            for (l, bucket) in input.iter().zip(matched.iter_mut()) {
                if let Some(v) = l.get(left_field) {
                    if v.is_null() {
                        continue;
                    }
                    if let Some(matches) = table.get(&v.as_display()) {
                        bucket.extend(matches.iter().map(|r| (*r).clone()));
                    }
                }
            }
        }
        let mut out = Vec::new();
        for (l, bucket) in input.iter().zip(&matched) {
            for r in bucket {
                out.push(merge(ctx, l, r, dataset));
            }
        }
        return Ok(out);
    }
    let right = build_side(ctx, dataset)?;
    let mut table: BTreeMap<String, Vec<&DataRecord>> = BTreeMap::new();
    for r in &right {
        if let Some(v) = r.get(right_field) {
            if !v.is_null() {
                table.entry(v.as_display()).or_default().push(r);
            }
        }
    }
    let mut out = Vec::new();
    for l in &input {
        if let Some(v) = l.get(left_field) {
            if v.is_null() {
                continue;
            }
            if let Some(matches) = table.get(&v.as_display()) {
                for r in matches {
                    out.push(merge(ctx, l, r, dataset));
                }
            }
        }
    }
    Ok(out)
}

/// Semantic join: keep every (left, right) pair the model judges as
/// matching the criterion.
pub fn llm_join(
    ctx: &PzContext,
    input: Vec<DataRecord>,
    dataset: &str,
    criterion: &str,
    model: &ModelId,
    effort: Effort,
) -> PzResult<Vec<DataRecord>> {
    let right = build_side(ctx, dataset)?;
    let window = ctx
        .catalog
        .get(model)
        .map(|m| m.context_window)
        .unwrap_or(usize::MAX);
    // Both sides must fit together, with headroom for the criterion.
    let budget = window.saturating_sub(count_tokens(criterion) + 96) / 2;
    let mut out = Vec::new();
    for l in &input {
        let left_text = truncate_to_tokens(&l.prompt_text(), budget);
        for r in &right {
            let right_text = truncate_to_tokens(&r.prompt_text(), budget);
            let prompt = protocol::match_prompt(criterion, &left_text, &right_text, effort);
            let req = CompletionRequest::new(model.clone(), prompt).with_max_output_tokens(4);
            let resp = ctx
                .retry
                .complete_with(ctx.llm.as_ref(), &req, &ctx.retry_ctx())?;
            if protocol::parse_bool_response(&resp.text) == Some(true) {
                out.push(merge(ctx, l, r, dataset));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasource::MemorySource;
    use crate::record::Value;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn ctx_with_catalog() -> PzContext {
        let ctx = PzContext::simulated();
        // A small reference catalog of datasets, one per record.
        let items = vec![
            (
                "cat-0.txt".to_string(),
                "repository: GDC portal\ncatalog_entry: TCGA COADREAD colorectal adenocarcinoma multi omics cohort\n"
                    .to_string(),
            ),
            (
                "cat-1.txt".to_string(),
                "repository: GEO\ncatalog_entry: GSE39582 colon cancer gene expression profiles\n"
                    .to_string(),
            ),
            (
                "cat-2.txt".to_string(),
                "repository: SDSS\ncatalog_entry: quasar redshift sky survey imaging\n".to_string(),
            ),
        ];
        ctx.registry.register(Arc::new(MemorySource::new(
            "catalog",
            Schema::text_file(),
            items,
        )));
        ctx
    }

    fn left_record(ctx: &PzContext, name: &str, desc: &str) -> DataRecord {
        DataRecord::new(ctx.next_id())
            .with_field("name", name)
            .with_field("description", desc)
    }

    #[test]
    fn hash_join_on_equal_fields() {
        let ctx = PzContext::simulated();
        let items = vec![
            ("a.txt".to_string(), "x".to_string()),
            ("b.txt".to_string(), "y".to_string()),
        ];
        ctx.registry.register(Arc::new(MemorySource::new(
            "right",
            Schema::text_file(),
            items,
        )));
        let left = vec![
            DataRecord::new(ctx.next_id())
                .with_field("file", "a.txt")
                .with_field("tag", 1i64),
            DataRecord::new(ctx.next_id()).with_field("file", "missing.txt"),
        ];
        let out = hash_join(&ctx, left, "right", "file", "filename").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("tag").unwrap().as_int(), Some(1));
        assert_eq!(out[0].get("contents").unwrap().as_text(), Some("x"));
        // Two parents in the lineage: the left record and the build record.
        assert_eq!(out[0].lineage.len(), 2);
    }

    #[test]
    fn hash_join_field_collisions_prefixed() {
        let ctx = PzContext::simulated();
        let items = vec![("a.txt".to_string(), "right contents".to_string())];
        ctx.registry
            .register(Arc::new(MemorySource::new("r", Schema::text_file(), items)));
        let left = vec![DataRecord::new(ctx.next_id())
            .with_field("filename", "a.txt")
            .with_field("contents", "left contents")];
        let out = hash_join(&ctx, left, "r", "filename", "filename").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].get("contents").unwrap().as_text(),
            Some("left contents")
        );
        assert_eq!(
            out[0].get("r_contents").unwrap().as_text(),
            Some("right contents")
        );
        assert_eq!(out[0].get("r_filename").unwrap().as_text(), Some("a.txt"));
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let ctx = PzContext::simulated();
        ctx.registry.register(Arc::new(MemorySource::new(
            "r",
            Schema::text_file(),
            vec![("a.txt".to_string(), "x".to_string())],
        )));
        let left = vec![DataRecord::new(ctx.next_id()).with_field("file", Value::Null)];
        let out = hash_join(&ctx, left, "r", "file", "filename").unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn llm_join_matches_same_dataset_mentions() {
        let ctx = ctx_with_catalog();
        let left = vec![
            left_record(
                &ctx,
                "TCGA-COADREAD",
                "Colorectal adenocarcinoma multi omics cohort",
            ),
            left_record(
                &ctx,
                "GSE39582",
                "Gene expression profiles of colon cancer tumors",
            ),
        ];
        let out = llm_join(
            &ctx,
            left,
            "catalog",
            "the records refer to the same dataset",
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        // Each extraction matches its catalog entry (and not the quasar one).
        assert_eq!(
            out.len(),
            2,
            "{:?}",
            out.iter().map(|r| r.to_json()).collect::<Vec<_>>()
        );
        for rec in &out {
            let entry = rec.get("contents").unwrap().as_display();
            let name = rec.get("name").unwrap().as_display();
            assert!(
                !entry.contains("quasar"),
                "{name} must not match the astronomy catalog entry"
            );
        }
        // 2 left × 3 right = 6 model calls.
        assert_eq!(ctx.ledger.total_requests(), 6);
    }

    #[test]
    fn llm_join_unknown_dataset_errors() {
        let ctx = PzContext::simulated();
        assert!(llm_join(
            &ctx,
            vec![],
            "ghost",
            "same thing",
            &"gpt-4o".into(),
            Effort::Standard
        )
        .is_err());
    }

    #[test]
    fn llm_join_empty_left_is_free() {
        let ctx = ctx_with_catalog();
        let out = llm_join(
            &ctx,
            vec![],
            "catalog",
            "same dataset",
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(ctx.ledger.total_requests(), 0);
    }

    /// A wide build side with duplicate keys, joined with and without a
    /// spill budget. Fresh contexts start from identical id counters, so
    /// the batched path must reproduce the in-memory output bytewise —
    /// merge order, assigned ids, lineage, everything.
    #[test]
    fn hash_join_batched_build_side_is_bytewise_identical() {
        let make_ctx = |budget: Option<usize>| {
            let mut ctx = PzContext::simulated();
            ctx.spill_budget_records = budget;
            let items: Vec<(String, String)> = (0..20)
                .map(|i| (format!("f{}.txt", i % 6), format!("body-{i}")))
                .collect();
            ctx.registry.register(Arc::new(MemorySource::new(
                "wide",
                Schema::text_file(),
                items,
            )));
            ctx
        };
        let left = |ctx: &PzContext| {
            vec![
                DataRecord::new(ctx.next_id()).with_field("file", "f1.txt"),
                DataRecord::new(ctx.next_id()).with_field("file", "f4.txt"),
                DataRecord::new(ctx.next_id()).with_field("file", "f1.txt"),
                DataRecord::new(ctx.next_id()).with_field("file", "nope.txt"),
            ]
        };
        let ctx_mem = make_ctx(None);
        let expected = hash_join(&ctx_mem, left(&ctx_mem), "wide", "file", "filename").unwrap();
        for budget in [1, 3, 7] {
            let ctx = make_ctx(Some(budget));
            let got = hash_join(&ctx, left(&ctx), "wide", "file", "filename").unwrap();
            assert_eq!(expected, got, "batched join diverged at budget {budget}");
        }
        // 20 right-side rows, keys mod 6: f1 and f4 appear 4 and 3 times.
        assert_eq!(expected.len(), 4 + 3 + 4);
    }
}
