//! Filter implementations.
//!
//! Three physical strategies for the logical `Filter`:
//! * [`llm_filter`] — one boolean LLM judgement per record (the quality
//!   reference, cost proportional to record size and model price);
//! * [`embedding_filter`] — cosine similarity between the predicate's
//!   embedding and the record's embedding against a threshold (orders of
//!   magnitude cheaper, noticeably lower quality);
//! * [`udf_filter`] — a registered Rust predicate (free, exact — for
//!   conventional conditions).

use crate::context::PzContext;
use crate::error::{PzError, PzResult};
use crate::record::DataRecord;
use pz_llm::protocol::{self, Effort};
use pz_llm::tokenizer::truncate_to_tokens;
use pz_llm::{count_tokens, CompletionRequest, EmbeddingRequest, ModelId};

/// LLM-judged filter: keeps records for which the model answers TRUE.
pub fn llm_filter(
    ctx: &PzContext,
    input: Vec<DataRecord>,
    predicate: &str,
    model: &ModelId,
    effort: Effort,
) -> PzResult<Vec<DataRecord>> {
    // Fit each record into the model's context window (head + tail
    // truncation), leaving room for the predicate and protocol overhead.
    let window = ctx
        .catalog
        .get(model)
        .map(|m| m.context_window)
        .unwrap_or(usize::MAX);
    let budget = window.saturating_sub(count_tokens(predicate) + 64);
    let mut out = Vec::with_capacity(input.len());
    for rec in input {
        let text = truncate_to_tokens(&rec.prompt_text(), budget);
        let prompt = protocol::filter_prompt_with_effort(predicate, &text, effort);
        let req = CompletionRequest::new(model.clone(), prompt).with_max_output_tokens(4);
        let resp = ctx
            .retry
            .complete_with(ctx.llm.as_ref(), &req, &ctx.retry_ctx())?;
        match protocol::parse_bool_response(&resp.text) {
            Some(true) => out.push(rec),
            Some(false) => {}
            None => {
                // Unparseable verdicts drop the record but do not abort
                // the pipeline: treat as "did not satisfy the predicate".
            }
        }
    }
    Ok(out)
}

/// Embedding-similarity filter.
pub fn embedding_filter(
    ctx: &PzContext,
    input: Vec<DataRecord>,
    predicate: &str,
    model: &ModelId,
    threshold: f32,
) -> PzResult<Vec<DataRecord>> {
    if input.is_empty() {
        return Ok(input);
    }
    let mut texts: Vec<String> = Vec::with_capacity(input.len() + 1);
    texts.push(predicate.to_string());
    texts.extend(input.iter().map(|r| r.prompt_text()));
    let req = EmbeddingRequest {
        model: model.clone(),
        inputs: texts,
    };
    // Batched entry point: bounded provider requests on big inputs, one
    // call (identical to before) at or below `DEFAULT_EMBED_BATCH`.
    let resp = ctx.retry.embed_batched(
        ctx.llm.as_ref(),
        &req,
        &ctx.retry_ctx(),
        pz_llm::DEFAULT_EMBED_BATCH,
    )?;
    let (query, records) = resp
        .vectors
        .split_first()
        .ok_or_else(|| PzError::Execution("embedding response was empty".into()))?;
    Ok(input
        .into_iter()
        .zip(records)
        .filter(|(_, v)| pz_llm::embedding::cosine(query, v) >= threshold)
        .map(|(r, _)| r)
        .collect())
}

/// Mixture-of-agents filter: every model votes on every record; strict
/// majority keeps it (a tie drops the record). Votes are independent — the
/// simulator keys its error injection by model — so the ensemble beats its
/// members the way real majority voting does.
pub fn ensemble_filter(
    ctx: &PzContext,
    input: Vec<DataRecord>,
    predicate: &str,
    models: &[ModelId],
    effort: Effort,
) -> PzResult<Vec<DataRecord>> {
    if models.is_empty() {
        return Err(PzError::Plan(
            "ensemble filter needs at least one model".into(),
        ));
    }
    let mut out = Vec::with_capacity(input.len());
    for rec in input {
        let mut yes = 0usize;
        for model in models {
            let window = ctx
                .catalog
                .get(model)
                .map(|m| m.context_window)
                .unwrap_or(usize::MAX);
            let budget = window.saturating_sub(count_tokens(predicate) + 64);
            let text = truncate_to_tokens(&rec.prompt_text(), budget);
            let prompt = protocol::filter_prompt_with_effort(predicate, &text, effort);
            let req = CompletionRequest::new(model.clone(), prompt).with_max_output_tokens(4);
            let resp = ctx
                .retry
                .complete_with(ctx.llm.as_ref(), &req, &ctx.retry_ctx())?;
            if protocol::parse_bool_response(&resp.text) == Some(true) {
                yes += 1;
            }
        }
        if yes * 2 > models.len() {
            out.push(rec);
        }
    }
    Ok(out)
}

/// UDF filter.
pub fn udf_filter(ctx: &PzContext, input: Vec<DataRecord>, udf: &str) -> PzResult<Vec<DataRecord>> {
    let f = ctx.udfs.filter(udf)?;
    Ok(input.into_iter().filter(|r| f(r)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasource::MemorySource;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn records(ctx: &PzContext, texts: &[&str]) -> Vec<DataRecord> {
        let src = MemorySource::from_texts(
            "t",
            Schema::text_file(),
            texts.iter().map(|s| s.to_string()).collect(),
        );
        ctx.registry.register(Arc::new(src));
        ctx.registry
            .get("t")
            .unwrap()
            .records(ctx.next_ids(texts.len() as u64))
            .unwrap()
    }

    #[test]
    fn llm_filter_separates_topics() {
        let ctx = PzContext::simulated();
        let input = records(
            &ctx,
            &[
                "A study of colorectal cancer tumor mutation in genomic cohorts.",
                "Galaxy cluster redshift surveys with radio telescopes.",
            ],
        );
        let out = llm_filter(
            &ctx,
            input,
            "The documents are about colorectal cancer",
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].prompt_text().contains("colorectal"));
    }

    #[test]
    fn llm_filter_charges_cost_per_record() {
        let ctx = PzContext::simulated();
        let input = records(&ctx, &["one doc here", "two docs here", "three docs here"]);
        llm_filter(&ctx, input, "anything", &"gpt-4o".into(), Effort::Standard).unwrap();
        assert_eq!(ctx.ledger.total_requests(), 3);
        assert!(ctx.ledger.total_cost_usd() > 0.0);
        assert!(ctx.clock.now_secs() > 0.0);
    }

    #[test]
    fn high_effort_costs_more() {
        let ctx1 = PzContext::simulated();
        let input1 = records(&ctx1, &["a document about some topic"]);
        llm_filter(&ctx1, input1, "topic", &"gpt-4o".into(), Effort::Standard).unwrap();
        let standard_cost = ctx1.ledger.total_cost_usd();

        let ctx2 = PzContext::simulated();
        let input2 = records(&ctx2, &["a document about some topic"]);
        llm_filter(&ctx2, input2, "topic", &"gpt-4o".into(), Effort::High).unwrap();
        let high_cost = ctx2.ledger.total_cost_usd();
        assert!(
            high_cost > standard_cost * 1.5,
            "{high_cost} vs {standard_cost}"
        );
    }

    #[test]
    fn embedding_filter_thresholds() {
        let ctx = PzContext::simulated();
        let input = records(
            &ctx,
            &[
                "colorectal cancer tumor mutation genomic study",
                "quasar redshift telescope galaxy survey",
            ],
        );
        let out = embedding_filter(
            &ctx,
            input,
            "colorectal cancer tumor genomic",
            &ctx.embed_model.clone(),
            0.35,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].prompt_text().contains("colorectal"));
        // Threshold 0 keeps nothing out only if scores >= 0; -1 keeps all.
        let ctx2 = PzContext::simulated();
        let input2 = records(&ctx2, &["a", "b"]);
        let all = embedding_filter(&ctx2, input2, "q", &ctx2.embed_model.clone(), -1.0).unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn embedding_filter_empty_input() {
        let ctx = PzContext::simulated();
        let out = embedding_filter(&ctx, Vec::new(), "q", &ctx.embed_model.clone(), 0.5).unwrap();
        assert!(out.is_empty());
        assert_eq!(ctx.ledger.total_requests(), 0);
    }

    #[test]
    fn ensemble_filter_majority_vote() {
        let ctx = PzContext::simulated();
        let input = records(
            &ctx,
            &[
                "A study of colorectal cancer tumor mutation in genomic cohorts.",
                "Galaxy cluster redshift surveys with radio telescopes.",
            ],
        );
        let models: Vec<ModelId> =
            vec!["gpt-4o".into(), "llama-3-70b".into(), "gpt-4o-mini".into()];
        let out = ensemble_filter(
            &ctx,
            input,
            "The documents are about colorectal cancer",
            &models,
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].prompt_text().contains("colorectal"));
        // Three calls per record.
        assert_eq!(ctx.ledger.total_requests(), 6);
    }

    #[test]
    fn ensemble_beats_its_weakest_member() {
        // Aggregate error rate of the 3-model majority must be below the
        // weakest member's own error rate across many records.
        let ctx = PzContext::simulated();
        let models: Vec<ModelId> = vec!["gpt-4o".into(), "llama-3-70b".into(), "llama-3-8b".into()];
        let mut ensemble_errors = 0usize;
        let mut weak_errors = 0usize;
        let n = 120;
        for i in 0..n {
            let relevant = i % 2 == 0;
            let text = if relevant {
                format!("Doc {i}: somatic colorectal cancer tumor mutation cohort.")
            } else {
                format!("Doc {i}: galaxy cluster redshift survey telescope imaging.")
            };
            let rec = DataRecord::new(ctx.next_id()).with_field("contents", text);
            let kept_ens = !ensemble_filter(
                &ctx,
                vec![rec.clone()],
                "about colorectal cancer",
                &models,
                Effort::Standard,
            )
            .unwrap()
            .is_empty();
            let kept_weak = !llm_filter(
                &ctx,
                vec![rec],
                "about colorectal cancer",
                &"llama-3-8b".into(),
                Effort::Standard,
            )
            .unwrap()
            .is_empty();
            if kept_ens != relevant {
                ensemble_errors += 1;
            }
            if kept_weak != relevant {
                weak_errors += 1;
            }
        }
        assert!(
            ensemble_errors < weak_errors,
            "ensemble {ensemble_errors} vs weak {weak_errors}"
        );
    }

    #[test]
    fn ensemble_empty_models_rejected() {
        let ctx = PzContext::simulated();
        assert!(ensemble_filter(&ctx, vec![], "p", &[], Effort::Standard).is_err());
    }

    #[test]
    fn udf_filter_applies() {
        let ctx = PzContext::simulated();
        ctx.udfs
            .register_filter("short", |r: &DataRecord| r.prompt_text().len() < 10);
        let input = records(&ctx, &["tiny", "a very long document body"]);
        let out = udf_filter(&ctx, input, "short").unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn udf_filter_unknown_errors() {
        let ctx = PzContext::simulated();
        assert!(matches!(
            udf_filter(&ctx, Vec::new(), "missing"),
            Err(PzError::UnknownUdf(_))
        ));
    }
}
