//! Conventional relational operators ("All other operations follow
//! conventional database semantics", §2.1): map, project, limit, sort,
//! distinct, aggregate. These never touch a model and cost (almost)
//! nothing; the virtual clock is advanced by a small per-record CPU charge
//! so Figure-5-style breakdowns show realistic non-zero rows.

use crate::context::PzContext;
use crate::error::{PzError, PzResult};
use crate::ops::logical::{AggExpr, AggFunc};
use crate::record::{DataRecord, Value};
use std::collections::BTreeMap;

/// Virtual CPU seconds charged per record by conventional operators.
const CPU_SECS_PER_RECORD: f64 = 0.000_05;

fn charge_cpu(ctx: &PzContext, records: usize) {
    ctx.clock.advance_secs(records as f64 * CPU_SECS_PER_RECORD);
}

/// Apply a registered record transform.
pub fn map(ctx: &PzContext, input: Vec<DataRecord>, udf: &str) -> PzResult<Vec<DataRecord>> {
    let f = ctx.udfs.map(udf)?;
    charge_cpu(ctx, input.len());
    Ok(input.iter().map(|r| f(r)).collect())
}

/// Keep only the named fields.
pub fn project(input: Vec<DataRecord>, fields: &[String]) -> Vec<DataRecord> {
    input
        .into_iter()
        .map(|mut r| {
            r.fields.retain(|k, _| fields.iter().any(|f| f == k));
            r
        })
        .collect()
}

/// First `n` records.
pub fn limit(mut input: Vec<DataRecord>, n: usize) -> Vec<DataRecord> {
    input.truncate(n);
    input
}

/// Stable sort by one field. Records missing the field (or with null)
/// sort last regardless of direction. Mixed types order by type name to
/// stay total.
pub fn sort(mut input: Vec<DataRecord>, field: &str, descending: bool) -> Vec<DataRecord> {
    input.sort_by(|a, b| {
        let va = a.get(field);
        let vb = b.get(field);
        let ord = compare_values(va, vb);
        if descending {
            ord.reverse()
        } else {
            ord
        }
    });
    input
}

/// Sort under the context's spill budget: inputs past
/// `PzContext::spill_budget_records` go through an external merge sort
/// ([`sort_external`]); everything else takes the in-memory path. Output
/// is byte-identical either way.
pub fn sort_budgeted(
    ctx: &PzContext,
    input: Vec<DataRecord>,
    field: &str,
    descending: bool,
) -> PzResult<Vec<DataRecord>> {
    match ctx.spill_budget_records {
        Some(b) if input.len() > b => sort_external(input, field, descending, b.max(1)),
        _ => Ok(sort(input, field, descending)),
    }
}

/// Monotone temp-dir suffix so concurrent spills in one process never
/// collide.
static SPILL_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// External merge sort: sort runs of at most `budget` records, spill each
/// to a temp file as JSON lines, then k-way merge the runs back. The
/// merge resolves ties by run index, and runs are consecutive input
/// segments each sorted stably — so equal-key records come back in input
/// order, exactly like the in-memory `sort_by`. The effective comparator
/// (including the descending reversal and nulls-last placement) is shared
/// with [`sort`], so the merged output is byte-identical to the in-memory
/// path at every budget.
pub fn sort_external(
    input: Vec<DataRecord>,
    field: &str,
    descending: bool,
    budget: usize,
) -> PzResult<Vec<DataRecord>> {
    let spill_err = |e: std::io::Error| PzError::Execution(format!("sort spill: {e}"));
    let eff = |a: &DataRecord, b: &DataRecord| {
        let ord = compare_values(a.get(field), b.get(field));
        if descending {
            ord.reverse()
        } else {
            ord
        }
    };
    let dir = std::env::temp_dir().join(format!(
        "pz-spill-{}-{}",
        std::process::id(),
        SPILL_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(spill_err)?;
    // Phase 1: drain the input into sorted runs on disk, freeing each
    // run's records before the next is cut.
    let total = input.len();
    let mut run_paths = Vec::new();
    let mut iter = input.into_iter();
    loop {
        let mut run: Vec<DataRecord> = iter.by_ref().take(budget).collect();
        if run.is_empty() {
            break;
        }
        run.sort_by(eff);
        let mut lines = String::new();
        for r in &run {
            lines.push_str(
                &serde_json::to_string(r)
                    .map_err(|e| PzError::Execution(format!("sort spill: {e}")))?,
            );
            lines.push('\n');
        }
        let path = dir.join(format!("run-{:05}.jsonl", run_paths.len()));
        std::fs::write(&path, lines).map_err(spill_err)?;
        run_paths.push(path);
    }
    // Phase 2: k-way merge. Heads are one record per run; ties keep the
    // lowest run index (stability). Linear head scan per pop — run counts
    // are total/budget, small against record work.
    let mut readers = Vec::new();
    for p in &run_paths {
        let f = std::fs::File::open(p).map_err(spill_err)?;
        readers.push(std::io::BufRead::lines(std::io::BufReader::new(f)));
    }
    let mut heads: Vec<Option<DataRecord>> = Vec::with_capacity(readers.len());
    for r in readers.iter_mut() {
        heads.push(next_spilled(r)?);
    }
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, h) in heads.iter().enumerate() {
            if let Some(rec) = h {
                best = match best {
                    None => Some(i),
                    Some(j) => {
                        let keep = heads[j].as_ref().expect("best head present");
                        if eff(rec, keep) == std::cmp::Ordering::Less {
                            Some(i)
                        } else {
                            Some(j)
                        }
                    }
                };
            }
        }
        let Some(i) = best else { break };
        out.push(heads[i].take().expect("best head present"));
        heads[i] = next_spilled(&mut readers[i])?;
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(out)
}

/// Read the next spilled record off a run file, `None` at end of run.
fn next_spilled(
    lines: &mut std::io::Lines<std::io::BufReader<std::fs::File>>,
) -> PzResult<Option<DataRecord>> {
    match lines.next() {
        None => Ok(None),
        Some(line) => {
            let line = line.map_err(|e| PzError::Execution(format!("sort spill: {e}")))?;
            serde_json::from_str(&line)
                .map(Some)
                .map_err(|e| PzError::Execution(format!("sort spill: {e}")))
        }
    }
}

fn compare_values(a: Option<&Value>, b: Option<&Value>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (value_key(a), value_key(b)) {
        (None, None) => Ordering::Equal,
        // Missing/null last in ascending; `sort` reverses for descending,
        // which flips this too — acceptable and documented behaviour.
        (None, Some(_)) => Ordering::Greater,
        (Some(_), None) => Ordering::Less,
        (Some(ka), Some(kb)) => ka.partial_cmp(&kb).unwrap_or(Ordering::Equal),
    }
}

/// Project a value to an orderable key: numbers before text, then lists.
fn value_key(v: Option<&Value>) -> Option<(u8, f64, String)> {
    match v? {
        Value::Null => None,
        Value::Bool(b) => Some((0, f64::from(u8::from(*b)), String::new())),
        Value::Int(i) => Some((1, *i as f64, String::new())),
        Value::Float(f) => Some((1, *f, String::new())),
        Value::Text(s) => Some((2, 0.0, s.clone())),
        Value::TextList(l) => Some((3, l.len() as f64, l.join("\u{1}"))),
    }
}

/// Remove duplicates by the named fields (all fields when empty),
/// preserving first occurrence.
pub fn distinct(input: Vec<DataRecord>, fields: &[String]) -> Vec<DataRecord> {
    let mut seen: Vec<String> = Vec::new();
    let mut out = Vec::new();
    for r in input {
        let key = if fields.is_empty() {
            r.fields
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join("\u{1}")
        } else {
            fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}={}",
                        r.get(f).map(|v| v.as_display()).unwrap_or_default()
                    )
                })
                .collect::<Vec<_>>()
                .join("\u{1}")
        };
        if !seen.contains(&key) {
            seen.push(key);
            out.push(r);
        }
    }
    out
}

/// Group-by + aggregates with conventional SQL semantics (empty group-by =
/// one global group; aggregates over empty input yield one row of nulls /
/// zero count only when a global aggregate).
pub fn aggregate(
    ctx: &PzContext,
    input: Vec<DataRecord>,
    group_by: &[String],
    aggs: &[AggExpr],
) -> PzResult<Vec<DataRecord>> {
    charge_cpu(ctx, input.len());
    let mut groups: BTreeMap<String, (Vec<Value>, Vec<DataRecord>)> = BTreeMap::new();
    for r in input {
        let key_vals: Vec<Value> = group_by
            .iter()
            .map(|g| r.get(g).cloned().unwrap_or(Value::Null))
            .collect();
        let key = key_vals
            .iter()
            .map(|v| v.as_display())
            .collect::<Vec<_>>()
            .join("\u{1}");
        groups
            .entry(key)
            .or_insert_with(|| (key_vals, Vec::new()))
            .1
            .push(r);
    }
    if groups.is_empty() && group_by.is_empty() {
        // Global aggregate over the empty input: COUNT = 0, others null.
        let mut rec = DataRecord::new(ctx.next_id());
        for a in aggs {
            let v = if a.func == AggFunc::Count {
                Value::Float(0.0)
            } else {
                Value::Null
            };
            rec.set(a.alias.clone(), v);
        }
        return Ok(vec![rec]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (_, (key_vals, members)) in groups {
        let mut rec = DataRecord::new(ctx.next_id());
        for (g, v) in group_by.iter().zip(key_vals) {
            rec.set(g.clone(), v);
        }
        for a in aggs {
            rec.set(a.alias.clone(), compute_agg(a, &members)?);
        }
        out.push(rec);
    }
    Ok(out)
}

fn compute_agg(a: &AggExpr, members: &[DataRecord]) -> PzResult<Value> {
    if a.func == AggFunc::Count {
        return Ok(Value::Float(members.len() as f64));
    }
    let nums: Vec<f64> = members
        .iter()
        .filter_map(|r| r.get(&a.field))
        .filter_map(|v| v.as_f64())
        .collect();
    if nums.is_empty() {
        return Ok(Value::Null);
    }
    let v = match a.func {
        AggFunc::Count => unreachable!(),
        AggFunc::Sum => nums.iter().sum(),
        AggFunc::Avg => nums.iter().sum::<f64>() / nums.len() as f64,
        AggFunc::Min => nums.iter().copied().fold(f64::INFINITY, f64::min),
        AggFunc::Max => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    };
    if v.is_finite() {
        Ok(Value::Float(v))
    } else {
        Err(PzError::Execution(format!(
            "aggregate {} overflowed",
            a.alias
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, pairs: &[(&str, Value)]) -> DataRecord {
        let mut r = DataRecord::new(id);
        for (k, v) in pairs {
            r.set(*k, v.clone());
        }
        r
    }

    #[test]
    fn project_keeps_only_named() {
        let input = vec![rec(0, &[("a", Value::Int(1)), ("b", Value::Int(2))])];
        let out = project(input, &["b".to_string()]);
        assert!(out[0].get("a").is_none());
        assert_eq!(out[0].get("b").unwrap().as_int(), Some(2));
    }

    #[test]
    fn limit_truncates() {
        let input: Vec<DataRecord> = (0..5).map(|i| rec(i, &[])).collect();
        assert_eq!(limit(input.clone(), 3).len(), 3);
        assert_eq!(limit(input, 10).len(), 5);
    }

    #[test]
    fn sort_numeric_and_text() {
        let input = vec![
            rec(0, &[("x", Value::Int(3))]),
            rec(1, &[("x", Value::Int(1))]),
            rec(2, &[("x", Value::Int(2))]),
        ];
        let out = sort(input, "x", false);
        let xs: Vec<i64> = out
            .iter()
            .map(|r| r.get("x").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(xs, vec![1, 2, 3]);

        let input = vec![
            rec(0, &[("s", Value::Text("beta".into()))]),
            rec(1, &[("s", Value::Text("alpha".into()))]),
        ];
        let out = sort(input, "s", true);
        assert_eq!(out[0].get("s").unwrap().as_text(), Some("beta"));
    }

    #[test]
    fn sort_nulls_last_ascending() {
        let input = vec![
            rec(0, &[("x", Value::Null)]),
            rec(1, &[("x", Value::Int(5))]),
            rec(2, &[]),
        ];
        let out = sort(input, "x", false);
        assert_eq!(out[0].id, 1);
    }

    #[test]
    fn sort_is_stable_on_ties() {
        let input = vec![
            rec(10, &[("x", Value::Int(1))]),
            rec(11, &[("x", Value::Int(1))]),
            rec(12, &[("x", Value::Int(0))]),
        ];
        let out = sort(input, "x", false);
        assert_eq!(
            out.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![12, 10, 11]
        );
    }

    #[test]
    fn distinct_by_field_and_all() {
        let input = vec![
            rec(0, &[("a", Value::Text("x".into())), ("b", Value::Int(1))]),
            rec(1, &[("a", Value::Text("x".into())), ("b", Value::Int(2))]),
            rec(2, &[("a", Value::Text("y".into())), ("b", Value::Int(1))]),
        ];
        assert_eq!(distinct(input.clone(), &["a".to_string()]).len(), 2);
        assert_eq!(distinct(input, &[]).len(), 3);
    }

    #[test]
    fn aggregate_global() {
        let ctx = PzContext::simulated();
        let input = vec![
            rec(0, &[("p", Value::Int(10))]),
            rec(1, &[("p", Value::Int(30))]),
        ];
        let out = aggregate(
            &ctx,
            input,
            &[],
            &[
                AggExpr::new(AggFunc::Count, "", "n"),
                AggExpr::new(AggFunc::Avg, "p", "avg_p"),
                AggExpr::new(AggFunc::Min, "p", "min_p"),
                AggExpr::new(AggFunc::Max, "p", "max_p"),
                AggExpr::new(AggFunc::Sum, "p", "sum_p"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("n").unwrap().as_f64(), Some(2.0));
        assert_eq!(out[0].get("avg_p").unwrap().as_f64(), Some(20.0));
        assert_eq!(out[0].get("min_p").unwrap().as_f64(), Some(10.0));
        assert_eq!(out[0].get("max_p").unwrap().as_f64(), Some(30.0));
        assert_eq!(out[0].get("sum_p").unwrap().as_f64(), Some(40.0));
    }

    #[test]
    fn aggregate_group_by() {
        let ctx = PzContext::simulated();
        let input = vec![
            rec(
                0,
                &[("city", Value::Text("a".into())), ("p", Value::Int(1))],
            ),
            rec(
                1,
                &[("city", Value::Text("b".into())), ("p", Value::Int(2))],
            ),
            rec(
                2,
                &[("city", Value::Text("a".into())), ("p", Value::Int(3))],
            ),
        ];
        let out = aggregate(
            &ctx,
            input,
            &["city".to_string()],
            &[AggExpr::new(AggFunc::Sum, "p", "total")],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let a = out
            .iter()
            .find(|r| r.get("city").unwrap().as_text() == Some("a"))
            .unwrap();
        assert_eq!(a.get("total").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn aggregate_empty_input_global() {
        let ctx = PzContext::simulated();
        let out = aggregate(
            &ctx,
            vec![],
            &[],
            &[
                AggExpr::new(AggFunc::Count, "", "n"),
                AggExpr::new(AggFunc::Sum, "p", "s"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("n").unwrap().as_f64(), Some(0.0));
        assert!(out[0].get("s").unwrap().is_null());
    }

    #[test]
    fn aggregate_empty_input_grouped_is_empty() {
        let ctx = PzContext::simulated();
        let out = aggregate(
            &ctx,
            vec![],
            &["city".to_string()],
            &[AggExpr::new(AggFunc::Count, "", "n")],
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn aggregate_ignores_non_numeric() {
        let ctx = PzContext::simulated();
        let input = vec![
            rec(0, &[("p", Value::Text("oops".into()))]),
            rec(1, &[("p", Value::Int(4))]),
        ];
        let out = aggregate(&ctx, input, &[], &[AggExpr::new(AggFunc::Avg, "p", "a")]).unwrap();
        assert_eq!(out[0].get("a").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn map_applies_udf() {
        let ctx = PzContext::simulated();
        ctx.udfs.register_map("tag", |r: &DataRecord| {
            let mut out = r.clone();
            out.set("tagged", true);
            out
        });
        let out = map(&ctx, vec![rec(0, &[])], "tag").unwrap();
        assert_eq!(out[0].get("tagged").unwrap().as_bool(), Some(true));
        assert!(map(&ctx, vec![], "missing").is_err());
    }

    /// A mixed-type, tie-heavy, null-bearing input that exercises every
    /// branch of the comparator, including float round-tripping through
    /// the spill files.
    fn spill_fixture() -> Vec<DataRecord> {
        let mut input = Vec::new();
        for i in 0..40u64 {
            let v = match i % 5 {
                0 => Value::Int((i as i64 * 7) % 13),
                1 => Value::Float((i as f64) * 0.37 - 3.21),
                2 => Value::Text(format!("s{}", i % 4)),
                3 => Value::Null,
                _ => Value::Int((i as i64) % 3),
            };
            input.push(rec(i, &[("k", v), ("seq", Value::Int(i as i64))]));
        }
        input
    }

    #[test]
    fn external_sort_matches_in_memory_at_every_budget() {
        for descending in [false, true] {
            let expected = sort(spill_fixture(), "k", descending);
            for budget in [1, 3, 7, 64] {
                let got = sort_external(spill_fixture(), "k", descending, budget).unwrap();
                assert_eq!(
                    expected, got,
                    "external sort diverged at budget {budget}, descending {descending}"
                );
            }
        }
    }

    #[test]
    fn external_sort_preserves_stability() {
        // All keys equal across three runs: merged order must be input
        // order (lowest run wins ties, sequential reads within a run).
        let input: Vec<DataRecord> = (0..9).map(|i| rec(i, &[("x", Value::Int(1))])).collect();
        let out = sort_external(input, "x", false, 3).unwrap();
        assert_eq!(
            out.iter().map(|r| r.id).collect::<Vec<_>>(),
            (0..9).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sort_budgeted_spills_only_past_budget() {
        let mut ctx = PzContext::simulated();
        ctx.spill_budget_records = Some(8);
        let in_memory = sort(spill_fixture(), "k", false);
        // 40 records > budget 8: the spilling path runs and must agree.
        let spilled = sort_budgeted(&ctx, spill_fixture(), "k", false).unwrap();
        assert_eq!(in_memory, spilled);
        // Under the budget nothing spills (same result either way).
        let small = sort_budgeted(&ctx, spill_fixture().split_off(35), "k", false).unwrap();
        assert_eq!(sort(spill_fixture().split_off(35), "k", false), small);
    }
}
