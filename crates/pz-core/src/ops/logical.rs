//! Logical operators and plans.
//!
//! Paper §2.1: "A Palimpzest plan is a sequence of these operators over a
//! dataset. By design, users write *logical* plans only; the choice of the
//! physical implementation is deferred until runtime." Plans here are
//! linear operator chains rooted at a `Scan`, validated by propagating
//! schemas through the chain.

use crate::datasource::DataRegistry;
use crate::error::{PzError, PzResult};
use crate::field::{FieldDef, FieldType};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

pub use pz_llm::protocol::Cardinality;

/// A filter's condition: a natural-language predicate (evaluated by an LLM
/// or embedding model at the physical level) or a registered UDF.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterPredicate {
    /// Natural-language condition, e.g. "The papers are about colorectal
    /// cancer".
    NaturalLanguage(String),
    /// Name of a registered boolean UDF.
    Udf(String),
}

impl FilterPredicate {
    pub fn describe(&self) -> String {
        match self {
            FilterPredicate::NaturalLanguage(p) => format!("nl:{p:?}"),
            FilterPredicate::Udf(u) => format!("udf:{u}"),
        }
    }
}

/// How a join decides whether a (left, right) pair matches.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinCondition {
    /// Conventional equality on one field per side.
    FieldEq { left: String, right: String },
    /// Natural-language criterion judged by an LLM over each pair.
    Semantic { criterion: String },
}

impl JoinCondition {
    pub fn describe(&self) -> String {
        match self {
            JoinCondition::FieldEq { left, right } => format!("{left}={right}"),
            JoinCondition::Semantic { criterion } => format!("sem:{criterion:?}"),
        }
    }
}

/// Aggregate functions with conventional database semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One aggregate expression: `func(field) AS alias`. `Count` ignores the
/// field.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggExpr {
    pub func: AggFunc,
    pub field: String,
    pub alias: String,
}

impl AggExpr {
    pub fn new(func: AggFunc, field: impl Into<String>, alias: impl Into<String>) -> Self {
        Self {
            func,
            field: field.into(),
            alias: alias.into(),
        }
    }
}

/// The logical operator algebra. `Convert` and `Filter` are the two special
/// operators the demo emphasizes; the rest "follow conventional database
/// semantics" (§2.1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LogicalOp {
    /// Read a registered dataset.
    Scan { dataset: String },
    /// Keep records satisfying the predicate.
    Filter { predicate: FilterPredicate },
    /// Transform records of schema A into records of schema B, computing
    /// the fields of B that do not exist in A.
    Convert {
        target: Schema,
        cardinality: Cardinality,
        description: String,
    },
    /// Apply a registered record-to-record UDF.
    Map { udf: String },
    /// Keep only the named fields.
    Project { fields: Vec<String> },
    /// Keep the first `n` records.
    Limit { n: usize },
    /// Sort by a field.
    Sort { field: String, descending: bool },
    /// Remove duplicate records (by the named fields; empty = all fields).
    Distinct { fields: Vec<String> },
    /// Group-by + aggregates.
    Aggregate {
        group_by: Vec<String>,
        aggs: Vec<AggExpr>,
    },
    /// Semantic top-k against the corpus itself: keep the `k` records most
    /// similar to the natural-language query.
    Retrieve { query: String, k: usize },
    /// Join the stream against another registered dataset.
    Join {
        dataset: String,
        condition: JoinCondition,
    },
    /// Assign each record one of a fixed label set, written into a new
    /// field (semantic categorization; nothing is dropped).
    Classify {
        labels: Vec<String>,
        output_field: String,
    },
    /// Append every record of another registered dataset to the stream
    /// (UNION ALL; the build side must share the current schema's fields).
    Union { dataset: String },
}

impl LogicalOp {
    /// Short name for display and stats.
    pub fn kind(&self) -> &'static str {
        match self {
            LogicalOp::Scan { .. } => "scan",
            LogicalOp::Filter { .. } => "filter",
            LogicalOp::Convert { .. } => "convert",
            LogicalOp::Map { .. } => "map",
            LogicalOp::Project { .. } => "project",
            LogicalOp::Limit { .. } => "limit",
            LogicalOp::Sort { .. } => "sort",
            LogicalOp::Distinct { .. } => "distinct",
            LogicalOp::Aggregate { .. } => "aggregate",
            LogicalOp::Retrieve { .. } => "retrieve",
            LogicalOp::Join { .. } => "join",
            LogicalOp::Classify { .. } => "classify",
            LogicalOp::Union { .. } => "union",
        }
    }

    /// Does this operator require an LLM at the physical level?
    pub fn is_semantic(&self) -> bool {
        matches!(
            self,
            LogicalOp::Filter {
                predicate: FilterPredicate::NaturalLanguage(_)
            } | LogicalOp::Convert { .. }
                | LogicalOp::Retrieve { .. }
                | LogicalOp::Join {
                    condition: JoinCondition::Semantic { .. },
                    ..
                }
        )
    }
}

/// Field-name-safe prefix for a join build side: non-identifier characters
/// become underscores ("repo-catalog" → `repo_catalog`).
pub fn join_field_prefix(dataset: &str) -> String {
    let mut out: String = dataset
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// A validated linear chain of logical operators.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogicalPlan {
    pub ops: Vec<LogicalOp>,
}

impl LogicalPlan {
    /// Build and structurally validate (must start with exactly one Scan,
    /// which must be first; Limit/Retrieve sizes positive).
    pub fn new(ops: Vec<LogicalOp>) -> PzResult<Self> {
        if ops.is_empty() {
            return Err(PzError::Plan("plan is empty".into()));
        }
        if !matches!(ops[0], LogicalOp::Scan { .. }) {
            return Err(PzError::Plan("plan must start with a Scan".into()));
        }
        for (i, op) in ops.iter().enumerate() {
            match op {
                LogicalOp::Scan { .. } if i > 0 => {
                    return Err(PzError::Plan(
                        "Scan only allowed as the first operator".into(),
                    ))
                }
                LogicalOp::Limit { n: 0 } => {
                    return Err(PzError::Plan("Limit 0 yields an empty pipeline".into()))
                }
                LogicalOp::Retrieve { k: 0, .. } => {
                    return Err(PzError::Plan("Retrieve with k=0 is empty".into()))
                }
                LogicalOp::Aggregate { aggs, .. } if aggs.is_empty() => {
                    return Err(PzError::Plan(
                        "Aggregate needs at least one aggregate".into(),
                    ))
                }
                LogicalOp::Join { dataset, .. } if dataset.is_empty() => {
                    return Err(PzError::Plan("Join needs a build-side dataset".into()))
                }
                LogicalOp::Classify { labels, .. } if labels.len() < 2 => {
                    return Err(PzError::Plan("Classify needs at least two labels".into()))
                }
                LogicalOp::Union { dataset } if dataset.is_empty() => {
                    return Err(PzError::Plan("Union needs a dataset".into()))
                }
                _ => {}
            }
        }
        Ok(Self { ops })
    }

    /// The dataset the plan scans.
    pub fn dataset(&self) -> &str {
        match &self.ops[0] {
            LogicalOp::Scan { dataset } => dataset,
            _ => unreachable!("validated: first op is Scan"),
        }
    }

    /// Number of semantic (LLM-requiring) operators.
    pub fn semantic_op_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_semantic()).count()
    }

    /// Propagate schemas through the chain, checking field references.
    /// Returns the output schema of every operator (same length as `ops`).
    pub fn schemas(&self, registry: &DataRegistry) -> PzResult<Vec<Schema>> {
        let mut out = Vec::with_capacity(self.ops.len());
        let mut current: Option<Schema> = None;
        for op in &self.ops {
            let next = match op {
                LogicalOp::Scan { dataset } => registry.get(dataset)?.schema(),
                LogicalOp::Filter { .. } | LogicalOp::Limit { .. } | LogicalOp::Retrieve { .. } => {
                    current.clone().expect("scan first")
                }
                LogicalOp::Map { .. } => current.clone().expect("scan first"),
                LogicalOp::Distinct { fields } => {
                    let cur = current.clone().expect("scan first");
                    for f in fields {
                        if !cur.has_field(f) {
                            return Err(PzError::Plan(format!(
                                "Distinct references unknown field {f:?}"
                            )));
                        }
                    }
                    cur
                }
                LogicalOp::Sort { field, .. } => {
                    let cur = current.clone().expect("scan first");
                    if !cur.has_field(field) {
                        return Err(PzError::Plan(format!(
                            "Sort references unknown field {field:?}"
                        )));
                    }
                    cur
                }
                LogicalOp::Project { fields } => {
                    let cur = current.clone().expect("scan first");
                    cur.project(fields)
                        .map_err(|e| PzError::Plan(e.to_string()))?
                }
                LogicalOp::Convert { target, .. } => {
                    // Converts may compute any field; the *output* is the
                    // target schema plus pass-through of input fields is not
                    // guaranteed, so downstream refs must use the target.
                    target.clone()
                }
                LogicalOp::Join { dataset, condition } => {
                    let cur = current.clone().expect("scan first");
                    let right = registry.get(dataset)?.schema();
                    if let JoinCondition::FieldEq { left, right: rf } = condition {
                        if !cur.has_field(left) {
                            return Err(PzError::Plan(format!(
                                "Join references unknown left field {left:?}"
                            )));
                        }
                        if !right.has_field(rf) {
                            return Err(PzError::Plan(format!(
                                "Join references unknown right field {rf:?} in {dataset}"
                            )));
                        }
                    }
                    // Merge schemas; colliding right fields get prefixed
                    // with a field-name-safe rendering of the dataset name.
                    let prefix = join_field_prefix(dataset);
                    let mut fields = cur.fields.clone();
                    for f in &right.fields {
                        let mut f = f.clone();
                        if cur.has_field(&f.name) {
                            f.name = format!("{prefix}_{}", f.name);
                        }
                        fields.push(f);
                    }
                    Schema::new(
                        format!("{}Join{}", cur.name, right.name),
                        "join output",
                        fields,
                    )
                    .map_err(|e| PzError::Plan(e.to_string()))?
                }
                LogicalOp::Union { dataset } => {
                    let cur = current.clone().expect("scan first");
                    let other = registry.get(dataset)?.schema();
                    for f in &cur.fields {
                        if f.required && !other.has_field(&f.name) {
                            return Err(PzError::Plan(format!(
                                "Union: dataset {dataset} lacks required field {:?}",
                                f.name
                            )));
                        }
                    }
                    cur
                }
                LogicalOp::Classify { output_field, .. } => {
                    let cur = current.clone().expect("scan first");
                    if !crate::field::is_valid_field_name(output_field) {
                        return Err(PzError::Plan(format!(
                            "Classify output field {output_field:?} is not a valid field name"
                        )));
                    }
                    let mut fields = cur.fields.clone();
                    if !cur.has_field(output_field) {
                        fields.push(FieldDef::text(
                            output_field.clone(),
                            "label assigned by classification",
                        ));
                    }
                    Schema::new(
                        format!("{}Classified", cur.name),
                        "classification output",
                        fields,
                    )
                    .map_err(|e| PzError::Plan(e.to_string()))?
                }
                LogicalOp::Aggregate { group_by, aggs } => {
                    let cur = current.clone().expect("scan first");
                    for a in aggs {
                        if a.func != AggFunc::Count && !cur.has_field(&a.field) {
                            return Err(PzError::Plan(format!(
                                "Aggregate references unknown field {:?}",
                                a.field
                            )));
                        }
                    }
                    let mut fields = Vec::new();
                    for g in group_by {
                        let f = cur.field(g).ok_or_else(|| {
                            PzError::Plan(format!("group-by references unknown field {g:?}"))
                        })?;
                        fields.push(f.clone());
                    }
                    for a in aggs {
                        fields.push(FieldDef::typed(
                            a.alias.clone(),
                            FieldType::Float,
                            "aggregate",
                        ));
                    }
                    Schema::new(format!("{}Agg", cur.name), "aggregation output", fields)
                        .map_err(|e| PzError::Plan(e.to_string()))?
                }
            };
            out.push(next.clone());
            current = Some(next);
        }
        Ok(out)
    }

    /// Output schema of the whole plan.
    pub fn output_schema(&self, registry: &DataRegistry) -> PzResult<Schema> {
        Ok(self.schemas(registry)?.pop().expect("non-empty plan"))
    }

    /// One-line rendering, e.g. `scan(demo) -> filter(nl) -> convert(ClinicalData)`.
    pub fn describe(&self) -> String {
        self.ops
            .iter()
            .map(|op| match op {
                LogicalOp::Scan { dataset } => format!("scan({dataset})"),
                LogicalOp::Filter { predicate } => format!("filter({})", predicate.describe()),
                LogicalOp::Convert {
                    target,
                    cardinality,
                    ..
                } => {
                    let card = match cardinality {
                        Cardinality::OneToOne => "1:1",
                        Cardinality::OneToMany => "1:N",
                    };
                    format!("convert({}, {card})", target.name)
                }
                LogicalOp::Map { udf } => format!("map({udf})"),
                LogicalOp::Project { fields } => format!("project({})", fields.join(",")),
                LogicalOp::Limit { n } => format!("limit({n})"),
                LogicalOp::Sort { field, descending } => {
                    format!("sort({field}{})", if *descending { " desc" } else { "" })
                }
                LogicalOp::Distinct { fields } => format!("distinct({})", fields.join(",")),
                LogicalOp::Aggregate { group_by, aggs } => format!(
                    "aggregate(by=[{}], [{}])",
                    group_by.join(","),
                    aggs.iter()
                        .map(|a| format!("{}({})", a.func.name(), a.field))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
                LogicalOp::Retrieve { query, k } => format!("retrieve({query:?}, k={k})"),
                LogicalOp::Join { dataset, condition } => {
                    format!("join({dataset}, {})", condition.describe())
                }
                LogicalOp::Classify {
                    labels,
                    output_field,
                } => {
                    format!("classify([{}] -> {output_field})", labels.join("|"))
                }
                LogicalOp::Union { dataset } => format!("union({dataset})"),
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasource::MemorySource;
    use crate::field::FieldDef;
    use std::sync::Arc;

    fn registry() -> DataRegistry {
        let reg = DataRegistry::new();
        reg.register(Arc::new(MemorySource::from_texts(
            "demo",
            Schema::pdf_file(),
            vec!["doc".into()],
        )));
        reg
    }

    fn clinical() -> Schema {
        Schema::new(
            "ClinicalData",
            "datasets from papers",
            vec![
                FieldDef::text("name", "The dataset name"),
                FieldDef::text("url", "The public URL"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn plan_must_start_with_scan() {
        let err = LogicalPlan::new(vec![LogicalOp::Limit { n: 1 }]).unwrap_err();
        assert!(err.to_string().contains("Scan"));
        assert!(LogicalPlan::new(vec![]).is_err());
    }

    #[test]
    fn scan_only_first() {
        let err = LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "a".into(),
            },
            LogicalOp::Scan {
                dataset: "b".into(),
            },
        ])
        .unwrap_err();
        assert!(err.to_string().contains("first"));
    }

    #[test]
    fn zero_limit_rejected() {
        assert!(LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "a".into()
            },
            LogicalOp::Limit { n: 0 },
        ])
        .is_err());
    }

    #[test]
    fn demo_pipeline_schemas() {
        // The Figure 6 pipeline: scan -> filter -> convert.
        let plan = LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "demo".into(),
            },
            LogicalOp::Filter {
                predicate: FilterPredicate::NaturalLanguage(
                    "The papers are about colorectal cancer".into(),
                ),
            },
            LogicalOp::Convert {
                target: clinical(),
                cardinality: Cardinality::OneToMany,
                description: "extract datasets".into(),
            },
        ])
        .unwrap();
        let schemas = plan.schemas(&registry()).unwrap();
        assert_eq!(schemas[0].name, "PDFFile");
        assert_eq!(schemas[1].name, "PDFFile");
        assert_eq!(schemas[2].name, "ClinicalData");
        assert_eq!(plan.dataset(), "demo");
        assert_eq!(plan.semantic_op_count(), 2);
    }

    #[test]
    fn unknown_dataset_fails_schema_propagation() {
        let plan = LogicalPlan::new(vec![LogicalOp::Scan {
            dataset: "missing".into(),
        }])
        .unwrap();
        assert!(matches!(
            plan.schemas(&registry()),
            Err(PzError::UnknownDataset(_))
        ));
    }

    #[test]
    fn bad_sort_field_caught() {
        let plan = LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "demo".into(),
            },
            LogicalOp::Sort {
                field: "nope".into(),
                descending: false,
            },
        ])
        .unwrap();
        assert!(plan.schemas(&registry()).is_err());
    }

    #[test]
    fn projection_narrows_schema() {
        let plan = LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "demo".into(),
            },
            LogicalOp::Project {
                fields: vec!["filename".into()],
            },
        ])
        .unwrap();
        let out = plan.output_schema(&registry()).unwrap();
        assert_eq!(out.field_names(), vec!["filename"]);
    }

    #[test]
    fn aggregate_schema_and_validation() {
        let plan = LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "demo".into(),
            },
            LogicalOp::Aggregate {
                group_by: vec!["filename".into()],
                aggs: vec![AggExpr::new(AggFunc::Count, "", "n")],
            },
        ])
        .unwrap();
        let out = plan.output_schema(&registry()).unwrap();
        assert_eq!(out.field_names(), vec!["filename", "n"]);

        let bad = LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "demo".into(),
            },
            LogicalOp::Aggregate {
                group_by: vec![],
                aggs: vec![AggExpr::new(AggFunc::Sum, "nope", "s")],
            },
        ])
        .unwrap();
        assert!(bad.schemas(&registry()).is_err());
    }

    #[test]
    fn describe_is_readable() {
        let plan = LogicalPlan::new(vec![
            LogicalOp::Scan {
                dataset: "demo".into(),
            },
            LogicalOp::Filter {
                predicate: FilterPredicate::NaturalLanguage("about cancer".into()),
            },
            LogicalOp::Limit { n: 5 },
        ])
        .unwrap();
        let d = plan.describe();
        assert!(d.starts_with("scan(demo)"));
        assert!(d.contains("filter"));
        assert!(d.ends_with("limit(5)"));
    }

    #[test]
    fn semantic_op_detection() {
        assert!(LogicalOp::Filter {
            predicate: FilterPredicate::NaturalLanguage("x".into())
        }
        .is_semantic());
        assert!(!LogicalOp::Filter {
            predicate: FilterPredicate::Udf("f".into())
        }
        .is_semantic());
        assert!(!LogicalOp::Limit { n: 1 }.is_semantic());
        assert!(LogicalOp::Retrieve {
            query: "q".into(),
            k: 3
        }
        .is_semantic());
    }
}
