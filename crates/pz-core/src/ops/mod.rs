//! Operator layer: the logical algebra, its physical implementations, and
//! the per-operator execution routines.

pub mod classify;
pub mod convert;
pub mod filter;
pub mod join;
pub mod logical;
pub mod physical;
pub mod relational;
pub mod retrieve;
