//! Classify — semantic categorization.
//!
//! Assigns each record exactly one of a fixed label set (the `sem_map`
//! of Lotus-style systems), writing the chosen label into a new field.
//! Unlike a filter, nothing is dropped: downstream conventional operators
//! (group-by, UDF filters on the label) take over — the mixed
//! LLM/relational composition the paper motivates.

use crate::context::PzContext;
use crate::error::{PzError, PzResult};
use crate::record::DataRecord;
use pz_llm::protocol::{self, Effort};
use pz_llm::tokenizer::truncate_to_tokens;
use pz_llm::{count_tokens, CompletionRequest, ModelId};

/// LLM-judged classification: one call per record; the response label is
/// snapped to the nearest configured label (case-insensitive), `Null`-like
/// responses fall back to the last label ("other" by convention).
pub fn llm_classify(
    ctx: &PzContext,
    input: Vec<DataRecord>,
    labels: &[String],
    output_field: &str,
    model: &ModelId,
    effort: Effort,
) -> PzResult<Vec<DataRecord>> {
    if labels.is_empty() {
        return Err(PzError::Plan("classify needs at least one label".into()));
    }
    let window = ctx
        .catalog
        .get(model)
        .map(|m| m.context_window)
        .unwrap_or(usize::MAX);
    let label_tokens: usize = labels.iter().map(|l| count_tokens(l)).sum();
    let budget = window.saturating_sub(label_tokens + 64);
    let mut out = Vec::with_capacity(input.len());
    for mut rec in input {
        let text = truncate_to_tokens(&rec.prompt_text(), budget);
        let prompt = protocol::classify_prompt_with_effort(labels, &text, effort);
        let req = CompletionRequest::new(model.clone(), prompt).with_max_output_tokens(16);
        let resp = ctx
            .retry
            .complete_with(ctx.llm.as_ref(), &req, &ctx.retry_ctx())?;
        let answer = resp.text.trim();
        let label = labels
            .iter()
            .find(|l| l.eq_ignore_ascii_case(answer))
            .or_else(|| {
                // Tolerate prose around the label, the way real model
                // output requires.
                labels
                    .iter()
                    .find(|l| answer.to_lowercase().contains(&l.to_lowercase()))
            })
            .unwrap_or_else(|| labels.last().expect("non-empty"));
        rec.set(output_field.to_string(), label.clone());
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ctx: &PzContext, text: &str) -> DataRecord {
        DataRecord::new(ctx.next_id()).with_field("contents", text)
    }

    fn labels() -> Vec<String> {
        vec![
            "merger business".into(),
            "office social".into(),
            "other".into(),
        ]
    }

    #[test]
    fn classifies_by_topic() {
        let ctx = PzContext::simulated();
        let input = vec![
            rec(
                &ctx,
                "the acme initech merger agreement requires the disclosure schedules",
            ),
            rec(
                &ctx,
                "the team offsite social plan announces the friday social",
            ),
        ];
        let out = llm_classify(
            &ctx,
            input,
            &labels(),
            "category",
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(
            out[0].get("category").unwrap().as_text(),
            Some("merger business")
        );
        assert_eq!(
            out[1].get("category").unwrap().as_text(),
            Some("office social")
        );
    }

    #[test]
    fn nothing_is_dropped() {
        let ctx = PzContext::simulated();
        let input: Vec<DataRecord> = (0..7)
            .map(|i| rec(&ctx, &format!("document number {i}")))
            .collect();
        let out = llm_classify(
            &ctx,
            input,
            &labels(),
            "category",
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(out.len(), 7);
        for r in &out {
            let label = r.get("category").unwrap().as_display();
            assert!(labels().contains(&label), "{label}");
        }
    }

    #[test]
    fn empty_labels_rejected() {
        let ctx = PzContext::simulated();
        assert!(llm_classify(&ctx, vec![], &[], "c", &"gpt-4o".into(), Effort::Standard).is_err());
    }

    #[test]
    fn charges_one_call_per_record() {
        let ctx = PzContext::simulated();
        let input = vec![rec(&ctx, "a"), rec(&ctx, "b"), rec(&ctx, "c")];
        llm_classify(
            &ctx,
            input,
            &labels(),
            "cat",
            &"gpt-4o".into(),
            Effort::Standard,
        )
        .unwrap();
        assert_eq!(ctx.ledger.total_requests(), 3);
    }

    #[test]
    fn weak_model_misclassifies_more() {
        let ctx = PzContext::simulated();
        let n = 120;
        let mut strong_ok = 0usize;
        let mut weak_ok = 0usize;
        for i in 0..n {
            let (text, want) = if i % 2 == 0 {
                (
                    format!("mail {i}: the acme initech merger valuation model and filing"),
                    "merger business",
                )
            } else {
                (
                    format!("mail {i}: the cafeteria menu and friday social for all staff"),
                    "office social",
                )
            };
            let run = |m: &str| {
                let out = llm_classify(
                    &ctx,
                    vec![rec(&ctx, &text)],
                    &labels(),
                    "cat",
                    &m.into(),
                    Effort::Standard,
                )
                .unwrap();
                out[0].get("cat").unwrap().as_display() == want
            };
            strong_ok += usize::from(run("gpt-4o"));
            weak_ok += usize::from(run("llama-3-8b"));
        }
        assert!(strong_ok > weak_ok, "strong {strong_ok} vs weak {weak_ok}");
    }
}
