//! # pz-core — the Palimpzest reproduction
//!
//! A declarative system for building and automatically optimizing AI data
//! pipelines over unstructured data (paper §2.1). Users write *logical*
//! plans with the fluent [`dataset::Dataset`] builder; the
//! [`optimizer::Optimizer`] enumerates all physical implementations
//! (model × strategy × effort per semantic operator), estimates each plan's
//! dollar cost, runtime, and output quality, prunes the Pareto-dominated
//! ones, and picks the winner under a user [`optimizer::policy::Policy`];
//! the [`exec`] engine runs the plan and reports Figure-5-style statistics.
//!
//! ## The demo pipeline (Figure 6), end to end
//!
//! ```
//! use pz_core::prelude::*;
//! use std::sync::Arc;
//!
//! // Runtime context with the simulated LLM substrate.
//! let ctx = PzContext::simulated();
//!
//! // Register the 11-paper scientific-discovery corpus.
//! let (docs, _truth) = pz_datagen::science::demo_corpus();
//! let items = docs.into_iter().map(|d| (d.filename, d.content)).collect();
//! ctx.registry.register(Arc::new(MemorySource::new(
//!     "sigmod-demo", Schema::pdf_file(), items)));
//!
//! // Figure 6: schema + filter + convert.
//! let clinical = Schema::new(
//!     "ClinicalData",
//!     "A schema for extracting clinical data datasets from papers.",
//!     vec![
//!         FieldDef::text("name", "The name of the clinical data dataset"),
//!         FieldDef::text("description", "A short description of the content of the dataset"),
//!         FieldDef::text("url", "The public URL where the dataset can be accessed"),
//!     ],
//! ).unwrap();
//! let plan = Dataset::source("sigmod-demo")
//!     .filter("The papers are about colorectal cancer")
//!     .convert(clinical, Cardinality::OneToMany, "extract datasets")
//!     .build().unwrap();
//!
//! // records, execution_stats = Execute(output, policy=pz.MaxQuality())
//! let outcome = execute(&ctx, &plan, &Policy::MaxQuality, ExecutionConfig::sequential()).unwrap();
//! assert!(!outcome.records.is_empty());
//! assert!(outcome.stats.total_cost_usd > 0.0);
//! ```

pub mod context;
pub mod dataset;
pub mod datasource;
pub mod error;
pub mod exec;
pub mod field;
pub mod ops;
pub mod optimizer;
pub mod record;
pub mod schema;

use crate::exec::{execute_plan, ExecMode, ExecutionConfig, ExecutionStats};
use crate::ops::logical::LogicalPlan;
use crate::ops::physical::PhysicalPlan;
use crate::optimizer::cost::PlanEstimate;
use crate::optimizer::policy::Policy;
use crate::optimizer::{Optimizer, OptimizerReport};
use crate::record::DataRecord;

/// Everything `execute` produces: output records, runtime statistics, the
/// chosen physical plan, its pre-execution estimate, and the optimizer
/// report.
#[derive(Clone, Debug)]
pub struct ExecutionOutcome {
    pub records: Vec<DataRecord>,
    pub stats: ExecutionStats,
    pub chosen_plan: PhysicalPlan,
    pub estimate: PlanEstimate,
    pub report: OptimizerReport,
}

impl ExecutionOutcome {
    /// Estimate-vs-observed drift for this run: the optimizer's
    /// per-operator predictions zipped against the measured stats.
    /// `None` when the report kept no estimates or the shapes disagree.
    pub fn drift_report(&self) -> Option<optimizer::drift::DriftReport> {
        optimizer::drift::DriftReport::new(&self.report.op_estimates, &self.stats)
    }

    /// EXPLAIN-style report: the chosen physical plan, its pre-execution
    /// estimates, the optimizer's search statistics, and the measured
    /// per-operator table.
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "physical plan : {}", self.chosen_plan.describe());
        let _ = writeln!(
            s,
            "estimate      : ${:.4}, {:.1}s, quality {:.2}, ~{:.0} records out",
            self.estimate.cost_usd,
            self.estimate.time_secs,
            self.estimate.quality,
            self.estimate.output_cardinality
        );
        let _ = writeln!(
            s,
            "search        : {} physical plans, {} considered, {} on the Pareto frontier{}{}",
            self.report.plan_space_size,
            self.report.plans_considered,
            self.report.pareto_size,
            if self.report.calibrated {
                ", sentinel-calibrated"
            } else {
                ""
            },
            if self.report.rewrites.changed() {
                ", logically rewritten"
            } else {
                ""
            },
        );
        s.push_str(&self.stats.render_table());
        s
    }
}

/// Optimize and run a logical plan — the library's `Execute(output,
/// policy)` entry point from Figure 6.
pub fn execute(
    ctx: &context::PzContext,
    plan: &LogicalPlan,
    policy: &Policy,
    config: ExecutionConfig,
) -> error::PzResult<ExecutionOutcome> {
    execute_with_optimizer(ctx, plan, policy, config, &Optimizer::default())
}

/// `execute` with a configured optimizer (e.g. sentinel calibration on).
pub fn execute_with_optimizer(
    ctx: &context::PzContext,
    plan: &LogicalPlan,
    policy: &Policy,
    config: ExecutionConfig,
    optimizer: &Optimizer,
) -> error::PzResult<ExecutionOutcome> {
    // A streaming run overlaps its stages, so plan *time* must be costed
    // as the bottleneck stage — otherwise MinTime-style policies would
    // rank plans by a sum the executor never pays. Likewise, worker pools
    // divide each stage's effective time, which can shift which plan wins
    // a time-sensitive policy.
    let mut optimizer = optimizer.clone();
    if matches!(config.mode, ExecMode::Streaming { .. }) {
        optimizer.pipelined_time = true;
        optimizer.parallel_workers = config.parallelism.max_workers();
    }
    let (chosen_plan, estimate, report) = optimizer.optimize(ctx, plan, policy)?;
    // Failover picks substitutes along the same dimension the policy
    // optimized for (quality-seeking policy -> next-best-quality model).
    let mut config = config;
    config.rank = crate::exec::FailoverRank::from(policy);
    let (records, mut stats) = execute_plan(ctx, &chosen_plan, config)?;
    stats.policy = policy.name();
    Ok(ExecutionOutcome {
        records,
        stats,
        chosen_plan,
        estimate,
        report,
    })
}

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::context::{AdmissionGate, PzContext};
    pub use crate::dataset::Dataset;
    pub use crate::datasource::{
        DataRegistry, DatasetChange, DatasetVersion, DirectorySource, GeneratedSource,
        MemorySource, RecordBatchIter, RecordGenerator, UdfRegistry, VersionedSource,
    };
    pub use crate::error::{PzError, PzResult};
    pub use crate::exec::{
        DegradedExecution, ExecMode, ExecutionConfig, ExecutionSnapshot, ExecutionStats,
        FailoverRank, OperatorStats, ParallelismConfig,
    };
    pub use crate::execute;
    pub use crate::execute_with_optimizer;
    pub use crate::field::{FieldDef, FieldType};
    pub use crate::ops::logical::{
        AggExpr, AggFunc, Cardinality, FilterPredicate, LogicalOp, LogicalPlan,
    };
    pub use crate::ops::physical::{PhysicalOp, PhysicalPlan};
    pub use crate::optimizer::adaptive::{AdaptiveConfig, AdaptiveReport};
    pub use crate::optimizer::cost::{OperatorEstimate, PlanEstimate};
    pub use crate::optimizer::drift::{DriftReport, StageDrift};
    pub use crate::optimizer::policy::Policy;
    pub use crate::optimizer::Optimizer;
    pub use crate::record::{DataRecord, Value};
    pub use crate::schema::Schema;
    pub use crate::ExecutionOutcome;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Arc;

    fn science_ctx() -> PzContext {
        let ctx = PzContext::simulated();
        let (docs, _) = pz_datagen::science::demo_corpus();
        let items = docs.into_iter().map(|d| (d.filename, d.content)).collect();
        ctx.registry.register(Arc::new(MemorySource::new(
            "sigmod-demo",
            Schema::pdf_file(),
            items,
        )));
        ctx
    }

    fn demo_plan() -> LogicalPlan {
        let clinical = Schema::new(
            "ClinicalData",
            "A schema for extracting clinical data datasets from papers.",
            vec![
                FieldDef::text("name", "The name of the clinical data dataset"),
                FieldDef::text(
                    "description",
                    "A short description of the content of the dataset",
                ),
                FieldDef::text("url", "The public URL where the dataset can be accessed"),
            ],
        )
        .unwrap();
        Dataset::source("sigmod-demo")
            .filter("The papers are about colorectal cancer")
            .convert(clinical, Cardinality::OneToMany, "extract datasets")
            .build()
            .unwrap()
    }

    #[test]
    fn execute_max_quality_picks_champion_model() {
        let ctx = science_ctx();
        let outcome = execute(
            &ctx,
            &demo_plan(),
            &Policy::MaxQuality,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        // MaxQuality must route both semantic ops to the champion at high
        // effort.
        let desc = outcome.chosen_plan.describe();
        assert!(desc.contains("gpt-4o"), "{desc}");
        assert!(outcome.report.plan_space_size > 100);
        assert!(outcome.report.pareto_size <= outcome.report.plans_considered);
        assert!(!outcome.records.is_empty());
    }

    #[test]
    fn min_cost_is_cheaper_than_max_quality() {
        let ctx1 = science_ctx();
        let q = execute(
            &ctx1,
            &demo_plan(),
            &Policy::MaxQuality,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        let ctx2 = science_ctx();
        let c = execute(
            &ctx2,
            &demo_plan(),
            &Policy::MinCost,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        assert!(
            c.stats.total_cost_usd < q.stats.total_cost_usd,
            "MinCost {} vs MaxQuality {}",
            c.stats.total_cost_usd,
            q.stats.total_cost_usd
        );
    }

    #[test]
    fn min_time_is_faster_than_max_quality() {
        let ctx1 = science_ctx();
        let q = execute(
            &ctx1,
            &demo_plan(),
            &Policy::MaxQuality,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        let ctx2 = science_ctx();
        let t = execute(
            &ctx2,
            &demo_plan(),
            &Policy::MinTime,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        assert!(t.stats.total_time_secs < q.stats.total_time_secs);
    }

    #[test]
    fn constrained_policy_respects_budget_in_estimate() {
        let ctx = science_ctx();
        let budget = 0.05;
        let outcome = execute(
            &ctx,
            &demo_plan(),
            &Policy::MaxQualityAtCost(budget),
            ExecutionConfig::sequential(),
        )
        .unwrap();
        assert!(
            outcome.estimate.cost_usd <= budget,
            "estimate {} over budget",
            outcome.estimate.cost_usd
        );
    }

    #[test]
    fn invalid_plan_fails_before_any_cost() {
        let ctx = PzContext::simulated();
        let plan = Dataset::source("not-registered")
            .filter("x")
            .build()
            .unwrap();
        assert!(execute(&ctx, &plan, &Policy::MinCost, ExecutionConfig::sequential()).is_err());
        assert_eq!(ctx.ledger.total_cost_usd(), 0.0);
    }

    #[test]
    fn fieldwise_convert_is_enumerated_but_dominated() {
        // The conventional per-field strategy exists in the plan space but
        // never survives to be chosen: bonded dominates it on cost and
        // quality under this cost model.
        let ctx = science_ctx();
        for policy in [Policy::MaxQuality, Policy::MinCost, Policy::MinTime] {
            let outcome =
                execute(&ctx, &demo_plan(), &policy, ExecutionConfig::sequential()).unwrap();
            assert!(
                !outcome.chosen_plan.describe().contains("FieldwiseConvert"),
                "{policy:?} chose {}",
                outcome.chosen_plan.describe()
            );
        }
    }

    #[test]
    fn streaming_execute_same_cost_bottleneck_time_estimate() {
        let ctx_m = science_ctx();
        let m = execute(
            &ctx_m,
            &demo_plan(),
            &Policy::MaxQuality,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        let ctx_s = science_ctx();
        let s = execute(
            &ctx_s,
            &demo_plan(),
            &Policy::MaxQuality,
            ExecutionConfig::streaming(),
        )
        .unwrap();
        // Same plan, same records, same dollars.
        assert_eq!(m.chosen_plan.describe(), s.chosen_plan.describe());
        assert_eq!(m.records.len(), s.records.len());
        assert!((m.stats.total_cost_usd - s.stats.total_cost_usd).abs() < 1e-9);
        // The optimizer costed time as the bottleneck stage, and the
        // executor measured the overlap.
        assert!(s.estimate.time_secs < m.estimate.time_secs);
        assert!(s.stats.total_time_secs < m.stats.total_time_secs);
    }

    #[test]
    fn explain_contains_plan_estimates_and_table() {
        let ctx = science_ctx();
        let outcome = execute(
            &ctx,
            &demo_plan(),
            &Policy::MaxQuality,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        let e = outcome.explain();
        assert!(e.contains("physical plan"));
        assert!(e.contains("estimate"));
        assert!(e.contains("Pareto frontier"));
        assert!(e.contains("TOTAL"));
    }

    #[test]
    fn estimate_tracks_actuals_within_factor() {
        // The cost model should land within ~5x of the measured values for
        // the demo pipeline (it uses default selectivity/fanout).
        let ctx = science_ctx();
        let outcome = execute(
            &ctx,
            &demo_plan(),
            &Policy::MaxQuality,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        let est = outcome.estimate.cost_usd;
        let act = outcome.stats.total_cost_usd;
        assert!(est > act / 5.0 && est < act * 5.0, "est {est} vs act {act}");
    }
}
