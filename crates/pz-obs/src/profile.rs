//! Post-processing a [`TraceSnapshot`] into a per-stage latency
//! attribution and a critical path — the "where did the time go, and how
//! wrong was the optimizer?" layer the re-optimization loop consumes.
//!
//! The executor records wait gauges (profiling mode only) as `prof_*`
//! attributes on its per-operator spans; this module turns them into
//! attribution buckets:
//!
//! - **compute** — virtual time the stage was busy itself (residual);
//! - **queue-wait** — blocked on an empty input channel;
//! - **provider-wait** — waiting for the provider gate/turnstile plus the
//!   modelled provider latency of its own calls;
//! - **backpressure** — blocked on a full output channel;
//! - **retry/backoff** — exponential-backoff sleeps between attempts.
//!
//! Buckets are normalized so they always sum to the stage's observed
//! window: pooled stages record waits from several workers, so the raw
//! sum can exceed wall time — when it does, waits are scaled down
//! proportionally and compute is 0. All quantities are *virtual-clock*
//! microseconds: real compute takes zero virtual time, so a simulated
//! run attributes nearly everything to waits by design.

use crate::sink::TraceSnapshot;
use crate::span::{Layer, SpanId, SpanRecord};
use std::fmt::Write as _;

/// Attribution buckets for one pipeline stage, in virtual microseconds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageBuckets {
    pub compute_us: u64,
    pub queue_wait_us: u64,
    pub provider_wait_us: u64,
    pub backpressure_us: u64,
    pub retry_backoff_us: u64,
}

impl StageBuckets {
    /// Sum of all buckets; by construction equals the stage window.
    pub fn total_us(&self) -> u64 {
        self.compute_us
            + self.queue_wait_us
            + self.provider_wait_us
            + self.backpressure_us
            + self.retry_backoff_us
    }
}

/// One stage of the profiled plan.
#[derive(Clone, Debug, PartialEq)]
pub struct StageProfile {
    /// Position in the physical plan (creation order of the op spans).
    pub index: usize,
    /// Span name without the `op:` prefix.
    pub name: String,
    pub span_id: SpanId,
    /// Virtual time from stage start to the stage thread finishing.
    pub window_us: u64,
    pub buckets: StageBuckets,
    /// Worker-pool utilization (busy / (workers × window)), if recorded.
    pub utilization: Option<f64>,
    /// Attributed busy seconds (matches `OperatorStats::time_secs`).
    pub time_secs: f64,
    /// Busy seconds before the first emitted batch (pipeline-fill delay).
    pub startup_secs: f64,
    pub llm_calls: u64,
    pub cost_usd: f64,
}

/// A profiled plan execution: per-stage attribution plus the critical
/// path through the span tree.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanProfile {
    /// Wall (virtual) duration of the plan span, µs.
    pub wall_us: u64,
    pub stages: Vec<StageProfile>,
    /// Span ids from the plan root down to the last-finishing leaf.
    pub critical_path: Vec<SpanId>,
}

fn attr_f64(span: &SpanRecord, key: &str) -> Option<f64> {
    span.attrs.get(key).and_then(|v| v.parse().ok())
}

fn attr_u64(span: &SpanRecord, key: &str) -> Option<u64> {
    span.attrs.get(key).and_then(|v| v.parse().ok())
}

/// Walk from `root` to the leaf that finishes last, always descending
/// into the child with the greatest end timestamp (open spans sort last;
/// ties break toward the later-starting, later-created child). The
/// returned path includes `root` itself.
pub fn critical_path(snap: &TraceSnapshot, root: &SpanId) -> Vec<SpanId> {
    let mut path = vec![root.clone()];
    let mut cur = root.clone();
    loop {
        let children = snap.children(&cur);
        let mut best: Option<&SpanRecord> = None;
        for child in children {
            let better = match best {
                None => true,
                Some(b) => {
                    let (ce, be) = (
                        child.end_us.unwrap_or(u64::MAX),
                        b.end_us.unwrap_or(u64::MAX),
                    );
                    ce > be || (ce == be && child.start_us >= b.start_us)
                }
            };
            if better {
                best = Some(child);
            }
        }
        match best {
            Some(child) => {
                path.push(child.id.clone());
                cur = child.id.clone();
            }
            None => return path,
        }
    }
}

fn build_stage(index: usize, span: &SpanRecord) -> StageProfile {
    let window_us = attr_u64(span, "prof_window_us").unwrap_or_else(|| span.duration_us());
    let mut queue = attr_u64(span, "prof_queue_wait_us").unwrap_or(0);
    let mut provider = attr_u64(span, "prof_provider_wait_us").unwrap_or(0);
    let mut backpressure = attr_u64(span, "prof_backpressure_us").unwrap_or(0);
    let mut retry = attr_u64(span, "prof_retry_backoff_us").unwrap_or(0);

    // Normalize: pooled stages sum waits over workers, which can exceed
    // the wall window. Scale proportionally so buckets fit the window
    // (flooring keeps the scaled sum ≤ window; the remainder is compute).
    let wait_sum = queue + provider + backpressure + retry;
    if wait_sum > window_us && wait_sum > 0 {
        let scale = window_us as f64 / wait_sum as f64;
        queue = (queue as f64 * scale) as u64;
        provider = (provider as f64 * scale) as u64;
        backpressure = (backpressure as f64 * scale) as u64;
        retry = (retry as f64 * scale) as u64;
    }
    let compute = window_us.saturating_sub(queue + provider + backpressure + retry);

    StageProfile {
        index,
        name: span
            .name
            .strip_prefix("op:")
            .unwrap_or(&span.name)
            .to_string(),
        span_id: span.id.clone(),
        window_us,
        buckets: StageBuckets {
            compute_us: compute,
            queue_wait_us: queue,
            provider_wait_us: provider,
            backpressure_us: backpressure,
            retry_backoff_us: retry,
        },
        utilization: attr_f64(span, "prof_utilization"),
        time_secs: attr_f64(span, "time_secs").unwrap_or(0.0),
        startup_secs: attr_f64(span, "prof_startup_secs").unwrap_or(0.0),
        llm_calls: attr_u64(span, "llm_calls").unwrap_or(0),
        cost_usd: attr_f64(span, "cost_usd").unwrap_or(0.0),
    }
}

/// Profile the most recent `execute_plan` span in the snapshot. Returns
/// `None` when no executor plan span exists.
pub fn profile_plan(snap: &TraceSnapshot) -> Option<PlanProfile> {
    let plan_span = snap
        .spans
        .iter()
        .rfind(|s| s.layer == Layer::Executor && s.name == "execute_plan")?;
    let stages = snap
        .children(&plan_span.id)
        .into_iter()
        .filter(|s| s.name.starts_with("op:"))
        .enumerate()
        .map(|(i, s)| build_stage(i, s))
        .collect();
    Some(PlanProfile {
        wall_us: plan_span.duration_us(),
        stages,
        critical_path: critical_path(snap, &plan_span.id),
    })
}

impl PlanProfile {
    /// Index of the bottleneck stage under the same bottleneck+fill model
    /// as `ExecutionStats::finalize_pipelined`: the stage maximizing
    /// `fill_i + time_secs_i`, where `fill_i` is the accumulated startup
    /// of upstream stages. Returns `None` for an empty profile.
    pub fn bottleneck(&self) -> Option<usize> {
        let mut fill = 0.0f64;
        let mut best: Option<(usize, f64)> = None;
        for stage in &self.stages {
            let end = fill + stage.time_secs;
            if best.is_none_or(|(_, b)| end > b) {
                best = Some((stage.index, end));
            }
            fill += stage.startup_secs;
        }
        best.map(|(i, _)| i)
    }

    /// The modelled pipelined wall time, `max_i(fill_i + time_secs_i)` —
    /// should reconcile with `ExecutionStats::total_time_secs`.
    pub fn modelled_total_secs(&self) -> f64 {
        let mut fill = 0.0f64;
        let mut total = 0.0f64;
        for stage in &self.stages {
            total = total.max(fill + stage.time_secs);
            fill += stage.startup_secs;
        }
        total
    }

    /// Render the attribution table. Bucket columns show seconds and the
    /// share of the stage's own window.
    pub fn render(&self) -> String {
        fn cell(us: u64, window: u64) -> String {
            let pct = if window == 0 {
                0.0
            } else {
                100.0 * us as f64 / window as f64
            };
            format!("{:.2}s {:>3.0}%", us as f64 / 1e6, pct)
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wall (virtual): {:.2}s  stages: {}",
            self.wall_us as f64 / 1e6,
            self.stages.len()
        );
        let _ = writeln!(
            out,
            "{:<30} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>5}",
            "stage", "window", "compute", "queue", "provider", "backpr", "retry", "util"
        );
        let bottleneck = self.bottleneck();
        for s in &self.stages {
            let marker = if bottleneck == Some(s.index) { "*" } else { "" };
            let _ = writeln!(
                out,
                "{:<30} {:>9.2}s {:>12} {:>12} {:>12} {:>12} {:>12} {:>5}",
                format!("{}{}{}", s.index, marker, truncate(&s.name, 27)),
                s.window_us as f64 / 1e6,
                cell(s.buckets.compute_us, s.window_us),
                cell(s.buckets.queue_wait_us, s.window_us),
                cell(s.buckets.provider_wait_us, s.window_us),
                cell(s.buckets.backpressure_us, s.window_us),
                cell(s.buckets.retry_backoff_us, s.window_us),
                s.utilization
                    .map(|u| format!("{:.0}%", u * 100.0))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        if let Some(b) = bottleneck {
            let _ = writeln!(
                out,
                "bottleneck: stage {} ({}) — modelled total {:.2}s",
                b,
                self.stages[b].name,
                self.modelled_total_secs()
            );
        }
        let path: Vec<String> = self.critical_path.iter().map(|id| id.to_string()).collect();
        let _ = writeln!(out, "critical path: {}", path.join(" -> "));
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        format!(" {s}")
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!(" {cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Event;
    use std::collections::BTreeMap;

    fn span(
        id: &[u32],
        parent: Option<&[u32]>,
        name: &str,
        start: u64,
        end: u64,
        attrs: &[(&str, &str)],
    ) -> SpanRecord {
        SpanRecord {
            id: SpanId(id.to_vec()),
            parent: parent.map(|p| SpanId(p.to_vec())),
            layer: Layer::Executor,
            name: name.to_string(),
            start_us: start,
            end_us: Some(end),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn snapshot(spans: Vec<SpanRecord>) -> TraceSnapshot {
        TraceSnapshot {
            spans,
            events: Vec::<Event>::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    #[test]
    fn critical_path_follows_latest_ending_child() {
        let snap = snapshot(vec![
            span(&[1], None, "execute_plan", 0, 100, &[]),
            span(&[1, 1], Some(&[1]), "op:fast", 0, 40, &[]),
            span(&[1, 2], Some(&[1]), "op:slow", 0, 90, &[]),
            span(&[1, 2, 1], Some(&[1, 2]), "llm", 10, 80, &[]),
            span(&[1, 2, 2], Some(&[1, 2]), "llm", 10, 85, &[]),
        ]);
        let path = critical_path(&snap, &SpanId(vec![1]));
        let rendered: Vec<String> = path.iter().map(|p| p.to_string()).collect();
        assert_eq!(rendered, vec!["1", "1.2", "1.2.2"]);
    }

    #[test]
    fn critical_path_prefers_open_spans() {
        let mut open = span(&[1, 1], Some(&[1]), "op:open", 0, 0, &[]);
        open.end_us = None;
        let snap = snapshot(vec![
            span(&[1], None, "execute_plan", 0, 100, &[]),
            open,
            span(&[1, 2], Some(&[1]), "op:closed", 0, 99, &[]),
        ]);
        let path = critical_path(&snap, &SpanId(vec![1]));
        assert_eq!(path[1], SpanId(vec![1, 1]));
    }

    #[test]
    fn attribution_buckets_sum_to_window() {
        let snap = snapshot(vec![
            span(&[1], None, "execute_plan", 0, 1_000_000, &[]),
            span(
                &[1, 1],
                Some(&[1]),
                "op:LLMFilter[gpt-4o]",
                0,
                1_000_000,
                &[
                    ("prof_window_us", "1000000"),
                    ("prof_queue_wait_us", "100000"),
                    ("prof_provider_wait_us", "600000"),
                    ("prof_backpressure_us", "50000"),
                    ("prof_retry_backoff_us", "25000"),
                    ("time_secs", "0.9"),
                    ("llm_calls", "10"),
                    ("cost_usd", "0.5"),
                ],
            ),
        ]);
        let profile = profile_plan(&snap).expect("profile");
        assert_eq!(profile.wall_us, 1_000_000);
        let s = &profile.stages[0];
        assert_eq!(s.name, "LLMFilter[gpt-4o]");
        assert_eq!(s.buckets.total_us(), s.window_us);
        assert_eq!(s.buckets.compute_us, 225_000);
        assert_eq!(s.llm_calls, 10);
    }

    #[test]
    fn oversubscribed_waits_scale_down_to_window() {
        // A pooled stage summing waits over 4 workers: raw waits are 4x
        // the window. Buckets must still sum to the window exactly.
        let snap = snapshot(vec![
            span(&[1], None, "execute_plan", 0, 500_000, &[]),
            span(
                &[1, 1],
                Some(&[1]),
                "op:x",
                0,
                500_000,
                &[
                    ("prof_window_us", "500000"),
                    ("prof_queue_wait_us", "1000000"),
                    ("prof_provider_wait_us", "1000000"),
                ],
            ),
        ]);
        let s = &profile_plan(&snap).unwrap().stages[0];
        assert_eq!(s.buckets.total_us(), 500_000);
        assert_eq!(s.buckets.compute_us, 0);
        assert_eq!(s.buckets.queue_wait_us, 250_000);
    }

    #[test]
    fn bottleneck_matches_fill_model() {
        // Mirror stats.rs's finalize_pipelined test: fills [0, 2, 8],
        // times [0, 10, 8] → stage 1 bottleneck, total 10s.
        let mk = |idx: u32, time: &str, startup: &str| {
            span(
                &[1, idx],
                Some(&[1]),
                "op:x",
                0,
                100,
                &[("time_secs", time), ("prof_startup_secs", startup)],
            )
        };
        let snap = snapshot(vec![
            span(&[1], None, "execute_plan", 0, 100, &[]),
            mk(1, "0.0", "0.0"),
            mk(2, "10.0", "2.0"),
            mk(3, "8.0", "8.0"),
        ]);
        let profile = profile_plan(&snap).unwrap();
        assert_eq!(profile.bottleneck(), Some(1));
        assert!((profile.modelled_total_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn profiles_latest_plan_and_renders() {
        let snap = snapshot(vec![
            span(&[1], None, "execute_plan", 0, 10, &[]),
            span(&[1, 1], Some(&[1]), "op:old", 0, 10, &[]),
            span(&[2], None, "execute_plan", 0, 2_000_000, &[]),
            span(
                &[2, 1],
                Some(&[2]),
                "op:LLMConvert[mixtral]",
                0,
                2_000_000,
                &[
                    ("prof_window_us", "2000000"),
                    ("prof_provider_wait_us", "1500000"),
                    ("time_secs", "1.5"),
                ],
            ),
        ]);
        let profile = profile_plan(&snap).unwrap();
        assert_eq!(profile.wall_us, 2_000_000);
        assert_eq!(profile.stages.len(), 1);
        let text = profile.render();
        assert!(text.contains("LLMConvert[mixtral]"), "{text}");
        assert!(text.contains("bottleneck: stage 0"), "{text}");
        assert!(text.contains("critical path: 2 -> 2.1"), "{text}");
    }

    #[test]
    fn no_plan_span_yields_none() {
        assert!(profile_plan(&snapshot(vec![])).is_none());
    }
}
