//! Span, event, and layer types.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Which layer of the stack emitted a span or event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Layer {
    /// A palimpchat session turn.
    Chat,
    /// The archytas ReAct loop (thought / act / observe).
    Agent,
    /// Plan enumeration, Pareto pruning, sentinel calibration.
    Optimizer,
    /// Physical plan execution (per-operator).
    Executor,
    /// LLM substrate calls (completions, embeddings, cache).
    Llm,
    /// Vector index builds and probes.
    Vector,
}

impl Layer {
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Chat => "chat",
            Layer::Agent => "agent",
            Layer::Optimizer => "optimizer",
            Layer::Executor => "executor",
            Layer::Llm => "llm",
            Layer::Vector => "vector",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Hierarchical span identifier: `1.2.3` is the third child of the
/// second child of the first root span. Lexicographic-by-component order
/// equals tree (pre-order) creation order within a parent.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpanId(pub Vec<u32>);

impl SpanId {
    pub fn root(n: u32) -> Self {
        SpanId(vec![n])
    }

    pub fn child(&self, n: u32) -> Self {
        let mut path = self.0.clone();
        path.push(n);
        SpanId(path)
    }

    pub fn parent(&self) -> Option<SpanId> {
        if self.0.len() > 1 {
            Some(SpanId(self.0[..self.0.len() - 1].to_vec()))
        } else {
            None
        }
    }

    pub fn depth(&self) -> usize {
        self.0.len()
    }

    pub fn is_root(&self) -> bool {
        self.0.len() == 1
    }

    /// Is `self` an ancestor of (or equal to) `other`?
    pub fn contains(&self, other: &SpanId) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, part) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{part}")?;
        }
        Ok(())
    }
}

/// A completed or in-flight span.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub layer: Layer,
    pub name: String,
    pub start_us: u64,
    /// `None` while the span is still open.
    pub end_us: Option<u64>,
    pub attrs: BTreeMap<String, String>,
}

impl SpanRecord {
    /// Duration in microseconds; open spans report 0.
    pub fn duration_us(&self) -> u64 {
        self.end_us
            .map(|e| e.saturating_sub(self.start_us))
            .unwrap_or(0)
    }
}

/// A point-in-time mark attached to the enclosing span.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// The span this event occurred under (`None` = outside any span).
    pub span: Option<SpanId>,
    pub layer: Layer,
    pub name: String,
    pub at_us: u64,
    pub attrs: BTreeMap<String, String>,
}

/// RAII handle for an open span: records the end timestamp (and pops the
/// scope stack for structural spans) when dropped or `finish`ed.
pub struct SpanGuard {
    pub(crate) tracer: crate::Tracer,
    pub(crate) id: SpanId,
    pub(crate) pushed: bool,
    pub(crate) done: bool,
}

impl SpanGuard {
    pub fn id(&self) -> &SpanId {
        &self.id
    }

    /// Attach or overwrite a string attribute on this span.
    pub fn set_attr(&self, key: impl Into<String>, value: impl Into<String>) {
        self.tracer
            .set_span_attr(&self.id, key.into(), value.into());
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if !self.done {
            self.done = true;
            self.tracer.end_span(&self.id, self.pushed);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish_inner();
    }
}
