//! Standard-format exporters: Prometheus text exposition for
//! counters/histograms and Chrome trace-event JSON (loadable in Perfetto
//! or `chrome://tracing`) for spans and events.

use crate::sink::TraceSnapshot;
use crate::span::SpanId;
use serde_json::{json, Value};
use std::fmt::Write as _;

/// Sanitize a metric name for Prometheus: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
/// Dots (our namespace separator) become underscores.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render counters and histograms in the Prometheus text exposition
/// format (version 0.0.4). Counters become `counter` metrics; histograms
/// become `summary` metrics with p50/p95/p99 quantile lines (quantiles
/// are omitted for summaries parsed from sample-free legacy exports).
pub fn to_prometheus(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let metric = prom_name(name);
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, h) in &snap.histograms {
        let metric = prom_name(name);
        let _ = writeln!(out, "# TYPE {metric} summary");
        if !h.samples.is_empty() {
            for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                let _ = writeln!(out, "{metric}{{quantile=\"{q}\"}} {v}");
            }
        }
        let _ = writeln!(out, "{metric}_sum {}", h.sum);
        let _ = writeln!(out, "{metric}_count {}", h.count);
    }
    out
}

/// Lane assignment for the Chrome trace: the plan span and everything
/// structural stays on tid 0; each executor `op:*` stage gets its own
/// tid (1-based, in creation order) so Perfetto renders one lane per
/// pipeline stage. Descendants inherit their stage's lane.
fn chrome_tid(snap: &TraceSnapshot, id: &SpanId) -> u32 {
    let mut stage_roots: Vec<&SpanId> = Vec::new();
    for s in &snap.spans {
        if s.name.starts_with("op:") {
            stage_roots.push(&s.id);
        }
    }
    for (i, root) in stage_roots.iter().enumerate() {
        if root.contains(id) {
            return i as u32 + 1;
        }
    }
    0
}

/// Export the snapshot as Chrome trace-event JSON: closed spans as `X`
/// (complete) events, open spans as `B` (begin) events, point events as
/// `i` (instant), plus `M` metadata naming the per-stage lanes.
pub fn to_chrome_trace(snap: &TraceSnapshot) -> String {
    let mut events: Vec<Value> = Vec::new();
    events.push(json!({
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 0,
        "args": {"name": "palimpchat"}
    }));
    let mut named_lanes: Vec<(u32, String)> = vec![(0, "plan".to_string())];
    for s in &snap.spans {
        if s.name.starts_with("op:") {
            let tid = chrome_tid(snap, &s.id);
            named_lanes.push((tid, s.name.clone()));
        }
    }
    for (tid, name) in named_lanes {
        events.push(json!({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": name}
        }));
    }
    for s in &snap.spans {
        let tid = chrome_tid(snap, &s.id);
        let mut args = serde_json::Map::new();
        args.insert("span_id".to_string(), Value::String(s.id.to_string()));
        for (k, v) in &s.attrs {
            args.insert(k.clone(), Value::String(v.clone()));
        }
        match s.end_us {
            Some(end) => events.push(json!({
                "name": s.name,
                "cat": s.layer.name(),
                "ph": "X",
                "ts": s.start_us,
                "dur": end.saturating_sub(s.start_us),
                "pid": 1,
                "tid": tid,
                "args": Value::Object(args)
            })),
            None => events.push(json!({
                "name": s.name,
                "cat": s.layer.name(),
                "ph": "B",
                "ts": s.start_us,
                "pid": 1,
                "tid": tid,
                "args": Value::Object(args)
            })),
        }
    }
    for e in &snap.events {
        let tid = e.span.as_ref().map_or(0, |id| chrome_tid(snap, id));
        let mut args = serde_json::Map::new();
        for (k, v) in &e.attrs {
            args.insert(k.clone(), Value::String(v.clone()));
        }
        events.push(json!({
            "name": e.name,
            "cat": e.layer.name(),
            "ph": "i",
            "ts": e.at_us,
            "pid": 1,
            "tid": tid,
            "s": "t",
            "args": Value::Object(args)
        }));
    }
    let doc = json!({
        "traceEvents": Value::Array(events),
        "displayTimeUnit": "ms"
    });
    serde_json::to_string(&doc).expect("chrome trace json")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrozenClock, Layer, Tracer};
    use std::sync::Arc;

    fn sample_tracer() -> Tracer {
        let t = Tracer::new(Arc::new(FrozenClock(5_000)));
        {
            let plan = t.span(Layer::Executor, "execute_plan");
            plan.set_attr("plan", "scan -> filter");
            let op = t.leaf_span(Layer::Executor, "op:LLMFilter[gpt-4o]");
            op.set_attr("llm_calls", "7");
            t.event(Layer::Llm, "cache_miss", &[("model", "gpt-4o".to_string())]);
        }
        t.incr("llm.calls", 7);
        t.observe("llm.latency_us", 120.0);
        t.observe("llm.latency_us", 480.0);
        t
    }

    #[test]
    fn prometheus_exposition_has_types_and_quantiles() {
        let text = to_prometheus(&sample_tracer().snapshot());
        assert!(text.contains("# TYPE llm_calls counter"), "{text}");
        assert!(text.contains("llm_calls 7"), "{text}");
        assert!(text.contains("# TYPE llm_latency_us summary"), "{text}");
        assert!(
            text.contains("llm_latency_us{quantile=\"0.95\"} 480"),
            "{text}"
        );
        assert!(text.contains("llm_latency_us_count 2"), "{text}");
        assert!(text.contains("llm_latency_us_sum 600"), "{text}");
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("llm.cache.hits"), "llm_cache_hits");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name("a-b c"), "a_b_c");
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let out = to_chrome_trace(&sample_tracer().snapshot());
        let doc: Value = serde_json::from_str(&out).expect("valid json");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // Two spans (X), one instant (i), plus metadata (M).
        let xs: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        for e in &xs {
            for key in ["name", "cat", "ts", "dur", "pid", "tid"] {
                assert!(e.get(key).is_some(), "X event missing {key}: {e:?}");
            }
        }
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i")));
        // The op span rides its own lane (tid 1); the plan span lane 0.
        let op = xs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("op:LLMFilter[gpt-4o]"))
            .unwrap();
        assert_eq!(op.get("tid").and_then(|t| t.as_u64()), Some(1));
        let plan = xs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("execute_plan"))
            .unwrap();
        assert_eq!(plan.get("tid").and_then(|t| t.as_u64()), Some(0));
    }

    #[test]
    fn open_spans_export_as_begin_events() {
        let t = Tracer::new(Arc::new(FrozenClock(0)));
        let _open = t.span(Layer::Chat, "turn");
        let out = to_chrome_trace(&t.snapshot());
        let doc: Value = serde_json::from_str(&out).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B")));
    }
}
