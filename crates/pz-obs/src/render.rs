//! Text tree renderer for trace snapshots (the REPL `:spans` view).

use crate::sink::TraceSnapshot;
use crate::span::SpanRecord;
use std::fmt::Write;

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}µs")
    }
}

fn render_span(snap: &TraceSnapshot, span: &SpanRecord, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let dur = match span.end_us {
        Some(_) => fmt_us(span.duration_us()),
        None => "open".to_string(),
    };
    let mut attrs = String::new();
    for (k, v) in &span.attrs {
        let _ = write!(attrs, " {k}={v}");
    }
    // On deep trees the useful number is where time was spent *in this
    // span itself* vs delegated to children; show both when they differ.
    let mut timing = String::new();
    if span.end_us.is_some() {
        let child = snap.child_time_us(&span.id);
        if child > 0 {
            let _ = write!(
                timing,
                " (self {} / child {})",
                fmt_us(snap.self_time_us(&span.id)),
                fmt_us(child)
            );
        }
    }
    let _ = writeln!(
        out,
        "{pad}[{}] {} #{} @{} +{dur}{timing}{attrs}",
        span.layer,
        span.name,
        span.id,
        fmt_us(span.start_us),
    );
    for event in snap.events_for(&span.id) {
        let mut eattrs = String::new();
        for (k, v) in &event.attrs {
            let _ = write!(eattrs, " {k}={v}");
        }
        let _ = writeln!(
            out,
            "{pad}  · {} @{}{eattrs}",
            event.name,
            fmt_us(event.at_us)
        );
    }
    for child in snap.children(&span.id) {
        render_span(snap, child, indent + 1, out);
    }
}

/// Render the whole snapshot as an indented text tree: spans with their
/// events and children, then counters and histograms.
pub fn render_tree(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    if snap.spans.is_empty() {
        out.push_str("(no spans recorded)\n");
    }
    for root in snap.roots() {
        render_span(snap, root, 0, &mut out);
    }
    // Events that fired outside any span.
    for event in snap.events.iter().filter(|e| e.span.is_none()) {
        let _ = writeln!(out, "· {} @{}", event.name, fmt_us(event.at_us));
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &snap.histograms {
            let mut quantiles = String::new();
            if !h.samples.is_empty() {
                let _ = write!(
                    quantiles,
                    " p50={:.2} p95={:.2} p99={:.2}",
                    h.p50(),
                    h.p95(),
                    h.p99()
                );
            }
            let _ = writeln!(
                out,
                "  {name}: n={} mean={:.2} min={:.2} max={:.2}{quantiles}",
                h.count,
                h.mean(),
                h.min,
                h.max
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrozenClock, Layer, Tracer};
    use std::sync::Arc;

    #[test]
    fn renders_nested_tree_with_events_and_metrics() {
        let t = Tracer::new(Arc::new(FrozenClock(2_500)));
        {
            let turn = t.span(Layer::Chat, "turn");
            turn.set_attr("utterance", "load papers");
            let _op = t.span(Layer::Executor, "op:scan");
            t.event(Layer::Llm, "cache_miss", &[]);
        }
        t.incr("vector.probes", 4);
        t.observe("llm.latency_us", 1_500.0);

        let text = render_tree(&t.snapshot());
        assert!(text.contains("[chat] turn #1"));
        assert!(text.contains("utterance=load papers"));
        assert!(text.contains("  [executor] op:scan #1.1"));
        assert!(text.contains("· cache_miss"));
        assert!(text.contains("vector.probes = 4"));
        assert!(text.contains("llm.latency_us: n=1"));
        assert!(text.contains("p95=1500.00"));
    }

    #[test]
    fn shows_self_vs_child_time_on_nested_spans() {
        struct Steps(std::sync::atomic::AtomicU64);
        impl crate::TraceClock for Steps {
            fn now_micros(&self) -> u64 {
                self.0.fetch_add(1_000, std::sync::atomic::Ordering::SeqCst)
            }
        }
        let t = Tracer::new(Arc::new(Steps(Default::default())));
        {
            let _turn = t.span(Layer::Chat, "turn"); // @0ms .. @3ms
            let inner = t.span(Layer::Executor, "op"); // @1ms .. @2ms
            inner.finish();
        }
        let text = render_tree(&t.snapshot());
        assert!(text.contains("(self 2.0ms / child 1.0ms)"));
        // Leaf spans (no children) stay unannotated.
        assert!(!text.contains("op #1.1 @1.0ms +1.0ms (self"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let t = Tracer::new(Arc::new(FrozenClock(0)));
        assert!(render_tree(&t.snapshot()).contains("no spans"));
    }
}
