//! Text tree renderer for trace snapshots (the REPL `:spans` view).

use crate::sink::TraceSnapshot;
use crate::span::SpanRecord;
use std::fmt::Write;

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}µs")
    }
}

fn render_span(snap: &TraceSnapshot, span: &SpanRecord, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let dur = match span.end_us {
        Some(_) => fmt_us(span.duration_us()),
        None => "open".to_string(),
    };
    let mut attrs = String::new();
    for (k, v) in &span.attrs {
        let _ = write!(attrs, " {k}={v}");
    }
    let _ = writeln!(
        out,
        "{pad}[{}] {} #{} @{} +{dur}{attrs}",
        span.layer,
        span.name,
        span.id,
        fmt_us(span.start_us),
    );
    for event in snap.events_for(&span.id) {
        let mut eattrs = String::new();
        for (k, v) in &event.attrs {
            let _ = write!(eattrs, " {k}={v}");
        }
        let _ = writeln!(
            out,
            "{pad}  · {} @{}{eattrs}",
            event.name,
            fmt_us(event.at_us)
        );
    }
    for child in snap.children(&span.id) {
        render_span(snap, child, indent + 1, out);
    }
}

/// Render the whole snapshot as an indented text tree: spans with their
/// events and children, then counters and histograms.
pub fn render_tree(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    if snap.spans.is_empty() {
        out.push_str("(no spans recorded)\n");
    }
    for root in snap.roots() {
        render_span(snap, root, 0, &mut out);
    }
    // Events that fired outside any span.
    for event in snap.events.iter().filter(|e| e.span.is_none()) {
        let _ = writeln!(out, "· {} @{}", event.name, fmt_us(event.at_us));
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {name}: n={} mean={:.2} min={:.2} max={:.2}",
                h.count,
                h.mean(),
                h.min,
                h.max
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrozenClock, Layer, Tracer};
    use std::sync::Arc;

    #[test]
    fn renders_nested_tree_with_events_and_metrics() {
        let t = Tracer::new(Arc::new(FrozenClock(2_500)));
        {
            let turn = t.span(Layer::Chat, "turn");
            turn.set_attr("utterance", "load papers");
            let _op = t.span(Layer::Executor, "op:scan");
            t.event(Layer::Llm, "cache_miss", &[]);
        }
        t.incr("vector.probes", 4);
        t.observe("llm.latency_us", 1_500.0);

        let text = render_tree(&t.snapshot());
        assert!(text.contains("[chat] turn #1"));
        assert!(text.contains("utterance=load papers"));
        assert!(text.contains("  [executor] op:scan #1.1"));
        assert!(text.contains("· cache_miss"));
        assert!(text.contains("vector.probes = 4"));
        assert!(text.contains("llm.latency_us: n=1"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let t = Tracer::new(Arc::new(FrozenClock(0)));
        assert!(render_tree(&t.snapshot()).contains("no spans"));
    }
}
