//! The thread-safe in-memory trace sink and its snapshot/export types.

use crate::span::{Event, Layer, SpanGuard, SpanId, SpanRecord};
use crate::TraceClock;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Running summary of an observed distribution. Keeps the moments
/// (count/sum/min/max) plus the raw samples, so percentile queries
/// (p50/p95/p99 — serving SLOs) are exact rather than sketched. The
/// sample vector serializes only when non-empty, so pre-quantile JSONL
/// exports still parse.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub samples: Vec<f64>,
}

impl HistogramSummary {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.samples.push(value);
    }

    fn new(value: f64) -> Self {
        Self {
            count: 1,
            sum: value,
            min: value,
            max: value,
            samples: vec![value],
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank quantile over the recorded samples (`q` in `[0, 1]`).
    /// Returns 0.0 when no samples were kept (e.g. a summary parsed from
    /// an old JSONL export that predates sample retention).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank.min(sorted.len()) - 1]
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[derive(Default)]
struct TraceState {
    spans: Vec<SpanRecord>,
    /// span id → index into `spans`.
    index: HashMap<SpanId, usize>,
    events: Vec<Event>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
    /// Stack of open *structural* spans; the top is the parent for
    /// whatever starts next.
    scope: Vec<SpanId>,
    root_count: u32,
    child_count: HashMap<SpanId, u32>,
}

impl TraceState {
    fn alloc_id(&mut self, parent: Option<&SpanId>) -> SpanId {
        match parent {
            None => {
                self.root_count += 1;
                SpanId::root(self.root_count)
            }
            Some(p) => {
                let n = self.child_count.entry(p.clone()).or_insert(0);
                *n += 1;
                p.child(*n)
            }
        }
    }
}

/// Cloneable handle to a shared trace sink. All palimpchat layers hold
/// the same `Tracer`, so their spans land on one timeline.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

struct Inner {
    clock: Arc<dyn TraceClock>,
    state: Mutex<TraceState>,
    /// When false (the default) the executor skips all profiling gauges
    /// (queue depth, wait attribution, utilization), keeping default-run
    /// traces byte-identical to pre-profiler builds.
    profiling: AtomicBool,
}

impl Tracer {
    pub fn new(clock: Arc<dyn TraceClock>) -> Self {
        Self {
            inner: Arc::new(Inner {
                clock,
                state: Mutex::new(TraceState::default()),
                profiling: AtomicBool::new(false),
            }),
        }
    }

    pub fn now_micros(&self) -> u64 {
        self.inner.clock.now_micros()
    }

    /// Enable or disable profiling gauges (off by default). Instrumented
    /// code checks [`Tracer::profiling_enabled`] before recording any
    /// gauge, so a disabled profiler costs one relaxed atomic load.
    pub fn set_profiling(&self, on: bool) {
        self.inner.profiling.store(on, Ordering::Relaxed);
    }

    /// Whether profiling gauges should be recorded.
    pub fn profiling_enabled(&self) -> bool {
        self.inner.profiling.load(Ordering::Relaxed)
    }

    fn open_span(&self, layer: Layer, name: &str, push: bool) -> SpanGuard {
        let start = self.now_micros();
        let mut st = self.inner.state.lock();
        let parent = st.scope.last().cloned();
        let id = st.alloc_id(parent.as_ref());
        let record = SpanRecord {
            id: id.clone(),
            parent,
            layer,
            name: name.to_string(),
            start_us: start,
            end_us: None,
            attrs: BTreeMap::new(),
        };
        let idx = st.spans.len();
        st.index.insert(id.clone(), idx);
        st.spans.push(record);
        if push {
            st.scope.push(id.clone());
        }
        SpanGuard {
            tracer: self.clone(),
            id,
            pushed: push,
            done: false,
        }
    }

    /// Open a *structural* span: it becomes the parent of everything
    /// started (from any thread) until its guard drops. Use for chat
    /// turns, agent phases, optimizer runs, and executor operators.
    pub fn span(&self, layer: Layer, name: &str) -> SpanGuard {
        self.open_span(layer, name, true)
    }

    /// Open a *leaf* span: parented under the current scope but not
    /// pushed onto it. Safe to open concurrently from worker threads
    /// (e.g. per-LLM-call spans under one operator span).
    pub fn leaf_span(&self, layer: Layer, name: &str) -> SpanGuard {
        self.open_span(layer, name, false)
    }

    pub(crate) fn end_span(&self, id: &SpanId, pushed: bool) {
        let end = self.now_micros();
        let mut st = self.inner.state.lock();
        if let Some(&i) = st.index.get(id) {
            st.spans[i].end_us = Some(end);
        }
        if pushed {
            // Pop this span (and anything accidentally left above it).
            while let Some(top) = st.scope.pop() {
                if top == *id {
                    break;
                }
            }
        }
    }

    pub(crate) fn set_span_attr(&self, id: &SpanId, key: String, value: String) {
        let mut st = self.inner.state.lock();
        if let Some(&i) = st.index.get(id) {
            st.spans[i].attrs.insert(key, value);
        }
    }

    /// Record a point-in-time event under the current scope.
    pub fn event(&self, layer: Layer, name: &str, attrs: &[(&str, String)]) {
        let at = self.now_micros();
        let mut st = self.inner.state.lock();
        let span = st.scope.last().cloned();
        st.events.push(Event {
            span,
            layer,
            name: name.to_string(),
            at_us: at,
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Add `by` to a named monotonic counter.
    pub fn incr(&self, name: &str, by: u64) {
        let mut st = self.inner.state.lock();
        *st.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .state
            .lock()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Record one observation into a named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut st = self.inner.state.lock();
        match st.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                st.histograms
                    .insert(name.to_string(), HistogramSummary::new(value));
            }
        }
    }

    /// Number of spans recorded so far (cheap liveness probe).
    pub fn span_count(&self) -> usize {
        self.inner.state.lock().spans.len()
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        let st = self.inner.state.lock();
        TraceSnapshot {
            spans: st.spans.clone(),
            events: st.events.clone(),
            counters: st.counters.clone(),
            histograms: st.histograms.clone(),
        }
    }

    /// Drop all recorded data (scope stack included).
    pub fn reset(&self) {
        *self.inner.state.lock() = TraceState::default();
    }
}

/// One line of a JSONL trace export.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum TraceLine {
    Span(SpanRecord),
    Event(Event),
    Counter {
        name: String,
        value: u64,
    },
    Histogram {
        name: String,
        summary: HistogramSummary,
    },
}

/// An immutable copy of a trace, exportable as JSON Lines.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSnapshot {
    pub spans: Vec<SpanRecord>,
    pub events: Vec<Event>,
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl TraceSnapshot {
    /// Serialize as JSON Lines: one span/event/counter/histogram per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&serde_json::to_string(&TraceLine::Span(s.clone())).expect("span json"));
            out.push('\n');
        }
        for e in &self.events {
            out.push_str(&serde_json::to_string(&TraceLine::Event(e.clone())).expect("event json"));
            out.push('\n');
        }
        for (name, value) in &self.counters {
            out.push_str(
                &serde_json::to_string(&TraceLine::Counter {
                    name: name.clone(),
                    value: *value,
                })
                .expect("counter json"),
            );
            out.push('\n');
        }
        for (name, summary) in &self.histograms {
            out.push_str(
                &serde_json::to_string(&TraceLine::Histogram {
                    name: name.clone(),
                    summary: summary.clone(),
                })
                .expect("histogram json"),
            );
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL export back into a snapshot.
    pub fn from_jsonl(text: &str) -> Result<Self, serde_json::Error> {
        let mut snap = TraceSnapshot::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match serde_json::from_str::<TraceLine>(line)? {
                TraceLine::Span(s) => snap.spans.push(s),
                TraceLine::Event(e) => snap.events.push(e),
                TraceLine::Counter { name, value } => {
                    snap.counters.insert(name, value);
                }
                TraceLine::Histogram { name, summary } => {
                    snap.histograms.insert(name, summary);
                }
            }
        }
        Ok(snap)
    }

    /// All spans from one layer, in creation order.
    pub fn spans_in_layer(&self, layer: Layer) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.layer == layer).collect()
    }

    /// Sum a numeric attribute across all spans of a layer (spans
    /// without the attribute contribute 0).
    pub fn attr_sum(&self, layer: Layer, key: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.layer == layer)
            .filter_map(|s| s.attrs.get(key))
            .filter_map(|v| v.parse::<f64>().ok())
            .sum()
    }

    /// Root spans (no parent), in creation order.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent.is_none()).collect()
    }

    /// Direct children of `id`, in creation order.
    pub fn children(&self, id: &SpanId) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.parent.as_ref() == Some(id))
            .collect()
    }

    /// Events attached to `id` (not descendants), in record order.
    pub fn events_for(&self, id: &SpanId) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| e.span.as_ref() == Some(id))
            .collect()
    }

    /// Total trace duration in microseconds: latest closed end minus
    /// earliest start across all spans (0 for an empty or all-open trace).
    pub fn duration_micros(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.start_us).min();
        let end = self.spans.iter().filter_map(|s| s.end_us).max();
        match (start, end) {
            (Some(s), Some(e)) => e.saturating_sub(s),
            _ => 0,
        }
    }

    /// Time a span spent in its direct children, in microseconds.
    /// Clamped to the parent's own duration so malformed traces (child
    /// outliving parent) never report child-time above total.
    pub fn child_time_us(&self, id: &SpanId) -> u64 {
        let total = match self.spans.iter().find(|s| &s.id == id) {
            Some(s) => s.duration_us(),
            None => return 0,
        };
        let children: u64 = self.children(id).iter().map(|c| c.duration_us()).sum();
        children.min(total)
    }

    /// Self-time of a span: its duration minus time covered by direct
    /// children. The quantity the profiler attributes to the span itself.
    pub fn self_time_us(&self, id: &SpanId) -> u64 {
        match self.spans.iter().find(|s| &s.id == id) {
            Some(s) => s.duration_us().saturating_sub(self.child_time_us(id)),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrozenClock;

    fn tracer() -> Tracer {
        Tracer::new(Arc::new(FrozenClock(1_000)))
    }

    #[test]
    fn structural_spans_nest_and_leaves_attach() {
        let t = tracer();
        let outer = t.span(Layer::Chat, "turn");
        let inner = t.span(Layer::Executor, "op:filter");
        let leaf = t.leaf_span(Layer::Llm, "complete");
        leaf.set_attr("model", "sim");
        drop(leaf);
        drop(inner);
        drop(outer);

        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[0].id.to_string(), "1");
        assert_eq!(snap.spans[1].id.to_string(), "1.1");
        assert_eq!(snap.spans[2].id.to_string(), "1.1.1");
        assert_eq!(snap.spans[2].parent, Some(SpanId(vec![1, 1])));
        assert_eq!(snap.spans[2].attrs["model"], "sim");
        assert!(snap.spans.iter().all(|s| s.end_us.is_some()));
    }

    #[test]
    fn leaf_spans_do_not_become_parents() {
        let t = tracer();
        let _outer = t.span(Layer::Executor, "op");
        let leaf = t.leaf_span(Layer::Llm, "call-1");
        let sibling = t.leaf_span(Layer::Llm, "call-2");
        assert_eq!(leaf.id().to_string(), "1.1");
        assert_eq!(sibling.id().to_string(), "1.2");
    }

    #[test]
    fn events_counters_histograms() {
        let t = tracer();
        let _s = t.span(Layer::Llm, "call");
        t.event(Layer::Llm, "cache_hit", &[("model", "sim".to_string())]);
        t.incr("llm.cache.hits", 2);
        t.incr("llm.cache.hits", 1);
        t.observe("llm.latency_us", 10.0);
        t.observe("llm.latency_us", 30.0);

        assert_eq!(t.counter("llm.cache.hits"), 3);
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].span, Some(SpanId(vec![1])));
        let h = &snap.histograms["llm.latency_us"];
        assert_eq!(h.count, 2);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min, 10.0);
        assert_eq!(h.max, 30.0);
    }

    #[test]
    fn histogram_quantiles_nearest_rank() {
        let t = tracer();
        for v in [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0] {
            t.observe("lat", v);
        }
        let snap = t.snapshot();
        let h = &snap.histograms["lat"];
        assert_eq!(h.p50(), 50.0);
        assert_eq!(h.p95(), 100.0);
        assert_eq!(h.p99(), 100.0);
        assert_eq!(h.quantile(0.0), 10.0);
        assert_eq!(h.quantile(1.0), 100.0);

        let single = &Tracer::new(Arc::new(FrozenClock(0)));
        single.observe("one", 7.0);
        assert_eq!(single.snapshot().histograms["one"].p99(), 7.0);
    }

    #[test]
    fn old_jsonl_histograms_without_samples_still_parse() {
        // A line from a pre-quantile export: no `samples` field.
        let line = r#"{"Histogram":{"name":"lat","summary":{"count":2,"sum":40.0,"min":10.0,"max":30.0}}}"#;
        let snap = TraceSnapshot::from_jsonl(line).expect("parse legacy line");
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 2);
        assert!(h.samples.is_empty());
        assert_eq!(h.p95(), 0.0); // no samples retained → quantiles degrade to 0
    }

    #[test]
    fn duration_and_self_time_helpers() {
        struct Steps(std::sync::atomic::AtomicU64);
        impl crate::TraceClock for Steps {
            fn now_micros(&self) -> u64 {
                self.0.fetch_add(100, std::sync::atomic::Ordering::SeqCst)
            }
        }
        let t = Tracer::new(Arc::new(Steps(Default::default())));
        let outer = t.span(Layer::Executor, "outer"); // starts @0
        let inner = t.span(Layer::Llm, "inner"); // starts @100
        inner.finish(); // ends @200
        outer.finish(); // ends @300

        let snap = t.snapshot();
        assert_eq!(snap.duration_micros(), 300);
        let outer_id = SpanId::root(1);
        assert_eq!(snap.child_time_us(&outer_id), 100);
        assert_eq!(snap.self_time_us(&outer_id), 200);
        assert_eq!(snap.self_time_us(&outer_id.child(1)), 100);
    }

    #[test]
    fn profiling_flag_defaults_off_and_toggles() {
        let t = tracer();
        assert!(!t.profiling_enabled());
        t.set_profiling(true);
        assert!(t.profiling_enabled());
        let clone = t.clone();
        assert!(clone.profiling_enabled()); // shared with clones
        t.set_profiling(false);
        assert!(!clone.profiling_enabled());
    }

    #[test]
    fn jsonl_round_trip() {
        let t = tracer();
        {
            let s = t.span(Layer::Optimizer, "optimize");
            s.set_attr("plans", "12");
            t.event(
                Layer::Optimizer,
                "pareto_pruned",
                &[("kept", "3".to_string())],
            );
        }
        t.incr("optimizer.plans_enumerated", 12);
        t.observe("optimizer.plan_cost_usd", 0.25);

        let snap = t.snapshot();
        let jsonl = snap.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        let back = TraceSnapshot::from_jsonl(&jsonl).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn reset_clears_everything() {
        let t = tracer();
        t.span(Layer::Chat, "turn").finish();
        t.incr("c", 1);
        t.reset();
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        // ids restart from 1
        let s = t.span(Layer::Chat, "turn2");
        assert_eq!(s.id().to_string(), "1");
    }
}
