//! # pz-obs — unified tracing & metrics for the palimpchat stack
//!
//! Before this crate the repo had three disconnected telemetry silos —
//! `archytas::ReactTrace`, `pz_core::exec::stats::ExecutionStats`, and
//! `pz_llm::usage::UsageLedger` — with no shared timeline. `pz-obs` puts
//! every layer (chat turn → agent step → optimizer → executor operator →
//! LLM/vector substrate call) onto one trace tree:
//!
//! - **Spans** carry a hierarchical id (`1.2.3`), a [`Layer`], start/end
//!   timestamps, and string attributes.
//! - **Events** are point-in-time marks (cache hits, Pareto pruning, …)
//!   attached to the enclosing span.
//! - **Counters** and **histograms** aggregate high-frequency signals
//!   (vector probes, LLM latencies) without per-call span overhead.
//!
//! Timestamps come from a [`TraceClock`] — in this workspace the
//! simulated `pz_llm::clock::VirtualClock` — so a trace is *bit-for-bit
//! reproducible* across runs: same pipeline, same trace.
//!
//! The sink is an in-memory, thread-safe store (`parking_lot::Mutex`,
//! matching workspace style; no external `tracing` dependency). Traces
//! export as JSON Lines ([`TraceSnapshot::to_jsonl`]) and render as a
//! text tree ([`render_tree`]) for the REPL `:spans` command.
//!
//! ## Span parenting
//!
//! Parenting uses an explicit scope stack rather than thread-locals so
//! it stays correct when the executor fans work out over scoped threads:
//! *structural* spans ([`Tracer::span`]) push themselves onto the scope
//! stack and become the parent of whatever starts while they are open;
//! *leaf* spans ([`Tracer::leaf_span`]) adopt the current scope top as
//! parent but do **not** push, so concurrent workers can open leaf spans
//! under one operator span without corrupting each other's scope.

mod export;
pub mod profile;
mod render;
mod sink;
mod span;

pub use export::{to_chrome_trace, to_prometheus};
pub use profile::{critical_path, profile_plan, PlanProfile, StageBuckets, StageProfile};
pub use render::render_tree;
pub use sink::{HistogramSummary, TraceSnapshot, Tracer};
pub use span::{Event, Layer, SpanGuard, SpanId, SpanRecord};

/// Source of trace timestamps, in microseconds.
///
/// Implemented by `pz_llm::clock::VirtualClock` (the trait lives here,
/// below `pz-llm`, so every crate can depend on `pz-obs` without cycles).
pub trait TraceClock: Send + Sync {
    fn now_micros(&self) -> u64;
}

/// A fixed clock, useful for tests and for tracers created before a
/// virtual clock exists.
pub struct FrozenClock(pub u64);

impl TraceClock for FrozenClock {
    fn now_micros(&self) -> u64 {
        self.0
    }
}
