//! Smoke test of the interactive REPL binary: drive it through stdin the
//! way a demo attendee would, and check the replies on stdout.

use std::io::Write;
use std::process::{Command, Stdio};

#[test]
fn repl_runs_the_demo_dialogue() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_palimpchat-repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    let script = "load the dataset of scientific papers\n\
                  I'm interested in papers that are about colorectal cancer, and for these papers, extract whatever public dataset is used by the study\n\
                  run the pipeline with maximum quality\n\
                  how much did the run cost and how long did it take?\n\
                  :quit\n";
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("repl exits");
    assert!(out.status.success(), "repl exited with {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Registered dataset"), "{stdout}");
    assert!(stdout.contains("output record"), "{stdout}");
    assert!(stdout.contains("TOTAL"), "{stdout}");
    assert!(stdout.contains("bye."), "{stdout}");
}

/// The incremental demo loop: watch the corpus, run, append one paper,
/// re-run — the second run replays memoized verdicts and says so.
#[test]
fn repl_watch_append_reruns_incrementally() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_palimpchat-repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    let script = "load the dataset of scientific papers\n\
                  :watch scientific-demo\n\
                  I'm interested in papers that are about colorectal cancer, and for these papers, extract whatever public dataset is used by the study\n\
                  run the pipeline with maximum quality\n\
                  :append scientific-demo paper-new.pdf This colorectal cancer cohort study deposited all samples in the FunkyData registry.\n\
                  run the pipeline with maximum quality\n\
                  :watch\n\
                  :watch off\n\
                  :quit\n";
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("repl exits");
    assert!(out.status.success(), "repl exited with {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("watching scientific-demo"), "{stdout}");
    assert!(stdout.contains("v1: 12 record(s)"), "{stdout}");
    assert!(stdout.contains("NOTE: incremental re-run"), "{stdout}");
    assert!(
        stdout.contains("memoized operator verdict(s) replayed"),
        "{stdout}"
    );
    assert!(stdout.contains("watch: on"), "{stdout}");
    assert!(stdout.contains("watch: off"), "{stdout}");
}

#[test]
fn repl_trace_toggle_shows_react_steps() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_palimpchat-repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    let script = ":trace\nload the dataset of scientific papers\n:quit\n";
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("repl exits");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace display: on"), "{stdout}");
    assert!(stdout.contains("Thought 1"), "{stdout}");
    assert!(stdout.contains("Action 1: register_dataset"), "{stdout}");
}
