//! Pipeline code generation (Figure 6).
//!
//! §3: "the final code generated can be seen in Figure 6" and "users may
//! continue to iterate on the code produced either through the chat
//! interface or by downloading a Jupyter notebook". We emit the same
//! Python-flavoured Palimpzest snippet the paper shows, built from the
//! session's pipeline state, using the Archytas template engine — so the
//! `{{variable}}` injection path of Figure 2 is exercised for real.

use archytas::template::{render_template, Bindings};
use pz_core::prelude::*;
use serde_json::json;

/// The Figure 2 `create_schema` tool body, as a template.
pub const CREATE_SCHEMA_TEMPLATE: &str = r#"class_name = "{{ schema_name }}"
schema = {"__doc__": "{{ schema_description }}"}
{% for field in field_names %}schema["{{ field }}"] = pz.Field(desc="{{ field }}")
{% endfor %}new_schema = type(class_name, (pz.Schema,), schema)"#;

/// Render the `create_schema` code cell for a schema.
pub fn schema_code(schema: &Schema) -> String {
    let mut vars = Bindings::new();
    vars.insert("schema_name".into(), json!(schema.name));
    vars.insert("schema_description".into(), json!(schema.description));
    vars.insert(
        "field_names".into(),
        json!(schema
            .fields
            .iter()
            .map(|f| f.name.clone())
            .collect::<Vec<_>>()),
    );
    vars.insert(
        "field_descriptions".into(),
        json!(schema
            .fields
            .iter()
            .map(|f| f.description.clone())
            .collect::<Vec<_>>()),
    );
    render_template(CREATE_SCHEMA_TEMPLATE, &vars).expect("static template is valid")
}

/// Emit the full Figure-6-style pipeline source for a logical plan.
pub fn pipeline_code(plan: &LogicalPlan, policy: &Policy) -> String {
    let mut out = String::from("#Set input dataset\n");
    for op in &plan.ops {
        match op {
            LogicalOp::Scan { dataset } => {
                out.push_str(&format!(
                    "dataset = pz.Dataset(source=\"{dataset}\", schema=PDFFile)\n"
                ));
            }
            LogicalOp::Filter {
                predicate: FilterPredicate::NaturalLanguage(p),
            } => {
                out.push_str("\n#Filter dataset\n");
                out.push_str(&format!("dataset = dataset.filter(\"{p}\")\n"));
            }
            LogicalOp::Filter {
                predicate: FilterPredicate::Udf(u),
            } => {
                out.push_str("\n#Filter dataset (UDF)\n");
                out.push_str(&format!("dataset = dataset.filter_udf({u})\n"));
            }
            LogicalOp::Convert {
                target,
                cardinality,
                description,
            } => {
                out.push_str("\n#Create new schema\n");
                out.push_str(&schema_code(target));
                out.push_str("\n\n#Perform conversion\n");
                let card = match cardinality {
                    Cardinality::OneToOne => "pz.Cardinality.ONE_TO_ONE",
                    Cardinality::OneToMany => "pz.Cardinality.ONE_TO_MANY",
                };
                out.push_str(&format!(
                    "dataset = dataset.convert({}, desc=\"{description}\", cardinality={card})\n",
                    target.name
                ));
            }
            LogicalOp::Map { udf } => {
                out.push_str(&format!("dataset = dataset.map({udf})\n"));
            }
            LogicalOp::Project { fields } => {
                out.push_str(&format!("dataset = dataset.project({fields:?})\n"));
            }
            LogicalOp::Limit { n } => {
                out.push_str(&format!("dataset = dataset.limit({n})\n"));
            }
            LogicalOp::Sort { field, descending } => {
                out.push_str(&format!(
                    "dataset = dataset.sort(\"{field}\", descending={})\n",
                    if *descending { "True" } else { "False" }
                ));
            }
            LogicalOp::Distinct { fields } => {
                out.push_str(&format!("dataset = dataset.distinct({fields:?})\n"));
            }
            LogicalOp::Aggregate { group_by, aggs } => {
                let aggs_s = aggs
                    .iter()
                    .map(|a| format!("{}({})", a.func.name(), a.field))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "dataset = dataset.aggregate(group_by={group_by:?}, aggs=[{aggs_s}])\n"
                ));
            }
            LogicalOp::Retrieve { query, k } => {
                out.push_str(&format!("dataset = dataset.retrieve(\"{query}\", k={k})\n"));
            }
            LogicalOp::Classify {
                labels,
                output_field,
            } => {
                out.push_str(&format!(
                    "dataset = dataset.sem_classify({labels:?}, output=\"{output_field}\")\n"
                ));
            }
            LogicalOp::Union { dataset } => {
                out.push_str(&format!("dataset = dataset.union(\"{dataset}\")\n"));
            }
            LogicalOp::Join { dataset, condition } => match condition {
                pz_core::ops::logical::JoinCondition::FieldEq { left, right } => {
                    out.push_str(&format!(
                        "dataset = dataset.join(\"{dataset}\", on=(\"{left}\", \"{right}\"))\n"
                    ));
                }
                pz_core::ops::logical::JoinCondition::Semantic { criterion } => {
                    out.push_str(&format!(
                        "dataset = dataset.sem_join(\"{dataset}\", \"{criterion}\")\n"
                    ));
                }
            },
        }
    }
    out.push_str("\n#Execute workload\noutput = dataset\n");
    out.push_str(&format!("policy = pz.{}()\n", policy_ctor(policy)));
    out.push_str("records, execution_stats = Execute(output, policy=policy)\n");
    out
}

fn policy_ctor(policy: &Policy) -> String {
    match policy {
        Policy::MaxQuality => "MaxQuality".into(),
        Policy::MinCost => "MinCost".into(),
        Policy::MinTime => "MinTime".into(),
        Policy::MaxQualityAtCost(c) => format!("MaxQualityAtCost({c})"),
        Policy::MaxQualityAtTime(t) => format!("MaxQualityAtTime({t})"),
        Policy::MinCostAtQuality(q) => format!("MinCostAtQuality({q})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pz_core::dataset::Dataset;

    fn clinical() -> Schema {
        Schema::new(
            "ClinicalData",
            "A schema for extracting clinical data datasets from papers.",
            vec![
                FieldDef::text("name", "The name of the clinical data dataset"),
                FieldDef::text(
                    "description",
                    "A short description of the content of the dataset",
                ),
                FieldDef::text("url", "The public URL where the dataset can be accessed"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn schema_code_renders_fields() {
        let code = schema_code(&clinical());
        assert!(code.contains("class_name = \"ClinicalData\""));
        assert!(code.contains("schema[\"url\"]"));
        assert!(code.contains("type(class_name, (pz.Schema,), schema)"));
    }

    #[test]
    fn figure6_pipeline_code() {
        let plan = Dataset::source("sigmod-demo")
            .filter("The papers are about colorectal cancer")
            .convert(
                clinical(),
                Cardinality::OneToMany,
                "extract clinical datasets",
            )
            .build()
            .unwrap();
        let code = pipeline_code(&plan, &Policy::MaxQuality);
        // The landmark lines of Figure 6:
        assert!(code.contains("pz.Dataset(source=\"sigmod-demo\", schema=PDFFile)"));
        assert!(code.contains("dataset.filter(\"The papers are about colorectal cancer\")"));
        assert!(code.contains("cardinality=pz.Cardinality.ONE_TO_MANY"));
        assert!(code.contains("policy = pz.MaxQuality()"));
        assert!(code.contains("records, execution_stats = Execute(output, policy=policy)"));
    }

    #[test]
    fn all_ops_emit_code() {
        let plan = Dataset::source("s")
            .filter_udf("keep")
            .project(&["a"])
            .sort("a", true)
            .distinct(&["a"])
            .retrieve("q", 5)
            .limit(3)
            .build()
            .unwrap();
        let code = pipeline_code(&plan, &Policy::MinCost);
        for needle in [
            "filter_udf(keep)",
            "project",
            "sort",
            "distinct",
            "retrieve",
            "limit(3)",
        ] {
            assert!(code.contains(needle), "missing {needle} in:\n{code}");
        }
        assert!(code.contains("pz.MinCost()"));
    }

    #[test]
    fn constrained_policy_ctor() {
        let plan = Dataset::source("s").build().unwrap();
        let code = pipeline_code(&plan, &Policy::MaxQualityAtCost(0.5));
        assert!(code.contains("pz.MaxQualityAtCost(0.5)"));
    }
}
