//! The conversation facade: one struct the REPL and the examples drive.

use crate::planner::PalimpPlanner;
use crate::session::{new_session, SessionHandle};
use crate::tools::build_registry;
use archytas::{Agent, ArchytasResult, ChatMessage, ReactTrace};
use std::sync::Arc;

/// The reply to one chat turn.
#[derive(Clone, Debug)]
pub struct ChatResponse {
    /// The assistant's answer text.
    pub reply: String,
    /// The full ReAct trace behind it (Figure 4's panel).
    pub trace: ReactTrace,
}

/// A PalimpChat conversation: agent + session + history.
pub struct PalimpChat {
    session: SessionHandle,
    agent: Agent,
    history: Vec<ChatMessage>,
}

impl Default for PalimpChat {
    fn default() -> Self {
        Self::new()
    }
}

impl PalimpChat {
    /// Fresh session over the simulated substrate.
    pub fn new() -> Self {
        let session = new_session();
        Self::with_session(session)
    }

    /// Build over an existing session (used by tests and examples that
    /// pre-register data).
    pub fn with_session(session: SessionHandle) -> Self {
        let tracer = session.lock().ctx.tracer.clone();
        let registry = build_registry(session.clone());
        let agent = Agent::new(registry, Arc::new(PalimpPlanner::new()))
            .with_max_steps(24)
            .with_tracer(tracer);
        Self {
            session,
            agent,
            history: Vec::new(),
        }
    }

    pub fn session(&self) -> &SessionHandle {
        &self.session
    }

    /// The session's tracer: one span tree per chat turn, covering the
    /// agent, optimizer, executor, and LLM layers.
    pub fn tracer(&self) -> pz_obs::Tracer {
        self.session.lock().ctx.tracer.clone()
    }

    pub fn history(&self) -> &[ChatMessage] {
        &self.history
    }

    /// Handle one user turn: run the agent, record the conversation. Each
    /// turn is one root span (`turn:<n>`) in the session trace.
    pub fn handle(&mut self, user_message: &str) -> ArchytasResult<ChatResponse> {
        self.history.push(ChatMessage::user(user_message));
        let tracer = self.tracer();
        let turn = tracer.span(
            pz_obs::Layer::Chat,
            &format!("turn:{}", self.history.len() / 2 + 1),
        );
        turn.set_attr("utterance", user_message);
        let result = self.agent.run(user_message);
        let trace = match result {
            Ok(trace) => trace,
            Err(e) => {
                turn.set_attr("error", e.to_string());
                return Err(e);
            }
        };
        turn.set_attr("actions", trace.action_count().to_string());
        turn.finish();
        let reply = if trace.answer.is_empty() {
            "Done.".to_string()
        } else {
            trace.answer.clone()
        };
        self.history.push(ChatMessage::assistant(reply.clone()));
        Ok(ChatResponse { reply, trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full §3 demonstration dialogue, end to end.
    #[test]
    fn scientific_discovery_dialogue() {
        let mut chat = PalimpChat::new();

        // Figure 3: set the input dataset.
        let r1 = chat
            .handle("Please load the dataset of scientific papers from my folder")
            .unwrap();
        assert_eq!(r1.trace.tools_used(), vec!["register_dataset"]);
        assert!(r1.reply.contains("11 records"));

        // Figure 4: one utterance → filter + schema + convert.
        let r2 = chat
            .handle(
                "I'm interested in papers that are about colorectal cancer, and for these \
                 papers, extract whatever public dataset is used by the study",
            )
            .unwrap();
        assert_eq!(
            r2.trace.tools_used(),
            vec!["add_filter", "create_schema", "add_convert"]
        );
        assert!(
            r2.trace.action_count() >= 3,
            "decomposed into several tasks"
        );

        // Execute with MaxQuality (the demo's choice).
        let r3 = chat
            .handle("run the pipeline with maximum quality")
            .unwrap();
        assert_eq!(
            r3.trace.tools_used(),
            vec!["set_policy", "execute_pipeline"]
        );
        assert!(r3.reply.contains("output record"), "{}", r3.reply);

        // Figure 5: statistics.
        let r4 = chat
            .handle("how much did the run cost and how long did it take?")
            .unwrap();
        assert!(r4.reply.contains("TOTAL"), "{}", r4.reply);

        // Figure 6: export the generated code.
        let r5 = chat
            .handle("download the notebook with the generated code")
            .unwrap();
        assert!(r5.reply.contains("Execute(output, policy=policy)"));

        // Session state reflects the whole dialogue.
        let state = chat.session().lock();
        let outcome = state.last_outcome.as_ref().unwrap();
        assert!(
            (4..=8).contains(&outcome.records.len()),
            "{}",
            outcome.records.len()
        );
        assert!(outcome.stats.total_cost_usd > 0.0);
        assert_eq!(chat.history.len(), 10); // five user + five assistant turns
    }

    #[test]
    fn unknown_request_gets_help_text() {
        let mut chat = PalimpChat::new();
        let r = chat.handle("what's the meaning of life?").unwrap();
        assert_eq!(r.trace.action_count(), 0);
        assert!(r.reply.contains("load datasets") || r.reply.contains("What would you like"));
    }

    #[test]
    fn error_observation_surfaces_in_reply() {
        let mut chat = PalimpChat::new();
        // Running before loading anything: the tool fails, the agent
        // reports it rather than crashing.
        let r = chat.handle("run the pipeline").unwrap();
        assert!(r.trace.steps.iter().any(|s| s.failed));
        assert!(r.reply.contains("failed"), "{}", r.reply);
    }

    #[test]
    fn classification_dialogue() {
        let mut chat = PalimpChat::new();
        chat.handle("load the legal discovery emails").unwrap();
        let r = chat
            .handle("categorize the emails into acme initech merger deal and office social staff")
            .unwrap();
        assert_eq!(r.trace.tools_used(), vec!["add_classify"]);
        let r = chat.handle("run the pipeline with minimum cost").unwrap();
        assert!(r.reply.contains("output record"), "{}", r.reply);
        let state = chat.session().lock();
        let outcome = state.last_outcome.as_ref().unwrap();
        assert_eq!(outcome.records.len(), 12, "classification drops nothing");
        assert!(outcome
            .records
            .iter()
            .all(|rec| rec.fields.contains_key("category")));
    }

    #[test]
    fn history_accumulates_roles() {
        let mut chat = PalimpChat::new();
        chat.handle("load the scientific papers dataset").unwrap();
        assert_eq!(chat.history().len(), 2);
        assert_eq!(chat.history()[0].role, archytas::Role::User);
        assert_eq!(chat.history()[1].role, archytas::Role::Assistant);
    }
}
